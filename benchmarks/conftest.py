"""Shared helpers for the benchmark harness.

Every table/figure bench writes its regenerated rows to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture
(the pytest-benchmark timing table is printed to the terminal regardless).

Scaling: benches honour ``REPRO_BENCH_SCALE`` (default 0.25),
``REPRO_BENCH_RUNS_SCALE`` (default 0.25) and ``REPRO_BENCH_CIRCUITS``
(comma-separated names; default 10-circuit subset).  Set
``REPRO_BENCH_SCALE=1 REPRO_BENCH_RUNS_SCALE=1`` for the paper's full
protocol (hours of pure-Python compute).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a regenerated table and echo it (visible with pytest -s)."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
