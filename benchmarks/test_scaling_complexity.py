"""Sec. 3.5 / Sec. 4 — complexity shapes.

The paper derives Θ(m log n) per PROP pass (m = pins) and Θ(nd) for
FM-bucket, and reports PROP ≈ 4.6x FM-bucket per run.  This bench sweeps
instance size and checks the growth is near-linear in m (log factors and
constant noise absorbed by a generous exponent window), plus benchmarks a
single mid-size run of each method.
"""


import time

import pytest

from conftest import write_result
from repro.baselines import FMPartitioner
from repro.core import PropPartitioner
from repro.hypergraph import hierarchical_circuit

SIZES = (300, 600, 1200, 2400)


def _time_once(partitioner, graph) -> float:
    start = time.perf_counter()
    partitioner.partition(graph, seed=0)
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for n in SIZES:
        graph = hierarchical_circuit(n, round(n * 1.05), round(n * 3.8), seed=1)
        prop_t = _time_once(PropPartitioner(), graph)
        fm_t = _time_once(FMPartitioner("bucket"), graph)
        rows.append((n, graph.num_pins, prop_t, fm_t))
    return rows


def test_scaling_sweep(sweep, results_dir, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        "Scaling sweep — seconds per full run vs instance size",
        f"{'n':>6s} {'pins':>7s} {'PROP s':>9s} {'FM s':>9s} {'ratio':>7s}",
    ]
    for n, m, prop_t, fm_t in sweep:
        lines.append(
            f"{n:>6d} {m:>7d} {prop_t:>9.3f} {fm_t:>9.3f} "
            f"{prop_t / fm_t:>7.1f}"
        )
    write_result(results_dir, "scaling", "\n".join(lines))


def test_prop_growth_near_linear_in_pins(sweep, benchmark):
    """Fitted exponent of time vs m must stay below quadratic.

    Θ(m log n) plus a mildly size-dependent pass count lands around
    1.4-1.8 empirically; we reject >= 2.0, which would indicate an
    accidental O(m²) inner loop.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.analysis import fit_power_law

    fit = fit_power_law([m for _, m, _, _ in sweep],
                        [t for _, _, t, _ in sweep])
    assert fit.exponent < 2.0, (
        f"PROP time grows as m^{fit.exponent:.2f} (R²={fit.r_squared:.2f})"
    )


def test_fm_growth_near_linear_in_pins(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.analysis import fit_power_law

    fit = fit_power_law([m for _, m, _, _ in sweep],
                        [t for _, _, _, t in sweep])
    assert fit.exponent < 1.8, (
        f"FM time grows as m^{fit.exponent:.2f} (R²={fit.r_squared:.2f})"
    )


def test_prop_fm_ratio_stays_bounded(sweep, benchmark):
    """The PROP/FM per-run ratio must not blow up with size (both are
    near-linear; the paper's ratio is a constant 4.6)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ratios = [prop_t / fm_t for _, _, prop_t, fm_t in sweep]
    assert max(ratios) < 40.0
    assert max(ratios) / min(ratios) < 6.0


def test_single_run_benchmarks(benchmark):
    """pytest-benchmark timing for one mid-size PROP run."""
    graph = hierarchical_circuit(800, 840, 3040, seed=2)
    result = benchmark.pedantic(
        lambda: PropPartitioner().partition(graph, seed=0),
        rounds=3,
        iterations=1,
    )
    assert result.cut > 0
