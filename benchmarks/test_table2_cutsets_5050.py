"""Table 2 — cutset comparison under the 50-50% balance criterion.

Regenerates the paper's main table: FM with 100/40/20 runs, LA-2, LA-3
(20 runs each), WINDOW, and PROP (20 runs), best cut per circuit, totals,
and PROP's improvement percentages.  Runs/scale are reduced by default
(see conftest); the *shape* assertions are the paper's qualitative claims
that survive down-scaling:

* more FM runs never hurt (FM100 <= FM40 <= FM20 on totals);
* PROP's total is competitive with every iterative method's total
  (at full scale the paper reports PROP strictly winning by 16-30%).
"""

import pytest

from conftest import write_result
from repro.experiments import run_table2
from repro.experiments.paper_data import (
    PAPER_TABLE2_IMPROVEMENTS,
    PAPER_TABLE2_TOTALS,
)


@pytest.fixture(scope="module")
def table2():
    return run_table2()


def test_regenerate_table2(table2, results_dir, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = table2.format_text()
    paper = ", ".join(
        f"{alg}: {PAPER_TABLE2_TOTALS[alg]}" for alg in table2.algorithms
    )
    imps = ", ".join(
        f"{a}: +{v}" for a, v in PAPER_TABLE2_IMPROVEMENTS.items()
    )
    text += (
        f"\npaper totals (full scale): {paper}"
        f"\npaper PROP improvements: {imps}"
    )
    write_result(results_dir, "table2", text)


def test_more_fm_runs_never_hurt(table2, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    totals = table2.totals()
    assert totals["FM100"] <= totals["FM40"] <= totals["FM20"]


def test_prop_competitive_with_fm20(table2, benchmark):
    """At full scale the paper reports PROP 30% ahead of FM20; at bench
    scale the instances are easier, so we assert PROP is at least not
    worse on totals (it typically wins on the larger circuits)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    totals = table2.totals()
    assert totals["PROP"] <= totals["FM20"] * 1.02


def test_prop_competitive_with_la(table2, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    totals = table2.totals()
    assert totals["PROP"] <= totals["LA-2"] * 1.05
    assert totals["PROP"] <= totals["LA-3"] * 1.05


def test_every_cut_is_balanced(table2, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.hypergraph import make_benchmark
    from repro.experiments import bench_scale_from_env
    from repro.partition import balance_ratio

    scale, _, _ = bench_scale_from_env()
    for circuit, row in table2.rows.items():
        graph = make_benchmark(circuit, scale=scale)
        for alg, outcome in row.items():
            ratio = balance_ratio(graph, outcome.best.sides)
            assert ratio <= 0.5 + 2.0 / graph.num_nodes, (circuit, alg)
