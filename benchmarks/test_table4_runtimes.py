"""Table 4 — CPU seconds per run for every algorithm.

Same-machine, same-language timing of FM-bucket, FM-tree, LA-2, LA-3,
PROP, EIG1, PARABOLI-style, MELO-style and WINDOW.  Absolute 1996 numbers
are meaningless today; the preserved *shape* (paper Sec. 4):

* FM-bucket is the fastest iterative method;
* PROP costs a small constant factor over FM-bucket per run
  (paper: ~4.6x; pure Python lands in the same small-multiple regime);
* FM-tree is several times slower than FM-bucket (the bucket structure is
  exactly what weighted nets take away).
"""

import pytest

from conftest import write_result
from repro.experiments import format_table4_times, run_table4
from repro.experiments.paper_data import PAPER_SPEED_CLAIMS, PAPER_TABLE4_TOTALS


@pytest.fixture(scope="module")
def table4():
    return run_table4()


def _per_run_total(table4, alg: str) -> float:
    return sum(table4.rows[c][alg].seconds_per_run for c in table4.rows)


def test_regenerate_table4(table4, results_dir, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = format_table4_times(table4)
    prop = _per_run_total(table4, "PROP")
    fm = _per_run_total(table4, "FM-bucket")
    fmt = _per_run_total(table4, "FM-tree")
    text += (
        f"\nmeasured PROP / FM-bucket per-run ratio: {prop / fm:.1f}x"
        f" (paper: {PAPER_SPEED_CLAIMS['prop_vs_fm_bucket_per_run']}x)"
        f"\nmeasured FM-tree / FM-bucket per-run ratio: {fmt / fm:.1f}x"
        f"\npaper total-seconds row: "
        + ", ".join(f"{k}: {v}" for k, v in PAPER_TABLE4_TOTALS.items())
    )
    write_result(results_dir, "table4", text)


def test_fm_bucket_is_fastest_iterative(table4, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fm = _per_run_total(table4, "FM-bucket")
    for alg in ("FM-tree", "LA-2", "LA-3", "PROP"):
        assert fm <= _per_run_total(table4, alg), alg


def test_prop_within_small_multiple_of_fm(table4, benchmark):
    """PROP per run must stay a small constant factor over FM-bucket
    (the paper's 'only a little slower than FM' claim; we allow up to
    20x to absorb Python dict/AVL overhead vs the C original's 4.6x)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ratio = _per_run_total(table4, "PROP") / _per_run_total(table4, "FM-bucket")
    assert ratio < 20.0


def test_fm_tree_slower_than_bucket(table4, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _per_run_total(table4, "FM-tree") > _per_run_total(
        table4, "FM-bucket"
    )


def test_prop_cheaper_than_la3(table4, benchmark):
    """Paper: PROP ~2.2x faster than LA-3 over the whole protocol (their
    run counts: PROP x20 vs LA-3 x20) — per run we ask for parity."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _per_run_total(table4, "PROP") <= _per_run_total(
        table4, "LA-3"
    ) * 1.5
