"""Figure 1 — the paper's worked example, regenerated and timed.

Asserts every printed value of Fig. 1(a)/(b)/(c) exactly and benchmarks the
three gain computations (FM Eqn. 1, LA-3 vectors, PROP Eqns. 3/4) on the
example netlist.
"""

import pytest

from conftest import write_result
from repro.experiments import (
    EXPECTED_FM_GAINS,
    EXPECTED_LA3_VECTORS,
    EXPECTED_PROP_GAINS,
    best_move_ranking,
    build_figure1,
    figure1_fm_gains,
    figure1_la3_vectors,
    figure1_prop_gains,
)


@pytest.fixture(scope="module")
def circuit():
    return build_figure1()


def _format(circuit) -> str:
    fm = figure1_fm_gains(circuit)
    la = figure1_la3_vectors(circuit)
    prop = figure1_prop_gains(circuit)
    lines = [
        "Figure 1 — FM gain / LA-3 gain vector / PROP gain per node",
        f"{'node':>5s} {'FM':>5s} {'LA-3':>12s} {'PROP':>9s}",
    ]
    for label in sorted(fm):
        vec = ",".join(f"{x:g}" for x in la[label])
        lines.append(
            f"{label:>5d} {fm[label]:>5.0f} {('(' + vec + ')'):>12s} "
            f"{prop[label]:>9.4f}"
        )
    lines.append(f"PROP move ranking (best first): {best_move_ranking(circuit)}")
    return "\n".join(lines)


def test_figure1_fm_gains_exact(circuit, benchmark):
    gains = benchmark(figure1_fm_gains, circuit)
    assert gains == EXPECTED_FM_GAINS


def test_figure1_la3_vectors_exact(circuit, benchmark):
    vectors = benchmark(figure1_la3_vectors, circuit)
    for label, expected in EXPECTED_LA3_VECTORS.items():
        assert vectors[label] == expected


def test_figure1_prop_gains_exact(circuit, benchmark, results_dir):
    gains = benchmark(figure1_prop_gains, circuit)
    for label, expected in EXPECTED_PROP_GAINS.items():
        assert gains[label] == pytest.approx(expected, abs=1e-9)
    # the paper's punchline: PROP alone ranks 3 > 2 > 1
    assert best_move_ranking(circuit)[:3] == [3, 2, 1]
    write_result(results_dir, "figure1", _format(circuit))
