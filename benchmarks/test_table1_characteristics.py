"""Table 1 — benchmark circuit characteristics.

Regenerates the full 16-circuit suite at scale 1.0, asserts the exact
node/net/pin counts of the paper, and benchmarks suite generation.
"""

from conftest import write_result
from repro.experiments import table1_rows
from repro.hypergraph import (
    BENCHMARK_NAMES,
    TABLE1_CHARACTERISTICS,
    make_benchmark,
)


def _format(rows) -> str:
    lines = [
        "Table 1 — benchmark circuit characteristics (scale 1.0)",
        f"{'circuit':<12s}{'#nodes':>8s}{'#nets':>8s}{'#pins':>8s}   paper",
    ]
    for name in BENCHMARK_NAMES:
        row = rows[name]
        paper = TABLE1_CHARACTERISTICS[name]
        match = "exact" if tuple(row.values()) == paper else "MISMATCH"
        lines.append(
            f"{name:<12s}{row['nodes']:>8d}{row['nets']:>8d}"
            f"{row['pins']:>8d}   {match}"
        )
    return "\n".join(lines)


def test_table1_exact_counts(results_dir, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = table1_rows(scale=1.0)
    for name in BENCHMARK_NAMES:
        assert tuple(rows[name].values()) == TABLE1_CHARACTERISTICS[name], name
    write_result(results_dir, "table1", _format(rows))


def test_generation_speed(benchmark):
    """Generating the largest circuit (industry2: 12637 nodes, 48404 pins)
    must stay cheap — it runs inside every full-scale experiment."""
    graph = benchmark(make_benchmark, "industry2")
    assert graph.num_pins == TABLE1_CHARACTERISTICS["industry2"][2]
