"""Table 3 — cutset comparison under the 45-55% balance criterion.

PROP (20 runs) against the clustering-based methods: MELO, PARABOLI-style
and EIG1 (each deterministic, 1 run).  At full scale the paper reports
PROP ahead by 19.9% / 15.0% / 57.1% respectively; the scale-robust shape
asserted here is that PROP beats EIG1 decisively and is no worse than the
other two in total.
"""

import pytest

from conftest import write_result
from repro.experiments import run_table3
from repro.experiments.paper_data import (
    PAPER_TABLE3_IMPROVEMENTS,
    PAPER_TABLE3_TOTALS,
)


@pytest.fixture(scope="module")
def table3():
    return run_table3()


def test_regenerate_table3(table3, results_dir, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = table3.format_text()
    paper = ", ".join(
        f"{alg}: {PAPER_TABLE3_TOTALS[alg]}" for alg in table3.algorithms
    )
    imps = ", ".join(
        f"{a}: +{v}" for a, v in PAPER_TABLE3_IMPROVEMENTS.items()
    )
    text += (
        f"\npaper totals (full scale): {paper}"
        f"\npaper PROP improvements: {imps}"
    )
    write_result(results_dir, "table3", text)


def test_prop_beats_eig1_decisively(table3, benchmark):
    """The paper's widest margin (57%); it survives any scale."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    totals = table3.totals()
    assert totals["PROP"] < totals["EIG1"] * 0.75


def test_prop_no_worse_than_melo(table3, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    totals = table3.totals()
    assert totals["PROP"] <= totals["MELO"] * 1.05


def test_prop_no_worse_than_paraboli(table3, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    totals = table3.totals()
    assert totals["PROP"] <= totals["PARABOLI"] * 1.05


def test_per_circuit_prop_wins_majority_vs_eig1(table3, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    wins = sum(
        1
        for c in table3.rows
        if table3.cut(c, "PROP") < table3.cut(c, "EIG1")
    )
    assert wins > len(table3.rows) / 2


def test_balance_4555_respected(table3, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.experiments import bench_scale_from_env
    from repro.hypergraph import make_benchmark
    from repro.partition import balance_ratio

    scale, _, _ = bench_scale_from_env()
    for circuit, row in table3.rows.items():
        graph = make_benchmark(circuit, scale=scale)
        for alg, outcome in row.items():
            ratio = balance_ratio(graph, outcome.best.sides)
            assert ratio <= 0.55 + 1e-9, (circuit, alg, ratio)
