"""Extension benches — the paper's Sec. 5 future-work items, measured.

Not part of the paper's tables; these quantify the implemented extensions
so EXPERIMENTS.md can report them:

* clustering front ends: flat PROP vs PROP-CL (one clustering level, the
  paper's Sec. 5 proposal) vs ML-PROP (full multilevel V-cycle);
* k-way: recursive bisection vs recursive + pairwise refinement;
* timing-driven: critical-net protection, timing-aware vs oblivious.
"""

import pytest

from conftest import write_result
from repro.core import PropPartitioner, TwoPhasePropPartitioner
from repro.hypergraph import make_benchmark
from repro.kway import recursive_bisection, refine_kway_result
from repro.multilevel import MultilevelPartitioner
from repro.multirun import run_many
from repro.timing import (
    critical_net_weights,
    synthetic_critical_nets,
    timing_report,
)

RUNS = 4


@pytest.fixture(scope="module")
def circuit():
    return make_benchmark("s9234", scale=0.25)


def test_clustering_frontends(circuit, results_dir, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    flat = run_many(PropPartitioner(), circuit, runs=RUNS)
    two_phase = run_many(TwoPhasePropPartitioner(), circuit, runs=RUNS)
    multilevel = run_many(MultilevelPartitioner(), circuit, runs=RUNS)
    write_result(
        results_dir,
        "ext_clustering_frontends",
        (
            f"flat PROP best={flat.best_cut:.0f} "
            f"({flat.seconds_per_run:.2f}s/run)  "
            f"PROP-CL best={two_phase.best_cut:.0f} "
            f"({two_phase.seconds_per_run:.2f}s/run)  "
            f"ML-PROP best={multilevel.best_cut:.0f} "
            f"({multilevel.seconds_per_run:.2f}s/run)"
        ),
    )
    # Sec. 5's conjecture: a clustering phase should help (or at least not
    # hurt) — both front ends must be within a whisker of flat PROP.
    assert two_phase.best_cut <= flat.best_cut * 1.15
    assert multilevel.best_cut <= flat.best_cut * 1.15


def test_kway_refinement_value(circuit, results_dir, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base = recursive_bisection(circuit, 4, seed=0)
    refined, report = refine_kway_result(circuit, base, seed=0)
    write_result(
        results_dir,
        "ext_kway_refinement",
        (
            f"k=4 recursive cut={base.cut:.0f}  after pairwise "
            f"refinement={refined.cut:.0f} "
            f"({report.pair_improvements} improving pair passes)"
        ),
    )
    assert refined.cut <= base.cut


def test_direct_vs_recursive_kway(results_dir, benchmark):
    """Direct k-way FM vs recursive PROP bisection (+ refinement) at k=4.

    Uses a smaller instance — the reference direct implementation scans
    all free nodes per move.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.kway import KWayFMPartitioner, kway_cut, pairwise_refine

    small = make_benchmark("t6", scale=0.15)
    direct = min(
        KWayFMPartitioner(4).partition(small, seed=s).cut for s in range(3)
    )
    recursive = recursive_bisection(small, 4, seed=0)
    refined_assignment, _ = pairwise_refine(
        small, recursive.assignment, 4, seed=0
    )
    refined = kway_cut(small, refined_assignment)
    write_result(
        results_dir,
        "ext_direct_kway",
        (
            f"k=4 on t6@0.15: direct KFM best={direct:.0f}  "
            f"recursive+refine={refined:.0f}"
        ),
    )
    # same quality regime; neither approach should collapse
    assert direct <= refined * 1.5
    assert refined <= direct * 1.5


def test_timing_driven_protection(circuit, results_dir, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    critical = synthetic_critical_nets(circuit, fraction=0.1, seed=1)
    weighted = critical_net_weights(circuit, critical, critical_weight=10.0)
    oblivious = run_many(PropPartitioner(), circuit, runs=RUNS)
    aware = run_many(PropPartitioner(), weighted, runs=RUNS)
    rep_obl = timing_report(weighted, oblivious.best.sides, critical)
    rep_aware = timing_report(weighted, aware.best.sides, critical)
    write_result(
        results_dir,
        "ext_timing",
        (
            f"critical nets cut: oblivious "
            f"{rep_obl.critical_cut}/{rep_obl.critical_total}  "
            f"aware {rep_aware.critical_cut}/{rep_aware.critical_total}"
        ),
    )
    assert rep_aware.critical_cut <= rep_obl.critical_cut
