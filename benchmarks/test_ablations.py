"""Ablations over PROP's design choices (DESIGN.md experiment index).

The paper fixes several knobs with one-line justifications; these benches
measure what each is worth on a mid-size clustered circuit:

* bootstrap method: blind ``pinit`` vs deterministic-gain-derived (Sec. 3);
* number of gain↔probability refinement iterations (paper uses 2);
* top-k re-rank width after each move (paper uses ~5);
* probability function: linear (paper) vs sigmoid;
* weighted nets: PROP and FM-tree optimizing a timing-weighted cut.
"""

import pytest

from conftest import write_result
from repro.baselines import FMPartitioner
from repro.core import PropConfig, PropPartitioner
from repro.hypergraph import make_benchmark
from repro.multirun import run_many
from repro.timing import critical_net_weights, synthetic_critical_nets, timing_report

RUNS = 5


@pytest.fixture(scope="module")
def circuit():
    # s9234 at quarter scale is the smallest suite instance where the
    # iterative methods do NOT all saturate to the same cut, so knob
    # differences remain visible.
    return make_benchmark("s9234", scale=0.25)


def _best(circuit, config) -> float:
    return run_many(PropPartitioner(config), circuit, runs=RUNS).best_cut


def test_ablation_bootstrap_method(circuit, results_dir, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    blind = _best(circuit, PropConfig(init_method="pinit"))
    derived = _best(circuit, PropConfig(init_method="deterministic"))
    write_result(
        results_dir,
        "ablation_bootstrap",
        f"bootstrap: pinit={blind:.0f}  deterministic-gains={derived:.0f}",
    )
    # both bootstraps must land in the same quality regime (Sec. 3 presents
    # them as interchangeable ways to seed the fixed point)
    assert blind <= derived * 1.4
    assert derived <= blind * 1.4


def test_ablation_refinement_iterations(circuit, results_dir, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cuts = {
        it: _best(circuit, PropConfig(refinement_iterations=it))
        for it in (0, 1, 2, 4)
    }
    write_result(
        results_dir,
        "ablation_refinement",
        "refinement iterations -> best cut: "
        + "  ".join(f"{k}: {v:.0f}" for k, v in cuts.items()),
    )
    # the paper's 2 iterations must not be clearly worse than more
    assert cuts[2] <= cuts[4] * 1.25


def test_ablation_top_update_width(circuit, results_dir, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cuts = {
        k: _best(circuit, PropConfig(top_update_count=k)) for k in (0, 5, 20)
    }
    write_result(
        results_dir,
        "ablation_topk",
        "top-k update width -> best cut: "
        + "  ".join(f"{k}: {v:.0f}" for k, v in cuts.items()),
    )
    # Sec. 3.4 claims top-5 recovers nearly all of the full update's value:
    # widening to 20 must not massively beat 5
    assert cuts[5] <= cuts[20] * 1.3


def test_ablation_probability_function(circuit, results_dir, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    linear = _best(circuit, PropConfig(probability_function="linear"))
    sigmoid = _best(circuit, PropConfig(probability_function="sigmoid"))
    write_result(
        results_dir,
        "ablation_probfn",
        f"probability fn: linear={linear:.0f}  sigmoid={sigmoid:.0f}",
    )
    assert linear <= sigmoid * 1.4


def test_ablation_update_strategy(circuit, results_dir, benchmark):
    """Sec. 3.4 update discipline: full neighbor recompute vs the cached
    Eqn. 5/6 contribution scheme — quality must be in the same band."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    recompute = run_many(
        PropPartitioner(PropConfig(update_strategy="recompute")),
        circuit, runs=RUNS,
    )
    cached = run_many(
        PropPartitioner(PropConfig(update_strategy="cached")),
        circuit, runs=RUNS,
    )
    write_result(
        results_dir,
        "ablation_update_strategy",
        (
            f"update strategy: recompute best={recompute.best_cut:.0f} "
            f"({recompute.seconds_per_run:.2f}s/run)  "
            f"cached best={cached.best_cut:.0f} "
            f"({cached.seconds_per_run:.2f}s/run)"
        ),
    )
    assert cached.best_cut <= recompute.best_cut * 1.2
    assert recompute.best_cut <= cached.best_cut * 1.2


def test_weighted_nets_prop_vs_fm_tree(circuit, results_dir, benchmark):
    """Timing-driven weighting (Sec. 4): with non-unit costs FM loses its
    bucket structure; PROP keeps its complexity and must stay competitive
    on the weighted objective."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    critical = synthetic_critical_nets(circuit, fraction=0.1, seed=0)
    weighted = critical_net_weights(circuit, critical, critical_weight=8.0)

    prop = run_many(PropPartitioner(), weighted, runs=RUNS)
    fm_tree = run_many(FMPartitioner("tree"), weighted, runs=RUNS)
    prop_report = timing_report(weighted, prop.best.sides, critical)
    fm_report = timing_report(weighted, fm_tree.best.sides, critical)
    write_result(
        results_dir,
        "ablation_weighted",
        (
            f"weighted cut: PROP={prop.best_cut:.0f} "
            f"({prop.seconds_per_run:.2f}s/run, "
            f"critical cut {prop_report.critical_cut}/{prop_report.critical_total}) "
            f"FM-tree={fm_tree.best_cut:.0f} "
            f"({fm_tree.seconds_per_run:.2f}s/run, "
            f"critical cut {fm_report.critical_cut}/{fm_report.critical_total})"
        ),
    )
    assert prop.best_cut <= fm_tree.best_cut * 1.15
