"""Microbenchmarks for the gain containers — Table 4's structural story.

The bucket array is what makes FM linear-time, and losing it (weighted
nets) costs a constant factor that Table 4 quantifies end-to-end.  These
microbenchmarks isolate the container-level difference: mixed
insert/update/peek traffic against the bucket array vs the AVL tree.
"""

import random

from repro.datastructures import BucketGainContainer, TreeGainContainer

N_NODES = 2000
MAX_GAIN = 24
OPS = 6000


def _traffic(seed: int):
    """Deterministic op stream: (op, node, gain) tuples."""
    rng = random.Random(seed)
    ops = []
    live = set()
    for i in range(OPS):
        if not live or rng.random() < 0.35:
            node = rng.randrange(N_NODES)
            if node not in live:
                ops.append(("insert", node, rng.randint(-MAX_GAIN, MAX_GAIN)))
                live.add(node)
                continue
        node = rng.choice(sorted(live))
        if rng.random() < 0.25:
            ops.append(("remove", node, 0))
            live.remove(node)
        else:
            ops.append(("update", node, rng.randint(-MAX_GAIN, MAX_GAIN)))
    return ops


TRAFFIC = _traffic(7)


def _drive(container) -> int:
    peeks = 0
    for op, node, gain in TRAFFIC:
        if op == "insert":
            container.insert(node, gain)
        elif op == "remove":
            container.remove(node)
        else:
            container.update(node, gain)
        if container:
            container.peek_best()
            peeks += 1
    return peeks


def test_bucket_container_throughput(benchmark):
    peeks = benchmark(lambda: _drive(BucketGainContainer(N_NODES, MAX_GAIN)))
    assert peeks > 0


def test_tree_container_throughput(benchmark):
    peeks = benchmark(lambda: _drive(TreeGainContainer()))
    assert peeks > 0


def test_bucket_faster_than_tree(benchmark):
    """The bucket's O(1) ops must beat the AVL's O(log n) on identical
    traffic — the premise of the FM-bucket vs FM-tree comparison."""
    import time

    start = time.perf_counter()
    _drive(BucketGainContainer(N_NODES, MAX_GAIN))
    bucket_s = time.perf_counter() - start

    start = time.perf_counter()
    _drive(TreeGainContainer())
    tree_s = time.perf_counter() - start

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert bucket_s < tree_s, (
        f"bucket {bucket_s:.3f}s should beat tree {tree_s:.3f}s"
    )
