#!/usr/bin/env python
"""Service load smoke: thousands of jobs, a SIGKILL mid-load, zero loss.

The end-to-end proof of the service's durability contract, run by the
``service`` CI lane and usable locally::

    python scripts/load_smoke.py                  # 1000 jobs, full check
    python scripts/load_smoke.py --smoke --check  # CI: 200 jobs
    python scripts/load_smoke.py --smoke --check --overload  # guard proof

What it does:

1. starts ``python -m repro serve`` as a real subprocess, with a
   chaos plan armed via ``REPRO_FAULTS`` (transient execution faults +
   slow cache I/O — the inline-execution fault kinds);
2. submits ``--jobs`` small partitioning jobs concurrently (seeded
   ``many_small`` generator specs across four tenants);
3. when ~25% of jobs are done, **SIGKILLs** the server — no drain, no
   goodbye — and restarts it against the same cache directory;
4. waits for every acknowledged job to finish, then asserts

   * **zero lost work** — every job the server acknowledged before the
     kill reaches ``done`` (recovery replays the jobs journal; in-
     flight jobs resume from their run journals with no recomputation);
   * **bit-identical cuts** (``--check``) — each job's cut equals a
     serial in-process reference computed from the same spec, i.e.
     faults, concurrency, the kill and the restart changed nothing.

``--overload`` instead drives the **guard** contract (repro.guard; see
``docs/guard.md``): the server gets a queue bound of half the submitted
jobs plus slow-I/O faults, so roughly half the submissions are shed
with **429 + Retry-After** — never a 5xx, never a crash.  The run then
asserts ``accepted + shed == submitted``, SIGKILLs mid-drain and proves
zero lost *accepted* work with bit-identical cuts, deadlines a poison
spec ``quarantine_after`` times until the breaker trips **exactly
once** (the next submit 409s and the diagnostics bundle is readable),
and checks peak RSS stayed under the watchdog's high-water mark.

Exits 0 on success, 1 on any violation, 2 on environment failures.
"""

import argparse
import asyncio
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.workers import execute_unit  # noqa: E402
from repro.service import ServiceClient, ServiceError, parse_job_spec  # noqa: E402
from repro.service.schemas import build_units  # noqa: E402

#: Inline-capable fault kinds only: crash/hang are pool-only by design,
#: and the *server* kill below is the real crash under test.
DEFAULT_FAULTS = "seed=3,transient:0.12,slow_io:0.2,io_delay=0.002"

#: Overload mode wants jobs slow enough that the queue actually fills:
#: near-certain slow cache I/O makes drain (2 workers) much slower than
#: the 48-way concurrent submission, forcing real 429 shedding.
OVERLOAD_FAULTS = "seed=3,slow_io:0.95,io_delay=0.05"

#: Overload high-water mark (MiB): generous enough that the watchdog
#: never sheds in a healthy run, so peak-RSS-under-mark is a real check.
OVERLOAD_HIGH_WATER_MB = 4096

TENANTS = ("alpha", "beta", "gamma", "delta")


def job_payload(index: int, args) -> dict:
    """The i-th job spec (deterministic; the reference recomputes it)."""
    return {
        "generate": {
            "kind": "many_small",
            "size_range": [args.size_lo, args.size_hi],
            "seed": args.seed,
            "index": index,
        },
        "algorithm": "fm",
        "runs": 1,
        "seed": 10_000 + index,
        "tenant": TENANTS[index % len(TENANTS)],
        "tag": f"load-{index}",
    }


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(
    port: int, cache_dir: str, faults: str, extra: tuple = ()
) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    if faults:
        env["REPRO_FAULTS"] = faults
    else:
        env.pop("REPRO_FAULTS", None)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port), "--cache-dir", cache_dir,
            *(extra or ("--job-workers", "8")),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


async def wait_healthy(client: ServiceClient, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while True:
        try:
            await client.health()
            return
        except (OSError, ServiceError, asyncio.TimeoutError):
            if time.monotonic() > deadline:
                raise RuntimeError("server never became healthy")
            await asyncio.sleep(0.1)


async def submit_all(client: ServiceClient, args) -> list:
    """Submit every job; retries ride out transient connection races."""
    sem = asyncio.Semaphore(48)
    acked = [None] * args.jobs

    async def one(i: int) -> None:
        async with sem:
            for attempt in range(60):
                try:
                    response = await client.submit(job_payload(i, args))
                    acked[i] = response["job_id"]
                    return
                except ServiceError:
                    raise  # 4xx: a bug, not a race
                except (OSError, asyncio.TimeoutError):
                    await asyncio.sleep(0.1 + 0.05 * attempt)
            raise RuntimeError(f"job {i} never acknowledged")

    await asyncio.gather(*(one(i) for i in range(args.jobs)))
    return acked


async def poll_stats(client: ServiceClient) -> dict:
    try:
        return await client.stats()
    except (OSError, ServiceError, asyncio.TimeoutError):
        return {}


async def wait_all_terminal(
    client: ServiceClient, expected: int, timeout: float
) -> None:
    deadline = time.monotonic() + timeout
    while True:
        stats = await poll_stats(client)
        jobs = stats.get("jobs", {})
        terminal = (
            jobs.get("done", 0) + jobs.get("failed", 0)
            + jobs.get("cancelled", 0) + jobs.get("deadline", 0)
        )
        if terminal >= expected and jobs.get("running", 0) == 0:
            return
        if time.monotonic() > deadline:
            raise RuntimeError(
                f"jobs never finished: {jobs} after {timeout}s"
            )
        await asyncio.sleep(0.2)


def reference_cut(index: int, args) -> float:
    """Serial in-process reference: same spec, no service, no cache."""
    spec = parse_job_spec(job_payload(index, args))
    unit = build_units(spec).units[0]
    return execute_unit(0, unit, 0).result.cut


async def drive(args, cache_dir: str) -> int:
    port = args.port or free_port()
    client = ServiceClient(port=port, timeout=15.0)
    server = start_server(port, cache_dir, args.faults)
    killed_at = -1
    try:
        await wait_healthy(client)
        t0 = time.monotonic()
        print(f"submitting {args.jobs} jobs to port {port} "
              f"(faults: {args.faults or 'none'})")
        acked = await submit_all(client, args)
        print(f"all {args.jobs} jobs acknowledged "
              f"in {time.monotonic() - t0:.1f}s")

        # Kill the server once a quarter of the jobs are done.
        threshold = max(1, args.jobs // 4)
        kill_deadline = time.monotonic() + args.timeout
        while True:
            stats = await poll_stats(client)
            done = stats.get("jobs", {}).get("done", 0)
            if done >= threshold:
                killed_at = done
                break
            if time.monotonic() > kill_deadline:
                print("FAIL: kill threshold never reached")
                return 1
            await asyncio.sleep(0.02)
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
        print(f"SIGKILLed server at {killed_at}/{args.jobs} done; "
              "restarting on the same cache dir")

        server = start_server(port, cache_dir, args.faults)
        await wait_healthy(client)
        stats = await poll_stats(client)
        print(f"recovered {stats.get('recovered_jobs', '?')} job(s) "
              f"from the jobs journal")

        await wait_all_terminal(client, args.jobs, timeout=args.timeout)
        print(f"all jobs terminal in {time.monotonic() - t0:.1f}s total")

        # Zero lost work: every acknowledged job exists and is done.
        listing = await client.jobs()
        by_id = {j["job_id"]: j for j in listing["jobs"]}
        failures = 0
        for i, job_id in enumerate(acked):
            status = by_id.get(job_id)
            if status is None:
                print(f"FAIL: job {i} ({job_id}) lost across restart")
                failures += 1
            elif status["state"] != "done":
                print(f"FAIL: job {i} ({job_id}) is {status['state']}")
                failures += 1
        if failures:
            print(f"FAIL: {failures} job(s) lost or not done")
            return 1
        print(f"zero lost work: {args.jobs}/{args.jobs} acknowledged "
              "jobs are done")

        if args.check:
            print("checking cuts against the serial reference...")
            sem = asyncio.Semaphore(32)

            async def fetch_cut(job_id: str) -> float:
                async with sem:
                    result = await client.result(job_id)
                    return result["cuts"][0]

            cuts = await asyncio.gather(*(fetch_cut(j) for j in acked))
            mismatches = 0
            for i, cut in enumerate(cuts):
                expected = await asyncio.to_thread(reference_cut, i, args)
                if cut != expected:
                    print(f"FAIL: job {i} cut {cut} != reference {expected}")
                    mismatches += 1
            if mismatches:
                print(f"FAIL: {mismatches} cut mismatch(es)")
                return 1
            print(f"bit-identical cuts: {len(cuts)}/{len(cuts)} match "
                  "the serial reference")
        print("OK")
        return 0
    finally:
        if server.poll() is None:
            server.send_signal(signal.SIGKILL)
            try:
                server.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass


def poison_payload(args) -> dict:
    """A spec that can never finish: six units behind slow cache I/O
    against a sub-millisecond deadline.  Deterministic and identical on
    every submission, so its (seed-blanked) fingerprint — the breaker
    key — is stable."""
    return {
        "generate": {
            "kind": "many_small",
            "size_range": [args.size_lo, args.size_hi],
            "seed": args.seed,
            "index": 999_999,
        },
        "algorithm": "fm",
        "runs": 6,
        "seed": 424242,
        "deadline_seconds": 0.0005,
        "tenant": "poison",
        "tag": "poison",
    }


async def wait_job_state(
    client: ServiceClient, job_id: str, timeout: float = 120.0
) -> str:
    deadline = time.monotonic() + timeout
    while True:
        status = await client.job(job_id)
        if status["state"] in ("done", "failed", "cancelled", "deadline"):
            return status["state"]
        if time.monotonic() > deadline:
            raise RuntimeError(
                f"job {job_id} still {status['state']} after {timeout}s"
            )
        await asyncio.sleep(0.05)


async def submit_overload(client: ServiceClient, args):
    """Submit every job once, no 429 retries; classify the outcomes.

    Returns ``(acked, shed, violations)``: acked maps index -> job_id
    for accepted jobs, shed counts 429s, violations counts anything
    else the server did wrong (a 5xx under overload is the bug this
    mode exists to catch).
    """
    sem = asyncio.Semaphore(48)
    acked: dict = {}
    shed = 0
    violations = 0
    lock = asyncio.Lock()

    async def one(i: int) -> None:
        nonlocal shed, violations
        async with sem:
            for attempt in range(60):
                try:
                    response = await client.submit(job_payload(i, args))
                    acked[i] = response["job_id"]
                    return
                except ServiceError as exc:
                    async with lock:
                        if exc.status == 429:
                            shed += 1
                            if exc.retry_after is None:
                                print(f"FAIL: 429 for job {i} carried "
                                      "no Retry-After")
                                violations += 1
                        else:
                            print(f"FAIL: job {i} got HTTP {exc.status} "
                                  f"under overload: {exc}")
                            violations += 1
                    return
                except (OSError, asyncio.TimeoutError):
                    await asyncio.sleep(0.1 + 0.05 * attempt)
            async with lock:
                print(f"FAIL: job {i} never acknowledged or shed")
                violations += 1

    await asyncio.gather(*(one(i) for i in range(args.jobs)))
    return acked, shed, violations


async def drive_overload(args, cache_dir: str) -> int:
    """The guard-layer proof: shed cleanly, lose nothing, quarantine once."""
    port = args.port or free_port()
    depth = max(4, args.jobs // 2)
    server_args = (
        "--job-workers", "2",
        "--max-queue-depth", str(depth),
        "--quarantine-after", "3",
        "--memory-high-water-mb", str(OVERLOAD_HIGH_WATER_MB),
    )
    client = ServiceClient(port=port, timeout=15.0)
    server = start_server(port, cache_dir, args.faults, extra=server_args)
    try:
        await wait_healthy(client)
        t0 = time.monotonic()
        print(f"overload: submitting {args.jobs} jobs against queue "
              f"depth {depth} on port {port} (faults: {args.faults!r})")
        acked, shed, violations = await submit_overload(client, args)
        accepted = len(acked)
        print(f"accepted {accepted}, shed {shed} "
              f"in {time.monotonic() - t0:.1f}s")
        if accepted + shed + violations != args.jobs:
            print(f"FAIL: accepted {accepted} + shed {shed} != "
                  f"submitted {args.jobs}")
            return 1
        if violations:
            print(f"FAIL: {violations} non-429 submission failure(s)")
            return 1
        if shed == 0:
            print("FAIL: overload never shed a job — queue bound inert?")
            return 1

        # Server-side ledger must agree with the client's 429 count.
        stats = await poll_stats(client)
        guard = stats.get("guard", {})
        counted = guard.get("counters", {}).get("shed_queue_depth", -1)
        if counted != shed:
            print(f"FAIL: server counted {counted} queue-depth sheds, "
                  f"client saw {shed}")
            return 1

        # Kill mid-drain; accepted work must still all complete.
        threshold = max(1, accepted // 4)
        kill_deadline = time.monotonic() + args.timeout
        while True:
            stats = await poll_stats(client)
            done = stats.get("jobs", {}).get("done", 0)
            if done >= threshold:
                break
            if time.monotonic() > kill_deadline:
                print("FAIL: kill threshold never reached")
                return 1
            await asyncio.sleep(0.02)
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
        print(f"SIGKILLed server at {done}/{accepted} done; restarting")
        server = start_server(port, cache_dir, args.faults, extra=server_args)
        await wait_healthy(client)

        await wait_all_terminal(client, accepted, timeout=args.timeout)
        listing = await client.jobs()
        by_id = {j["job_id"]: j for j in listing["jobs"]}
        failures = 0
        for i, job_id in sorted(acked.items()):
            status = by_id.get(job_id)
            if status is None:
                print(f"FAIL: accepted job {i} ({job_id}) lost")
                failures += 1
            elif status["state"] != "done":
                print(f"FAIL: accepted job {i} is {status['state']}")
                failures += 1
        if failures:
            return 1
        print(f"zero lost accepted work: {accepted}/{accepted} done "
              "across the SIGKILL restart")

        if args.check:
            print("checking accepted cuts against the serial reference...")
            mismatches = 0
            for i, job_id in sorted(acked.items()):
                result = await client.result(job_id)
                expected = await asyncio.to_thread(reference_cut, i, args)
                if result["cuts"][0] != expected:
                    print(f"FAIL: job {i} cut {result['cuts'][0]} != "
                          f"reference {expected}")
                    mismatches += 1
            if mismatches:
                return 1
            print(f"bit-identical cuts: {accepted}/{accepted}")

        # Poison phase: three deadline blowouts trip the breaker; the
        # fourth submission must 409, exactly one fingerprint ends up
        # quarantined, and its diagnostics bundle is readable.
        print("poison phase: deadlining one spec to quarantine...")
        for round_no in range(3):
            response = await client.submit(poison_payload(args), retries=8)
            state = await wait_job_state(client, response["job_id"])
            if state != "deadline":
                print(f"FAIL: poison round {round_no} ended {state!r}, "
                      "expected 'deadline'")
                return 1
        try:
            await client.submit(poison_payload(args), retries=8)
        except ServiceError as exc:
            if exc.status != 409:
                print(f"FAIL: post-trip submit got {exc.status}, not 409")
                return 1
        else:
            print("FAIL: post-trip submit was accepted, not 409")
            return 1
        listing = await client.quarantine()
        if listing["count"] != 1:
            print(f"FAIL: {listing['count']} quarantined fingerprints, "
                  "expected exactly 1")
            return 1
        fingerprint = listing["quarantined"][0]["fingerprint"]
        bundle = await client.quarantine_bundle(fingerprint)
        diag = (bundle.get("bundle") or {}).get("diagnostics", {})
        if diag.get("spec", {}).get("tag") != "poison":
            print(f"FAIL: quarantine bundle unreadable or wrong spec: "
                  f"{bundle}")
            return 1
        print(f"poison quarantined exactly once: {fingerprint[:12]} "
              "(bundle readable)")

        stats = await poll_stats(client)
        memory = stats.get("guard", {}).get("memory", {})
        peak = memory.get("peak_rss_bytes", 0)
        mark = memory.get("high_water_bytes", 0)
        if not peak or not mark or peak >= mark:
            print(f"FAIL: peak RSS {peak} not under high water {mark}")
            return 1
        print(f"peak RSS {peak / 1e6:.0f}MB under the "
              f"{mark / 1e6:.0f}MB high-water mark")
        print("OK")
        return 0
    finally:
        if server.poll() is None:
            server.send_signal(signal.SIGKILL)
            try:
                server.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=None,
                        help="jobs to submit (default 1000; 200 with --smoke)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (200 jobs unless --jobs is given)")
    parser.add_argument("--check", action="store_true",
                        help="also verify every cut against a serial "
                        "in-process reference run (doubles compute)")
    parser.add_argument("--overload", action="store_true",
                        help="guard-layer mode: bounded queue at half the "
                        "job count, assert clean 429 shedding, zero lost "
                        "accepted work across a SIGKILL, poison-job "
                        "quarantine, and bounded RSS")
    parser.add_argument("--port", type=int, default=0,
                        help="server port (default: pick a free one)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache/journal root (default: fresh temp dir)")
    parser.add_argument("--faults", default=DEFAULT_FAULTS,
                        help=f"REPRO_FAULTS plan for the server "
                        f"(default {DEFAULT_FAULTS!r}; '' disables)")
    parser.add_argument("--seed", type=int, default=7,
                        help="many_small batch seed (default 7)")
    parser.add_argument("--size-lo", type=int, default=8)
    parser.add_argument("--size-hi", type=int, default=20)
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="overall completion budget in seconds")
    args = parser.parse_args(argv)
    if args.jobs is None:
        args.jobs = 200 if args.smoke else 1000
    if args.overload and args.faults == DEFAULT_FAULTS:
        args.faults = OVERLOAD_FAULTS

    runner = drive_overload if args.overload else drive
    if args.cache_dir:
        return asyncio.run(runner(args, args.cache_dir))
    with tempfile.TemporaryDirectory(prefix="load-smoke-") as tmp:
        return asyncio.run(runner(args, tmp))


if __name__ == "__main__":
    raise SystemExit(main())
