#!/usr/bin/env python
"""Telemetry-overhead smoke: off-by-default must be (nearly) free.

Checks the three guarantees the telemetry layer advertises, on a real
``benchmark_suite`` circuit rather than a toy fixture:

1. **Zero-overhead-when-off** — a run with ``NullRecorder`` attached (the
   off state) is within ``--budget`` (default 2%) of a run with no
   recorder argument at all, comparing best-of-k timings to squeeze out
   scheduler noise.
2. **Behavior-neutral** — with a ``TraceRecorder`` attached, every
   algorithm produces bit-identical cuts and sides to the unrecorded run.
3. **Faithful trajectory** — the per-pass cuts recorded in the trace match
   ``BipartitionResult.pass_cuts`` exactly.

Exits 0 when all three hold, 1 otherwise.  Used by the ``telemetry`` CI
job (see .github/workflows/tests.yml).
"""

import argparse
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.baselines import FMPartitioner, LAPartitioner  # noqa: E402
from repro.core import PropPartitioner  # noqa: E402
from repro.hypergraph import make_benchmark  # noqa: E402
from repro.telemetry import (  # noqa: E402
    MemoryRecorder,
    NullRecorder,
    TraceRecorder,
)


def best_of(k, fn):
    """Best (minimum) wall-clock of ``k`` invocations of ``fn``."""
    best = float("inf")
    for _ in range(k):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_overhead(graph, args):
    """Guarantee 1: NullRecorder within the overhead budget."""
    partitioner = PropPartitioner()
    # Warm-up run so allocator/caches steady-state before timing.
    partitioner.partition(graph, seed=0)
    bare = best_of(
        args.repeats, lambda: partitioner.partition(graph, seed=0)
    )
    nulled = best_of(
        args.repeats,
        lambda: partitioner.partition(
            graph, seed=0, recorder=NullRecorder()
        ),
    )
    overhead = (nulled - bare) / bare
    print(
        f"overhead: bare {bare * 1e3:.1f}ms, NullRecorder "
        f"{nulled * 1e3:.1f}ms ({overhead:+.2%}, budget {args.budget:.0%})"
    )
    return overhead <= args.budget


def check_neutrality(graph):
    """Guarantees 2 and 3: tracing changes nothing and records truth."""
    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        for make, label in (
            (PropPartitioner, "PROP"),
            (lambda: FMPartitioner("bucket"), "FM-bucket"),
            (lambda: LAPartitioner(2), "LA-2"),
        ):
            bare = make().partition(graph, seed=1)
            memory = MemoryRecorder()
            with TraceRecorder(Path(tmp) / f"{label}.jsonl") as trace:
                traced = make().partition(graph, seed=1, recorder=trace)
            remembered = make().partition(graph, seed=1, recorder=memory)
            identical = (
                traced.cut == bare.cut
                and traced.sides == bare.sides
                and remembered.cut == bare.cut
            )
            trajectory = memory.pass_cuts() == remembered.pass_cuts
            print(
                f"{label}: cut {bare.cut:g}, identical={identical}, "
                f"trajectory-match={trajectory}"
            )
            ok = ok and identical and trajectory
    return ok


def main() -> int:
    """Run the smoke checks; 0 = all guarantees hold."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--circuit", default="t5", help="benchmark circuit (default t5)"
    )
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help="circuit scale (default 0.25: large enough to time)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repetitions, best-of (default 5)",
    )
    parser.add_argument(
        "--budget", type=float, default=0.02,
        help="allowed NullRecorder slowdown fraction (default 0.02)",
    )
    args = parser.parse_args()

    graph = make_benchmark(args.circuit, scale=args.scale)
    print(
        f"{args.circuit}@{args.scale}: {graph.num_nodes} nodes, "
        f"{graph.num_nets} nets"
    )
    overhead_ok = check_overhead(graph, args)
    neutral_ok = check_neutrality(graph)
    if not overhead_ok:
        print("FAIL: NullRecorder overhead exceeds budget")
    if not neutral_ok:
        print("FAIL: recording changed results or mis-recorded trajectory")
    if overhead_ok and neutral_ok:
        print("telemetry smoke OK")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
