#!/usr/bin/env python
"""Kernel micro-benchmark: scalar vs numpy backends on Table-1-sized circuits.

Measures the three costs that dominate PROP runtime on each backend:

* ``all_gains``        — one vectorized/scalar gain bootstrap (Eqns. 3/4
                         for every node);
* ``refine_iteration`` — one probability-refresh + gain-recompute cycle
                         (Fig. 2 step 4, the per-iteration refinement cost);
* ``full_pass``        — a complete seeded ``run_prop`` (bootstrap,
                         refinement, move loop, rollback).

Three generator circuits sized like the paper's Table 1 small / medium /
large rows (balu / s9234 / industry2) are used.  Results are written as
JSON — by default to ``BENCH_kernels.json`` at the repo root, which is
committed as the tracked baseline.

Usage::

    PYTHONPATH=src python scripts/perf_bench.py            # full run
    PYTHONPATH=src python scripts/perf_bench.py --smoke    # CI-sized run
    PYTHONPATH=src python scripts/perf_bench.py --check    # gate speedup

``--check`` exits non-zero when the numpy backend is slower than the
python backend for ``all_gains`` on the large instance — the regression
gate CI runs on every push (in ``--smoke`` mode).

``--subround`` switches to the sub-round engine benchmark instead:
``full_pass`` with ``kernel="subround"`` at several worker counts
against the sequential scalar baseline, on industry2 and a 10× synthetic
instance (built directly with ``hierarchical_circuit`` — the named
benchmark generators cap ``scale`` at 1.0).  Results go to
``BENCH_subround.json``; cuts are asserted identical across worker
counts (the invariance contract), and ``--check`` gates a ``full_pass``
speedup ≥ 1.5× at 4 workers on every circuit benched.

``--nlevel`` benchmarks the n-level engine end-to-end against the
V-cycle on ``large_circuit`` instances (100k nodes; 12k in ``--smoke``).
Results go to ``BENCH_nlevel.json`` with coarsening throughput
(pins/sec), per-phase seconds, and both engines' cuts.  ``--check``
gates (a) end-to-end speedup ≥ 1.5× over the V-cycle and (b) an
equal-or-better n-level cut, on every instance benched.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

import repro
from repro.core import PropConfig
from repro.core.engine import run_prop
from repro.core.probability import make_probability_fn
from repro.hypergraph import hierarchical_circuit, make_benchmark
from repro.kernels import make_gain_engine, numpy_available
from repro.partition import BalanceConstraint, Partition, random_balanced_sides

#: (size class, generator name) — node/net/pin counts track the paper's
#: Table 1 small / medium / large rows.
CIRCUITS = [
    ("small", "balu"),       #   801 nodes /   735 nets /  2697 pins
    ("medium", "s9234"),     #  5866 nodes /  5844 nets / 14065 pins
    ("large", "industry2"),  # 12637 nodes / 13419 nets / 48404 pins
]

SEED = 42
BACKENDS = ("python", "numpy")

#: Worker counts measured by the sub-round benchmark; the 4-worker row
#: is the one ``--check`` gates.
SUBROUND_WORKERS = (0, 2, 4)
SUBROUND_GATE_WORKERS = 4
SUBROUND_GATE_SPEEDUP = 1.5

#: Sub-round benchmark circuits: industry2 (the paper's Table 1 large
#: row) and a 10x synthetic instance built directly with
#: ``hierarchical_circuit`` (``make_benchmark`` caps ``scale`` at 1.0).
SUBROUND_CIRCUITS = [
    ("industry2", lambda: make_benchmark("industry2", scale=1.0)),
    ("synth10x", lambda: hierarchical_circuit(126370, 134190, 484040, seed=7)),
]

#: n-level benchmark instances (``large_circuit``: sparse netlist-like
#: generator that scales to 1M nodes): (name, nodes, cut slack).  Smoke
#: keeps the 12k instance only; the full run adds the 100k acceptance
#: instance.  The slack is the number of cut nets the n-level engine may
#: trail the V-cycle by and still pass ``--check`` — 0 at 12k (it wins
#: outright there), 1 at 100k, where the V-cycle's matching-based
#: hierarchy finds a basin one net better at the bench seed (see
#: docs/multilevel.md and the ROADMAP follow-up).
NLEVEL_CIRCUITS = [
    ("large12k", 12_000, 0.0),
    ("large100k", 100_000, 1.0),
]
NLEVEL_GEN_SEED = 7
#: ``--check`` gates: end-to-end speedup over the V-cycle and cut parity.
NLEVEL_GATE_SPEEDUP = 1.5


def _best_of(fn: Callable[[], None], reps: int) -> float:
    """Minimum wall time over ``reps`` calls (noise-robust point estimate)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _fresh_engine(graph, sides, kernel):
    engine = make_gain_engine(Partition(graph, list(sides)), kernel)
    engine.fill(0.5)
    return engine


def bench_circuit(name: str, reps: int, full_pass: bool) -> Dict:
    graph = make_benchmark(name, scale=1.0)
    sides = random_balanced_sides(graph, SEED)
    balance = BalanceConstraint.fifty_fifty(graph)
    prob_fn = make_probability_fn(PropConfig())
    out: Dict = {
        "num_nodes": graph.num_nodes,
        "num_nets": graph.num_nets,
        "num_pins": graph.num_pins,
        "timings": {},
    }
    cuts = {}
    for backend in BACKENDS:
        timings: Dict[str, float] = {}

        engine = _fresh_engine(graph, sides, backend)
        timings["all_gains"] = _best_of(engine.all_gains, reps)

        def refine_iteration(engine=engine, prob_fn=prob_fn):
            gains = engine.all_gains()
            for v, g in enumerate(gains):
                engine.set_probability(v, prob_fn(g))

        timings["refine_iteration"] = _best_of(refine_iteration, reps)

        if full_pass:
            config = PropConfig(kernel=backend, max_passes=1)

            def one_pass(config=config):
                result = run_prop(graph, sides, balance, config, seed=SEED)
                cuts[backend] = result.cut

            timings["full_pass"] = _best_of(one_pass, max(1, reps // 2))
        out["timings"][backend] = timings

    if full_pass and len(cuts) == 2 and cuts["python"] != cuts["numpy"]:
        raise SystemExit(
            f"{name}: backend cuts diverged ({cuts}) — kernels are broken"
        )

    out["speedup"] = {
        bench: out["timings"]["python"][bench] / out["timings"]["numpy"][bench]
        for bench in out["timings"]["python"]
        if out["timings"]["numpy"].get(bench)
    }
    return out


def bench_subround_circuit(name: str, graph, reps: int) -> Dict:
    """Sub-round ``full_pass`` at each worker count vs the scalar pass.

    Every sub-round run must produce the same cut at every worker count
    (the invariance contract); a divergence aborts the benchmark.  The
    scalar baseline is ``kernel="python"`` — the sequential algorithm
    the sub-round engine replaces, which is what a speedup here means.
    """
    sides = random_balanced_sides(graph, SEED)
    balance = BalanceConstraint.fifty_fifty(graph)
    out: Dict = {
        "num_nodes": graph.num_nodes,
        "num_nets": graph.num_nets,
        "num_pins": graph.num_pins,
        "timings": {},
        "cuts": {},
    }

    config = PropConfig(kernel="python", max_passes=1)

    def scalar_pass():
        out["cuts"]["python"] = run_prop(
            graph, sides, balance, config, seed=SEED
        ).cut

    out["timings"]["python"] = _best_of(scalar_pass, reps)

    stats = {}
    for workers in SUBROUND_WORKERS:
        key = f"subround_w{workers}"
        config = PropConfig(
            kernel="subround", max_passes=1, subround_workers=workers
        )

        def subround_pass(key=key, config=config):
            result = run_prop(graph, sides, balance, config, seed=SEED)
            out["cuts"][key] = result.cut
            stats[key] = result.stats

        out["timings"][key] = _best_of(subround_pass, reps)

    cuts = {k: v for k, v in out["cuts"].items() if k.startswith("subround")}
    if len(set(cuts.values())) != 1:
        raise SystemExit(
            f"{name}: sub-round cuts diverged across worker counts "
            f"({cuts}) — the determinism contract is broken"
        )
    out["speedup"] = {
        key: out["timings"]["python"] / out["timings"][key]
        for key in out["timings"]
        if key.startswith("subround") and out["timings"][key]
    }
    last = stats[f"subround_w{SUBROUND_WORKERS[-1]}"]
    out["telemetry"] = {
        "subrounds": last["subrounds"],
        "subround_batch_max": last["subround_batch_max"],
        "subround_workers": last["subround_workers"],
        "subround_shm_fallbacks": last["subround_shm_fallbacks"],
        "shm_attach_seconds": last["shm_attach_seconds"],
    }
    return out


def run_subround(args) -> int:
    reps = 1 if args.smoke else 3
    report = {
        "version": repro.__version__,
        "seed": SEED,
        "reps": reps,
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "workers": list(SUBROUND_WORKERS),
        "circuits": {},
    }
    circuits = SUBROUND_CIRCUITS[:1] if args.smoke else SUBROUND_CIRCUITS
    for name, build in circuits:
        graph = build()
        t0 = time.perf_counter()
        result = bench_subround_circuit(name, graph, reps)
        report["circuits"][name] = result
        speedups = ", ".join(
            f"{k}={s:.2f}x" for k, s in sorted(result["speedup"].items())
        )
        print(
            f"{name:10s} ({result['num_pins']} pins) "
            f"[{time.perf_counter() - t0:.1f}s]: {speedups}"
        )

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.check:
        key = f"subround_w{SUBROUND_GATE_WORKERS}"
        failed = False
        for name, result in report["circuits"].items():
            speedup = result["speedup"][key]
            if speedup < SUBROUND_GATE_SPEEDUP:
                print(
                    f"FAIL: {name} full_pass speedup at "
                    f"{SUBROUND_GATE_WORKERS} workers is {speedup:.2f}x "
                    f"< {SUBROUND_GATE_SPEEDUP}x",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(
                    f"check OK: {name} full_pass {speedup:.2f}x >= "
                    f"{SUBROUND_GATE_SPEEDUP}x at {SUBROUND_GATE_WORKERS} "
                    "workers"
                )
        if failed:
            return 1
    return 0


def side_weights(graph, sides):
    """Per-side node weight of a bipartition, as ``(w0, w1)``."""
    w1 = sum(graph.node_weights[i] for i, s in enumerate(sides) if s == 1)
    return (graph.total_node_weight - w1, w1)


def bench_nlevel_circuit(num_nodes: int) -> Dict:
    """One n-level vs V-cycle end-to-end comparison at the bench seed.

    Both engines run once (a run is tens of seconds at 100k — best-of
    repetition would triple a CI lane for noise rejection the speedup
    gate's 1.5x margin already provides), under the paper's 45-55%
    balance criterion: the default (exact bisection with one-node
    slack) is tighter than either multilevel hierarchy can honor at
    100k nodes, and a cut comparison is only fair on a constraint both
    engines actually satisfy.
    """
    from repro.hypergraph import large_circuit
    from repro.multilevel import MultilevelPartitioner, NLevelPartitioner
    from repro.partition import BalanceConstraint

    graph = large_circuit(num_nodes, seed=NLEVEL_GEN_SEED)
    balance = BalanceConstraint.forty_five_fifty_five(graph)
    out: Dict = {
        "num_nodes": graph.num_nodes,
        "num_nets": graph.num_nets,
        "num_pins": graph.num_pins,
        "balance": balance.describe(),
    }

    t0 = time.perf_counter()
    nl = NLevelPartitioner().partition(graph, balance=balance, seed=SEED)
    nl_seconds = time.perf_counter() - t0
    nl.verify(graph)
    assert balance.is_satisfied(side_weights(graph, nl.sides))

    t0 = time.perf_counter()
    ml = MultilevelPartitioner().partition(graph, balance=balance, seed=SEED)
    ml_seconds = time.perf_counter() - t0
    ml.verify(graph)
    assert balance.is_satisfied(side_weights(graph, ml.sides))

    coarsen_seconds = nl.stats["coarsen_seconds"]
    out["nlevel"] = {
        "cut": nl.cut,
        "seconds": nl_seconds,
        "coarsen_seconds": coarsen_seconds,
        "coarsen_pins_per_sec": (
            graph.num_pins / coarsen_seconds if coarsen_seconds else 0.0
        ),
        "uncoarsen_seconds": nl.stats["uncoarsen_seconds"],
        "stage_refines": nl.stats["stage_refines"],
        "contractions": nl.stats["contractions"],
    }
    out["vcycle"] = {"cut": ml.cut, "seconds": ml_seconds}
    out["speedup"] = ml_seconds / nl_seconds if nl_seconds else 0.0
    return out


def run_nlevel(args) -> int:
    report = {
        "version": repro.__version__,
        "seed": SEED,
        "generator_seed": NLEVEL_GEN_SEED,
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "circuits": {},
    }
    circuits = NLEVEL_CIRCUITS[:1] if args.smoke else NLEVEL_CIRCUITS
    for name, num_nodes, cut_slack in circuits:
        t0 = time.perf_counter()
        result = bench_nlevel_circuit(num_nodes)
        result["cut_slack"] = cut_slack
        report["circuits"][name] = result
        print(
            f"{name:10s} ({result['num_pins']} pins) "
            f"[{time.perf_counter() - t0:.1f}s]: "
            f"nlevel cut {result['nlevel']['cut']:g} in "
            f"{result['nlevel']['seconds']:.1f}s vs vcycle cut "
            f"{result['vcycle']['cut']:g} in "
            f"{result['vcycle']['seconds']:.1f}s "
            f"({result['speedup']:.2f}x)"
        )

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.check:
        failed = False
        for name, result in report["circuits"].items():
            speedup = result["speedup"]
            nl_cut = result["nlevel"]["cut"]
            ml_cut = result["vcycle"]["cut"]
            slack = result["cut_slack"]
            if speedup < NLEVEL_GATE_SPEEDUP:
                print(
                    f"FAIL: {name} n-level speedup {speedup:.2f}x < "
                    f"{NLEVEL_GATE_SPEEDUP}x over the V-cycle",
                    file=sys.stderr,
                )
                failed = True
            elif nl_cut > ml_cut + slack:
                print(
                    f"FAIL: {name} n-level cut {nl_cut:g} worse than "
                    f"V-cycle cut {ml_cut:g} (+{slack:g} slack)",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(
                    f"check OK: {name} {speedup:.2f}x >= "
                    f"{NLEVEL_GATE_SPEEDUP}x at cut {nl_cut:g} <= "
                    f"{ml_cut:g} + {slack:g}"
                )
        if failed:
            return 1
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=None,
        help="JSON output path (default: BENCH_kernels.json at the repo "
             "root; BENCH_subround.json with --subround, "
             "BENCH_nlevel.json with --nlevel)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: single rep, skip full_pass on medium/large "
             "(with --subround: industry2 only)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 unless numpy beats python for all_gains on the "
             "large instance (with --subround: unless subround full_pass "
             f"is >= {SUBROUND_GATE_SPEEDUP}x at {SUBROUND_GATE_WORKERS} "
             "workers)",
    )
    parser.add_argument(
        "--subround", action="store_true",
        help="benchmark the sub-round engine at several worker counts "
             "instead of the scalar-vs-numpy kernels",
    )
    parser.add_argument(
        "--nlevel", action="store_true",
        help="benchmark the n-level engine end-to-end against the "
             f"V-cycle (with --check: speedup >= {NLEVEL_GATE_SPEEDUP}x "
             "at an equal-or-better cut)",
    )
    args = parser.parse_args(argv)
    if args.output is None:
        if args.subround:
            default = "BENCH_subround.json"
        elif args.nlevel:
            default = "BENCH_nlevel.json"
        else:
            default = "BENCH_kernels.json"
        args.output = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            default,
        )

    if not numpy_available():
        print("numpy not importable; nothing to benchmark", file=sys.stderr)
        return 0 if not args.check else 1

    if args.subround:
        return run_subround(args)
    if args.nlevel:
        return run_nlevel(args)

    reps = 1 if args.smoke else 5
    report = {
        "version": repro.__version__,
        "seed": SEED,
        "reps": reps,
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "circuits": {},
    }
    for size, name in CIRCUITS:
        full_pass = not (args.smoke and size != "small")
        t0 = time.perf_counter()
        result = bench_circuit(name, reps, full_pass)
        result["size"] = size
        report["circuits"][name] = result
        speedups = ", ".join(
            f"{b}={s:.1f}x" for b, s in sorted(result["speedup"].items())
        )
        print(
            f"{name:10s} ({size}, {result['num_pins']} pins) "
            f"[{time.perf_counter() - t0:.1f}s]: {speedups}"
        )

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.check:
        large = report["circuits"][CIRCUITS[-1][1]]
        speedup = large["speedup"]["all_gains"]
        if speedup < 1.0:
            print(
                f"FAIL: numpy all_gains slower than python on the large "
                f"instance (speedup {speedup:.2f}x < 1.0x)",
                file=sys.stderr,
            )
            return 1
        print(f"check OK: large all_gains speedup {speedup:.1f}x >= 1.0x")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
