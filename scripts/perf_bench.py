#!/usr/bin/env python
"""Kernel micro-benchmark: scalar vs numpy backends on Table-1-sized circuits.

Measures the three costs that dominate PROP runtime on each backend:

* ``all_gains``        — one vectorized/scalar gain bootstrap (Eqns. 3/4
                         for every node);
* ``refine_iteration`` — one probability-refresh + gain-recompute cycle
                         (Fig. 2 step 4, the per-iteration refinement cost);
* ``full_pass``        — a complete seeded ``run_prop`` (bootstrap,
                         refinement, move loop, rollback).

Three generator circuits sized like the paper's Table 1 small / medium /
large rows (balu / s9234 / industry2) are used.  Results are written as
JSON — by default to ``BENCH_kernels.json`` at the repo root, which is
committed as the tracked baseline.

Usage::

    PYTHONPATH=src python scripts/perf_bench.py            # full run
    PYTHONPATH=src python scripts/perf_bench.py --smoke    # CI-sized run
    PYTHONPATH=src python scripts/perf_bench.py --check    # gate speedup

``--check`` exits non-zero when the numpy backend is slower than the
python backend for ``all_gains`` on the large instance — the regression
gate CI runs on every push (in ``--smoke`` mode).

``--subround`` switches to the sub-round engine benchmark instead:
``full_pass`` with ``kernel="subround"`` at several worker counts
against the sequential scalar baseline, on industry2 and a 10× synthetic
instance (built directly with ``hierarchical_circuit`` — the named
benchmark generators cap ``scale`` at 1.0).  Results go to
``BENCH_subround.json``; cuts are asserted identical across worker
counts (the invariance contract), and ``--check`` gates a ``full_pass``
speedup ≥ 1.5× at 4 workers on every circuit benched.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

import repro
from repro.core import PropConfig
from repro.core.engine import run_prop
from repro.core.probability import make_probability_fn
from repro.hypergraph import hierarchical_circuit, make_benchmark
from repro.kernels import make_gain_engine, numpy_available
from repro.partition import BalanceConstraint, Partition, random_balanced_sides

#: (size class, generator name) — node/net/pin counts track the paper's
#: Table 1 small / medium / large rows.
CIRCUITS = [
    ("small", "balu"),       #   801 nodes /   735 nets /  2697 pins
    ("medium", "s9234"),     #  5866 nodes /  5844 nets / 14065 pins
    ("large", "industry2"),  # 12637 nodes / 13419 nets / 48404 pins
]

SEED = 42
BACKENDS = ("python", "numpy")

#: Worker counts measured by the sub-round benchmark; the 4-worker row
#: is the one ``--check`` gates.
SUBROUND_WORKERS = (0, 2, 4)
SUBROUND_GATE_WORKERS = 4
SUBROUND_GATE_SPEEDUP = 1.5

#: Sub-round benchmark circuits: industry2 (the paper's Table 1 large
#: row) and a 10x synthetic instance built directly with
#: ``hierarchical_circuit`` (``make_benchmark`` caps ``scale`` at 1.0).
SUBROUND_CIRCUITS = [
    ("industry2", lambda: make_benchmark("industry2", scale=1.0)),
    ("synth10x", lambda: hierarchical_circuit(126370, 134190, 484040, seed=7)),
]


def _best_of(fn: Callable[[], None], reps: int) -> float:
    """Minimum wall time over ``reps`` calls (noise-robust point estimate)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _fresh_engine(graph, sides, kernel):
    engine = make_gain_engine(Partition(graph, list(sides)), kernel)
    engine.fill(0.5)
    return engine


def bench_circuit(name: str, reps: int, full_pass: bool) -> Dict:
    graph = make_benchmark(name, scale=1.0)
    sides = random_balanced_sides(graph, SEED)
    balance = BalanceConstraint.fifty_fifty(graph)
    prob_fn = make_probability_fn(PropConfig())
    out: Dict = {
        "num_nodes": graph.num_nodes,
        "num_nets": graph.num_nets,
        "num_pins": graph.num_pins,
        "timings": {},
    }
    cuts = {}
    for backend in BACKENDS:
        timings: Dict[str, float] = {}

        engine = _fresh_engine(graph, sides, backend)
        timings["all_gains"] = _best_of(engine.all_gains, reps)

        def refine_iteration(engine=engine, prob_fn=prob_fn):
            gains = engine.all_gains()
            for v, g in enumerate(gains):
                engine.set_probability(v, prob_fn(g))

        timings["refine_iteration"] = _best_of(refine_iteration, reps)

        if full_pass:
            config = PropConfig(kernel=backend, max_passes=1)

            def one_pass(config=config):
                result = run_prop(graph, sides, balance, config, seed=SEED)
                cuts[backend] = result.cut

            timings["full_pass"] = _best_of(one_pass, max(1, reps // 2))
        out["timings"][backend] = timings

    if full_pass and len(cuts) == 2 and cuts["python"] != cuts["numpy"]:
        raise SystemExit(
            f"{name}: backend cuts diverged ({cuts}) — kernels are broken"
        )

    out["speedup"] = {
        bench: out["timings"]["python"][bench] / out["timings"]["numpy"][bench]
        for bench in out["timings"]["python"]
        if out["timings"]["numpy"].get(bench)
    }
    return out


def bench_subround_circuit(name: str, graph, reps: int) -> Dict:
    """Sub-round ``full_pass`` at each worker count vs the scalar pass.

    Every sub-round run must produce the same cut at every worker count
    (the invariance contract); a divergence aborts the benchmark.  The
    scalar baseline is ``kernel="python"`` — the sequential algorithm
    the sub-round engine replaces, which is what a speedup here means.
    """
    sides = random_balanced_sides(graph, SEED)
    balance = BalanceConstraint.fifty_fifty(graph)
    out: Dict = {
        "num_nodes": graph.num_nodes,
        "num_nets": graph.num_nets,
        "num_pins": graph.num_pins,
        "timings": {},
        "cuts": {},
    }

    config = PropConfig(kernel="python", max_passes=1)

    def scalar_pass():
        out["cuts"]["python"] = run_prop(
            graph, sides, balance, config, seed=SEED
        ).cut

    out["timings"]["python"] = _best_of(scalar_pass, reps)

    stats = {}
    for workers in SUBROUND_WORKERS:
        key = f"subround_w{workers}"
        config = PropConfig(
            kernel="subround", max_passes=1, subround_workers=workers
        )

        def subround_pass(key=key, config=config):
            result = run_prop(graph, sides, balance, config, seed=SEED)
            out["cuts"][key] = result.cut
            stats[key] = result.stats

        out["timings"][key] = _best_of(subround_pass, reps)

    cuts = {k: v for k, v in out["cuts"].items() if k.startswith("subround")}
    if len(set(cuts.values())) != 1:
        raise SystemExit(
            f"{name}: sub-round cuts diverged across worker counts "
            f"({cuts}) — the determinism contract is broken"
        )
    out["speedup"] = {
        key: out["timings"]["python"] / out["timings"][key]
        for key in out["timings"]
        if key.startswith("subround") and out["timings"][key]
    }
    last = stats[f"subround_w{SUBROUND_WORKERS[-1]}"]
    out["telemetry"] = {
        "subrounds": last["subrounds"],
        "subround_batch_max": last["subround_batch_max"],
        "subround_workers": last["subround_workers"],
        "subround_shm_fallbacks": last["subround_shm_fallbacks"],
        "shm_attach_seconds": last["shm_attach_seconds"],
    }
    return out


def run_subround(args) -> int:
    reps = 1 if args.smoke else 3
    report = {
        "version": repro.__version__,
        "seed": SEED,
        "reps": reps,
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "workers": list(SUBROUND_WORKERS),
        "circuits": {},
    }
    circuits = SUBROUND_CIRCUITS[:1] if args.smoke else SUBROUND_CIRCUITS
    for name, build in circuits:
        graph = build()
        t0 = time.perf_counter()
        result = bench_subround_circuit(name, graph, reps)
        report["circuits"][name] = result
        speedups = ", ".join(
            f"{k}={s:.2f}x" for k, s in sorted(result["speedup"].items())
        )
        print(
            f"{name:10s} ({result['num_pins']} pins) "
            f"[{time.perf_counter() - t0:.1f}s]: {speedups}"
        )

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.check:
        key = f"subround_w{SUBROUND_GATE_WORKERS}"
        failed = False
        for name, result in report["circuits"].items():
            speedup = result["speedup"][key]
            if speedup < SUBROUND_GATE_SPEEDUP:
                print(
                    f"FAIL: {name} full_pass speedup at "
                    f"{SUBROUND_GATE_WORKERS} workers is {speedup:.2f}x "
                    f"< {SUBROUND_GATE_SPEEDUP}x",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(
                    f"check OK: {name} full_pass {speedup:.2f}x >= "
                    f"{SUBROUND_GATE_SPEEDUP}x at {SUBROUND_GATE_WORKERS} "
                    "workers"
                )
        if failed:
            return 1
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=None,
        help="JSON output path (default: BENCH_kernels.json or, with "
             "--subround, BENCH_subround.json at the repo root)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: single rep, skip full_pass on medium/large "
             "(with --subround: industry2 only)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 unless numpy beats python for all_gains on the "
             "large instance (with --subround: unless subround full_pass "
             f"is >= {SUBROUND_GATE_SPEEDUP}x at {SUBROUND_GATE_WORKERS} "
             "workers)",
    )
    parser.add_argument(
        "--subround", action="store_true",
        help="benchmark the sub-round engine at several worker counts "
             "instead of the scalar-vs-numpy kernels",
    )
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_subround.json" if args.subround else "BENCH_kernels.json",
        )

    if not numpy_available():
        print("numpy not importable; nothing to benchmark", file=sys.stderr)
        return 0 if not args.check else 1

    if args.subround:
        return run_subround(args)

    reps = 1 if args.smoke else 5
    report = {
        "version": repro.__version__,
        "seed": SEED,
        "reps": reps,
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "circuits": {},
    }
    for size, name in CIRCUITS:
        full_pass = not (args.smoke and size != "small")
        t0 = time.perf_counter()
        result = bench_circuit(name, reps, full_pass)
        result["size"] = size
        report["circuits"][name] = result
        speedups = ", ".join(
            f"{b}={s:.1f}x" for b, s in sorted(result["speedup"].items())
        )
        print(
            f"{name:10s} ({size}, {result['num_pins']} pins) "
            f"[{time.perf_counter() - t0:.1f}s]: {speedups}"
        )

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.check:
        large = report["circuits"][CIRCUITS[-1][1]]
        speedup = large["speedup"]["all_gains"]
        if speedup < 1.0:
            print(
                f"FAIL: numpy all_gains slower than python on the large "
                f"instance (speedup {speedup:.2f}x < 1.0x)",
                file=sys.stderr,
            )
            return 1
        print(f"check OK: large all_gains speedup {speedup:.1f}x >= 1.0x")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
