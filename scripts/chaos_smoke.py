#!/usr/bin/env python
"""Kill-and-resume smoke: SIGTERM a journalled sweep, resume, check cuts.

End-to-end proof of the robustness contract that in-process tests cannot
give: a *real* process, killed by a *real* signal mid-batch, must leave
a journal from which ``--resume`` completes the sweep with

* bit-identical final cuts, and
* zero recomputation of journalled units.

Two modes:

``--child``
    Runs a journalled Engine batch (12 sleepy units, 2 pool workers)
    and exits 130 when interrupted, 0 when it ran to completion.

parent (default)
    Spawns the child, waits until the journal holds a few completed
    units, sends SIGTERM (or SIGKILL with ``--signal kill`` — no drain,
    no flush beyond the per-unit fsync), then resumes the same run
    in-process and checks the two properties above.  Exits 0 on
    success, 1 on failure.

Used by the ``chaos`` CI job (see .github/workflows/tests.yml) and the
subprocess test in tests/engine/test_kill_resume.py.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import Engine, EngineConfig, WorkUnit, journal_path  # noqa: E402
from repro.hypergraph import make_benchmark  # noqa: E402
from repro.testing import SleepyPartitioner  # noqa: E402

RUN_ID = "smoke"
UNITS = 12
DELAY = 0.4


def build_units():
    graph = make_benchmark("t6", scale=0.05)
    return [
        WorkUnit(graph, SleepyPartitioner(DELAY), seed=s)
        for s in range(UNITS)
    ]


def child(cache_dir: str) -> int:
    engine = Engine(EngineConfig(
        workers=2, use_cache=False, cache_dir=cache_dir,
    ))
    engine.run(build_units(), run_id=RUN_ID)
    return 130 if engine.interrupted else 0


def journalled_units(path: Path) -> int:
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return 0
    count = 0
    for line in lines:
        try:
            if json.loads(line).get("type") == "unit":
                count += 1
        except ValueError:
            pass  # torn line
    return count


def parent(cache_dir: str, kill_signal: str = "term") -> int:
    path = journal_path(Path(cache_dir), RUN_ID)
    # Own process group: SIGKILL must take out the pool workers too, or
    # the orphans keep inherited stdout/stderr pipes open and a
    # capturing caller (pytest) blocks on EOF long after we exit.
    proc = subprocess.Popen(
        [sys.executable, __file__, "--child", "--cache-dir", cache_dir],
        start_new_session=True,
    )
    deadline = time.monotonic() + 60.0
    while journalled_units(path) < 3:
        if proc.poll() is not None:
            print(f"FAIL: child exited early (rc {proc.returncode}) "
                  f"with {journalled_units(path)} unit(s) journalled")
            return 1
        if time.monotonic() > deadline:
            proc.kill()
            print("FAIL: journal never reached 3 units within 60 s")
            return 1
        time.sleep(0.05)

    if kill_signal == "kill":
        # The whole group at once — the closest userspace analogue of a
        # machine crash (no process gets any chance to drain).
        os.killpg(proc.pid, signal.SIGKILL)
    else:
        proc.send_signal(signal.SIGTERM)
    rc = proc.wait(timeout=60)
    seen = journalled_units(path)
    print(f"child exited rc={rc} with {seen} unit(s) journalled")
    if kill_signal == "kill":
        # SIGKILL gives no drain: the child dies mid-write if unlucky,
        # which is exactly the torn-line tolerance resume must absorb.
        if rc not in (0, -signal.SIGKILL):
            print(f"FAIL: unexpected child exit code {rc}")
            return 1
    elif rc not in (0, 130):
        print(f"FAIL: unexpected child exit code {rc}")
        return 1
    if rc == 0:
        print("note: child finished before the kill landed; "
              "resume still must serve every unit")

    engine = Engine(EngineConfig(
        workers=0, use_cache=False, cache_dir=cache_dir,
    ))
    results = engine.run(build_units(), run_id=RUN_ID, resume=True)

    failures = []
    cuts = [r.result.cut for r in results]
    expected = [float(s) for s in range(UNITS)]
    if cuts != expected:
        failures.append(f"cuts mismatch: {cuts} != {expected}")
    if engine.stats.journal_hits < seen:
        failures.append(
            f"resume recomputed journalled units: {engine.stats.journal_hits}"
            f" hit(s) < {seen} journalled"
        )
    if engine.stats.executed != UNITS - engine.stats.journal_hits:
        failures.append(
            f"executed {engine.stats.executed} != "
            f"{UNITS} - {engine.stats.journal_hits} journal hits"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"OK: resumed {engine.stats.journal_hits} unit(s) from the journal, "
        f"executed {engine.stats.executed}, final cuts bit-identical"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", action="store_true",
                        help="run the killable batch (internal)")
    parser.add_argument("--cache-dir", default=None,
                        help="journal root (default: fresh temp dir)")
    parser.add_argument("--signal", choices=("term", "kill"), default="term",
                        help="signal to kill the child with: term "
                        "(graceful drain, default) or kill (SIGKILL, "
                        "no drain — relies purely on per-unit fsync)")
    args = parser.parse_args(argv)
    if args.child:
        if not args.cache_dir:
            parser.error("--child requires --cache-dir")
        return child(args.cache_dir)
    if args.cache_dir:
        return parent(args.cache_dir, args.signal)
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        return parent(tmp, args.signal)


if __name__ == "__main__":
    raise SystemExit(main())
