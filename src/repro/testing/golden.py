"""The golden corpus: pinned ``(circuit, algorithm, seed) -> cut`` triples.

A corpus entry records the exact cut an algorithm produced on a named,
fingerprinted circuit under a fixed seed.  Every partitioner in this repo
is deterministic given its seed, so entries are stable across runs and
machines — an entry that stops matching is a behavioral regression (or an
intentional change, in which case the corpus is regenerated in the same
commit; see ``docs/audit.md``).

The corpus lives at ``tests/golden_corpus.json`` and is verified by
``tests/test_golden.py``.  Regenerate after an intentional change with::

    PYTHONPATH=src python -m repro.testing.golden tests/golden_corpus.json

Each circuit carries its content fingerprint so a drifting *generator*
(which would silently re-pin every cut) is caught separately from a
drifting *algorithm*.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..hypergraph import (
    Hypergraph,
    hierarchical_circuit,
    large_circuit,
    make_benchmark,
)
from .instances import circuit_fingerprint, random_instance

#: Corpus circuits: name -> buildable spec (kind + kwargs).  Small enough
#: that the whole corpus replays in a few seconds inside tier-1; generic
#: sweeps (differential suites, portfolio training, ...) iterate this
#: dict and rely on that.
CIRCUITS: Dict[str, Dict[str, Any]] = {
    "hier150": {
        "kind": "hierarchical",
        "num_nodes": 150, "num_nets": 160, "num_pins": 580, "seed": 13,
    },
    "t6@0.05": {"kind": "benchmark", "name": "t6", "scale": 0.05},
    "rand101": {"kind": "random_instance", "seed": 101, "max_nodes": 12},
}

#: Large corpus circuits, kept OUT of :data:`CIRCUITS` so generic sweeps
#: never pick them up.  Marked ``"gated": True``: their corpus rows
#: replay only under ``REPRO_NLEVEL_CORPUS=1`` (the CI nlevel lane), and
#: ``"algorithms"`` restricts which partitioners get a row.
GATED_CIRCUITS: Dict[str, Dict[str, Any]] = {
    "nlvl100k": {
        "kind": "large", "num_nodes": 100_000, "seed": 7,
        "algorithms": ["nlevel"], "gated": True,
    },
}

#: Everything the corpus file itself covers (small + gated).
ALL_CIRCUITS: Dict[str, Dict[str, Any]] = {**CIRCUITS, **GATED_CIRCUITS}

#: Every partitioner the CLI can name, one corpus row per circuit.
ALGORITHMS: List[str] = [
    "prop", "prop-cl", "ml-prop", "nlevel",
    "fm", "fm-tree", "la-2", "la-3",
    "kl", "sa", "window",
    "eig1", "melo", "paraboli", "random",
]

#: Seed used for every corpus run (deterministic algorithms ignore it).
CORPUS_SEED = 42


def build_circuit(spec: Dict[str, Any]) -> Hypergraph:
    """Materialize a corpus circuit from its spec."""
    kind = spec["kind"]
    if kind == "hierarchical":
        return hierarchical_circuit(
            spec["num_nodes"], spec["num_nets"], spec["num_pins"],
            seed=spec["seed"],
        )
    if kind == "benchmark":
        return make_benchmark(spec["name"], scale=spec["scale"])
    if kind == "random_instance":
        return random_instance(spec["seed"], max_nodes=spec["max_nodes"])
    if kind == "large":
        return large_circuit(spec["num_nodes"], seed=spec["seed"])
    raise ValueError(f"unknown circuit kind {kind!r}")


def generate_corpus() -> Dict[str, Any]:
    """Run every (circuit, algorithm) cell and collect the corpus dict."""
    from ..cli import _make_partitioner

    circuits = {}
    entries = []
    for circuit_name, spec in ALL_CIRCUITS.items():
        graph = build_circuit(spec)
        circuits[circuit_name] = dict(
            spec, fingerprint=circuit_fingerprint(graph),
            num_nodes=graph.num_nodes, num_nets=graph.num_nets,
        )
        for algo in spec.get("algorithms", ALGORITHMS):
            partitioner = _make_partitioner(algo)
            try:
                result = partitioner.partition(graph, seed=CORPUS_SEED)
            except ValueError:
                # Some algorithms reject tiny/degenerate circuits (e.g.
                # the spectral ordering may admit no balanced split);
                # such cells simply have no corpus row.
                continue
            result.verify(graph)
            entries.append(
                {
                    "circuit": circuit_name,
                    "algorithm": algo,
                    "seed": CORPUS_SEED,
                    "cut": result.cut,
                }
            )
    return {"seed": CORPUS_SEED, "circuits": circuits, "entries": entries}


def save_corpus(path: str, corpus: Dict[str, Any]) -> None:
    """Write a corpus dict as stable, diff-friendly JSON."""
    with open(path, "w") as fh:
        json.dump(corpus, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_corpus(path: str) -> Dict[str, Any]:
    """Read a corpus previously written by :func:`save_corpus`."""
    with open(path) as fh:
        return json.load(fh)


def main(argv: List[str]) -> int:
    """Regenerate a corpus file: ``python -m repro.testing.golden PATH``."""
    if len(argv) != 1:
        print("usage: python -m repro.testing.golden CORPUS.json")
        return 2
    corpus = generate_corpus()
    save_corpus(argv[0], corpus)
    print(
        f"wrote {argv[0]}: {len(corpus['circuits'])} circuit(s), "
        f"{len(corpus['entries'])} entries"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main(sys.argv[1:]))
