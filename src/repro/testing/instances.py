"""Seeded instance generators shared by tests and differential harnesses.

Everything here is deterministic in its arguments — an instance is fully
named by ``(seed, max_nodes, ...)``, which is what lets a failing check
print a two-integer repro instead of a pickled graph.  The generators use
only the standard library so that :mod:`repro.audit.differential` can draw
grids without any optional test dependency.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Tuple

from ..hypergraph import Hypergraph


def random_instance(
    seed: int,
    max_nodes: int = 12,
    min_nodes: int = 4,
    max_net_size: int = 4,
) -> Hypergraph:
    """Deterministic small random netlist (unit weights and costs).

    Node count is drawn from ``[min_nodes, max_nodes]``, net count from
    ``[3, 2n]``, and each net samples 2..min(max_net_size, n) distinct
    pins — the regime where a wrong gain or count flips a partitioning
    decision within a handful of moves.  The same ``(seed, max_nodes)``
    always yields the same graph (the contract the differential grids
    and golden corpus rely on).
    """
    if min_nodes < 2:
        raise ValueError(f"min_nodes must be >= 2, got {min_nodes}")
    if max_nodes < min_nodes:
        raise ValueError(
            f"max_nodes ({max_nodes}) must be >= min_nodes ({min_nodes})"
        )
    rng = random.Random(seed)
    n = rng.randint(min_nodes, max_nodes)
    nets = []
    for _ in range(rng.randint(3, 2 * n)):
        size = rng.randint(2, min(max_net_size, n))
        nets.append(rng.sample(range(n), size))
    return Hypergraph(nets, num_nodes=n)


def weighted_instance(
    seed: int,
    max_nodes: int = 12,
    max_node_weight: int = 4,
    max_net_cost: int = 3,
) -> Hypergraph:
    """Like :func:`random_instance` but with integer weights and costs.

    Exercises the weighted code paths (balance arithmetic, tree-container
    float gains) that unit-weight instances cannot reach.
    """
    base = random_instance(seed, max_nodes=max_nodes)
    rng = random.Random(seed ^ 0x5EED)
    weights = [float(rng.randint(1, max_node_weight)) for _ in range(base.num_nodes)]
    costs = [float(rng.randint(1, max_net_cost)) for _ in range(base.num_nets)]
    return Hypergraph(
        [list(base.net(e)) for e in range(base.num_nets)],
        num_nodes=base.num_nodes,
        net_costs=costs,
        node_weights=weights,
    )


def instance_grid(
    seeds: Iterable[int], max_nodes: int = 12
) -> Iterator[Tuple[int, Hypergraph]]:
    """Yield ``(seed, graph)`` for every seed — the differential-grid diet."""
    for seed in seeds:
        yield seed, random_instance(seed, max_nodes=max_nodes)


def circuit_fingerprint(graph: Hypergraph) -> str:
    """Content hash of a netlist — the golden corpus's circuit identity.

    Delegates to the engine's cache-key fingerprint so a golden entry and
    a cached result of the same circuit agree on what "same" means.
    """
    from ..engine.units import hypergraph_fingerprint

    return hypergraph_fingerprint(graph)


#: Canonical differential-grid seeds (20 instances) used by the audit
#: lane; chosen arbitrarily but fixed so failures reproduce by name.
GRID_SEEDS: List[int] = list(range(100, 120))
