"""Shared test infrastructure: seeded instances + hypothesis strategies.

Two layers with different dependency footprints:

* :mod:`repro.testing.instances` — deterministic, stdlib-only instance
  generators (:func:`random_instance`, :func:`weighted_instance`,
  :func:`instance_grid`) and the :func:`circuit_fingerprint` used by the
  golden corpus.  Safe to import from library code (the audit package's
  differential grids do).
* :mod:`repro.testing.strategies` — hypothesis composites for
  property-based tests.  Import the submodule explicitly (``from
  repro.testing import strategies``); it requires the ``hypothesis``
  package, which is a test-time dependency only.
* :mod:`repro.testing.partitioners` — picklable stub partitioners
  (deterministic result, controllable delay) for engine and chaos
  tests that cross process boundaries.
"""

from .instances import (
    GRID_SEEDS,
    circuit_fingerprint,
    instance_grid,
    random_instance,
    weighted_instance,
)
from .partitioners import EchoPartitioner, FlakyPartitioner, SleepyPartitioner

__all__ = [
    "GRID_SEEDS",
    "circuit_fingerprint",
    "instance_grid",
    "random_instance",
    "weighted_instance",
    "SleepyPartitioner",
    "EchoPartitioner",
    "FlakyPartitioner",
]
