"""Picklable stub partitioners for engine/chaos testing.

Pool workers unpickle the partitioner inside a fresh interpreter, so
stubs used by multi-process tests must live in an importable module —
classes defined inside test files only survive fork, not spawn, and are
invisible to subprocess-based harnesses like ``scripts/chaos_smoke.py``.
These stubs compute nothing real; their value is a deterministic,
instantly recognizable result (``cut == seed``) plus a controllable
wall-clock cost.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..hypergraph import Hypergraph
from ..partition import BalanceConstraint, BipartitionResult


class SleepyPartitioner:
    """Sleeps ``delay`` seconds, then returns a deterministic result.

    ``cut == float(seed)`` makes batch results trivially checkable: a
    resumed or fault-degraded batch must reproduce exactly the seed
    sequence as its cut list.
    """

    name = "SLEEPY"

    def __init__(self, delay: float = 0.2) -> None:
        self.delay = delay

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,
        initial_sides: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> BipartitionResult:
        """Sleep ``delay`` seconds, then return a result with ``cut == seed``."""
        time.sleep(self.delay)
        return BipartitionResult(
            sides=[v % 2 for v in range(graph.num_nodes)],
            cut=float(seed or 0),
            algorithm=self.name,
            seed=seed,
            runtime_seconds=self.delay,
        )


class EchoPartitioner(SleepyPartitioner):
    """Zero-delay :class:`SleepyPartitioner` (pure bookkeeping runs)."""

    name = "ECHO"

    def __init__(self) -> None:
        super().__init__(delay=0.0)


class FlakyPartitioner(SleepyPartitioner):
    """Fails permanently on a fixed seed set, echoes otherwise.

    The deterministic stand-in for a partitioner that dies on specific
    inputs: seeds in ``failing_seeds`` raise ``RuntimeError`` (permanent
    — never retried by the engine), every other seed behaves like
    :class:`EchoPartitioner`.  Drive it under an error-collecting engine
    to test mixed success/failure batches.
    """

    name = "FLAKY"

    def __init__(
        self, failing_seeds: Sequence[int] = (), delay: float = 0.0
    ) -> None:
        super().__init__(delay=delay)
        self.failing_seeds = tuple(failing_seeds)

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,
        initial_sides: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> BipartitionResult:
        """Raise on a failing seed, else return ``cut == seed``."""
        if seed in self.failing_seeds:
            if self.delay:
                time.sleep(self.delay)
            raise RuntimeError(f"flaky failure on seed {seed}")
        return super().partition(
            graph, balance=balance, initial_sides=initial_sides, seed=seed
        )
