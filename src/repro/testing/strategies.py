"""Hypothesis strategies for partitioning objects.

The property-based tests across the suite all need the same raw material
— random hypergraphs, partitions of them, weight/cost profiles, move
sequences — and each used to roll its own.  These composites are the
shared vocabulary; import them as::

    from repro.testing import strategies as st_repro

    @given(st_repro.hypergraphs())
    def test_something(graph): ...

Design rules:

* every strategy shrinks toward the smallest legible counterexample
  (few nodes, few nets, unit weights);
* generated objects always satisfy the library's own invariants (no
  empty nets, weights strictly positive) — strategies produce *valid*
  inputs, the tests probe behaviour on them;
* strategies that depend on a graph (``sides_for``, ``move_sequences``)
  take the graph as an argument so they compose under ``flatmap``.

Requires the ``hypothesis`` package (a test-time dependency only; the
rest of :mod:`repro.testing` works without it).
"""

from __future__ import annotations

from typing import List, Optional

from hypothesis import strategies as st

from ..hypergraph import Hypergraph

__all__ = [
    "hypergraphs",
    "graphs_with_sides",
    "sides_for",
    "balanced_sides_for",
    "weight_profiles",
    "cost_profiles",
    "probability_vectors",
    "move_sequences",
    "gain_values",
]


#: Gains as they occur in containers: exact small integers (FM/bucket)
#: and representative floats (tree containers under weighted nets).
def gain_values(integral: bool = False) -> st.SearchStrategy[float]:
    """Container gain keys; ``integral=True`` restricts to bucket range."""
    ints = st.integers(min_value=-20, max_value=20).map(float)
    if integral:
        return ints
    floats = st.floats(
        min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
    )
    return ints | floats


def weight_profiles(
    n: int, max_weight: int = 5, allow_float: bool = True
) -> st.SearchStrategy[List[float]]:
    """Node-weight vectors: unit, integer, or (optionally) fractional.

    Weights are strictly positive, matching the hypergraph invariant;
    shrinks toward all-unit (the seed suite's default regime).
    """
    unit = st.just([1.0] * n)
    ints = st.lists(
        st.integers(min_value=1, max_value=max_weight).map(float),
        min_size=n, max_size=n,
    )
    choices = unit | ints
    if allow_float:
        floats = st.lists(
            st.floats(min_value=0.5, max_value=float(max_weight)),
            min_size=n, max_size=n,
        )
        choices = choices | floats
    return choices


def cost_profiles(
    e: int, max_cost: int = 4, allow_float: bool = False
) -> st.SearchStrategy[List[float]]:
    """Net-cost vectors; default integral (FM-bucket compatible)."""
    unit = st.just([1.0] * e)
    ints = st.lists(
        st.integers(min_value=1, max_value=max_cost).map(float),
        min_size=e, max_size=e,
    )
    choices = unit | ints
    if allow_float:
        floats = st.lists(
            st.floats(min_value=0.25, max_value=float(max_cost)),
            min_size=e, max_size=e,
        )
        choices = choices | floats
    return choices


@st.composite
def hypergraphs(
    draw,
    min_nodes: int = 2,
    max_nodes: int = 12,
    max_nets: Optional[int] = None,
    max_net_size: int = 5,
    allow_single_pin: bool = True,
    weighted: bool = False,
    costed: bool = False,
) -> Hypergraph:
    """Random valid hypergraphs (every node exists; nets never empty).

    ``weighted``/``costed`` add node weights / net costs drawn from
    :func:`weight_profiles` / :func:`cost_profiles`; otherwise both stay
    at the unit defaults so the graph is FM-bucket compatible.
    """
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    if max_nets is None:
        max_nets = 2 * n
    min_pins = 1 if allow_single_pin else min(2, n)
    net = st.lists(
        st.integers(min_value=0, max_value=n - 1),
        min_size=min_pins,
        max_size=min(max_net_size, n),
        unique=True,
    )
    nets = draw(st.lists(net, min_size=1, max_size=max_nets))
    weights = draw(weight_profiles(n)) if weighted else None
    costs = draw(cost_profiles(len(nets))) if costed else None
    return Hypergraph(
        nets, num_nodes=n, net_costs=costs, node_weights=weights
    )


def sides_for(graph: Hypergraph) -> st.SearchStrategy[List[int]]:
    """Arbitrary 0/1 side assignments for ``graph`` (any balance)."""
    return st.lists(
        st.integers(min_value=0, max_value=1),
        min_size=graph.num_nodes,
        max_size=graph.num_nodes,
    )


@st.composite
def balanced_sides_for(draw, graph: Hypergraph) -> List[int]:
    """Node-count-balanced assignments (⌈n/2⌉ on a random side).

    Balanced by cardinality, not weight — pair with unweighted graphs
    (or test the weight-balance machinery deliberately).
    """
    n = graph.num_nodes
    order = draw(st.permutations(range(n)))
    flip = draw(st.booleans())
    sides = [0] * n
    for i in order[: n // 2]:
        sides[i] = 1
    if flip:
        sides = [1 - s for s in sides]
    return sides


@st.composite
def graphs_with_sides(
    draw,
    min_nodes: int = 2,
    max_nodes: int = 12,
    balanced: bool = False,
    **graph_kwargs,
):
    """``(graph, sides)`` pairs — the common fixture for partition tests."""
    graph = draw(
        hypergraphs(min_nodes=min_nodes, max_nodes=max_nodes, **graph_kwargs)
    )
    if balanced:
        sides = draw(balanced_sides_for(graph))
    else:
        sides = draw(sides_for(graph))
    return graph, sides


def probability_vectors(
    n: int, pmin: float = 0.0, pmax: float = 1.0
) -> st.SearchStrategy[List[float]]:
    """Per-node probability vectors within ``[pmin, pmax]`` (Eqn. 2 domain)."""
    return st.lists(
        st.floats(min_value=pmin, max_value=pmax,
                  allow_nan=False, allow_infinity=False),
        min_size=n, max_size=n,
    )


def move_sequences(
    graph: Hypergraph, max_moves: Optional[int] = None
) -> st.SearchStrategy[List[int]]:
    """Distinct node sequences — tentative move-and-lock orders.

    Every pass engine moves a node at most once per pass, so a move
    sequence is a prefix of a permutation of the node ids.
    """
    n = graph.num_nodes
    cap = n if max_moves is None else min(max_moves, n)
    return st.permutations(range(n)).flatmap(
        lambda perm: st.integers(min_value=0, max_value=cap).map(
            lambda k: list(perm[:k])
        )
    )
