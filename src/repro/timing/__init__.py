"""Timing-driven (non-uniform net cost) partitioning support."""

from .weights import (
    TimingReport,
    critical_net_weights,
    slack_based_weights,
    synthetic_critical_nets,
    timing_report,
)

__all__ = [
    "critical_net_weights",
    "slack_based_weights",
    "synthetic_critical_nets",
    "timing_report",
    "TimingReport",
]
