"""Timing-driven net weighting (paper Secs. 1, 4 and 5).

The paper motivates non-uniform net costs with timing-driven partitioning
[Jackson, Srinivasan & Kuh 1990]: "a critical net is assigned more weight
than a non-critical one to ensure that the length of critical or
near-critical nets are kept as short as possible".  Crucially, weighted
nets break FM's O(1) bucket structure (FM must fall back to a tree,
Sec. 4) while PROP's AVL-based engine handles them natively at unchanged
complexity — one of PROP's selling points and the subject of a dedicated
benchmark (``benchmarks/test_ablations.py``) and example
(``examples/timing_driven.py``).

This module provides weighting policies plus a report comparing how well a
partition protects critical nets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from ..hypergraph import Hypergraph


def critical_net_weights(
    graph: Hypergraph,
    critical_nets: Sequence[int],
    critical_weight: float = 10.0,
) -> Hypergraph:
    """Up-weight an explicit set of critical nets (others keep cost 1)."""
    if critical_weight <= 0:
        raise ValueError(f"critical_weight must be > 0, got {critical_weight}")
    critical: Set[int] = set(critical_nets)
    for net_id in critical:
        if net_id < 0 or net_id >= graph.num_nets:
            raise ValueError(f"net id {net_id} out of range")
    costs = [
        critical_weight if i in critical else 1.0
        for i in range(graph.num_nets)
    ]
    return graph.with_net_costs(costs)


def slack_based_weights(
    graph: Hypergraph,
    slacks: Sequence[float],
    alpha: float = 2.0,
) -> Hypergraph:
    """Cost ``1 + alpha · max(0, −slack)`` per net.

    Nets with negative timing slack (violating paths) get proportionally
    heavier; safely-slack nets keep unit cost.
    """
    if len(slacks) != graph.num_nets:
        raise ValueError(
            f"slacks has length {len(slacks)}, expected {graph.num_nets}"
        )
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    costs = [1.0 + alpha * max(0.0, -s) for s in slacks]
    return graph.with_net_costs(costs)


def synthetic_critical_nets(
    graph: Hypergraph,
    fraction: float = 0.1,
    seed: int = 0,
) -> List[int]:
    """A seeded random sample of nets marked critical.

    Stand-in for a static timing analysis (offline substitution per
    DESIGN.md): long-path criticality in a real flow also selects a
    sparse, roughly size-biased subset of nets; for exercising the
    *partitioners* only the weighting structure matters.  Larger nets are
    twice as likely to be picked (long nets are slower).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = random.Random(seed)
    target = max(1, round(graph.num_nets * fraction))
    weights = [
        2.0 if graph.net_size(i) >= 3 else 1.0 for i in range(graph.num_nets)
    ]
    chosen: Set[int] = set()
    while len(chosen) < target:
        chosen.add(rng.choices(range(graph.num_nets), weights=weights)[0])
    return sorted(chosen)


@dataclass(frozen=True)
class TimingReport:
    """How a partition treats critical vs non-critical nets."""

    weighted_cut: float
    unweighted_cut: int
    critical_cut: int
    critical_total: int

    @property
    def critical_cut_fraction(self) -> float:
        if self.critical_total == 0:
            return 0.0
        return self.critical_cut / self.critical_total


def timing_report(
    weighted_graph: Hypergraph,
    sides: Sequence[int],
    critical_nets: Optional[Sequence[int]] = None,
) -> TimingReport:
    """Evaluate a partition of a weighted netlist.

    When ``critical_nets`` is omitted, every net with cost > 1 counts as
    critical.
    """
    if critical_nets is None:
        critical = {
            i
            for i in range(weighted_graph.num_nets)
            if weighted_graph.net_cost(i) > 1.0
        }
    else:
        critical = set(critical_nets)
    weighted = 0.0
    unweighted = 0
    critical_cut = 0
    for net_id, pins in enumerate(weighted_graph.nets):
        first = sides[pins[0]]
        if any(sides[v] != first for v in pins[1:]):
            weighted += weighted_graph.net_cost(net_id)
            unweighted += 1
            if net_id in critical:
                critical_cut += 1
    return TimingReport(
        weighted_cut=weighted,
        unweighted_cut=unweighted,
        critical_cut=critical_cut,
        critical_total=len(critical),
    )
