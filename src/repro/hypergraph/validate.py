"""Netlist linting and connectivity analysis.

Real netlists arrive with warts — duplicate nets, single-pin stubs,
isolated spare cells, disconnected blocks — that partitioners tolerate but
users should know about.  :func:`lint` produces a structured report;
:func:`connected_components` / :func:`is_connected` give the connectivity
facts the spectral methods' behaviour depends on (a disconnected Laplacian
has a degenerate Fiedler vector).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List

from .hypergraph import Hypergraph


def connected_components(graph: Hypergraph) -> List[List[int]]:
    """Node sets of the connected components (via shared-net adjacency).

    Components are returned sorted by size (largest first), nodes sorted
    within each.  Isolated nodes form singleton components.
    """
    n = graph.num_nodes
    seen = [False] * n
    components: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        component = [start]
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for net_id in graph.node_nets(u):
                for v in graph.net(net_id):
                    if not seen[v]:
                        seen[v] = True
                        component.append(v)
                        queue.append(v)
        components.append(sorted(component))
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph: Hypergraph) -> bool:
    """True when every node is reachable from every other."""
    if graph.num_nodes <= 1:
        return True
    return len(connected_components(graph)) == 1


@dataclass
class LintReport:
    """Findings of a netlist lint pass."""

    num_components: int
    isolated_nodes: List[int] = field(default_factory=list)
    single_pin_nets: List[int] = field(default_factory=list)
    duplicate_net_groups: List[List[int]] = field(default_factory=list)
    huge_nets: List[int] = field(default_factory=list)
    zero_cost_nets: List[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (
            self.num_components == 1
            and not self.isolated_nodes
            and not self.single_pin_nets
            and not self.duplicate_net_groups
            and not self.huge_nets
        )

    def summary(self) -> str:
        """Human-readable multi-line summary of the findings."""
        lines = [
            f"components: {self.num_components}"
            + ("" if self.num_components == 1 else "  (disconnected!)"),
        ]
        if self.isolated_nodes:
            lines.append(f"isolated nodes: {len(self.isolated_nodes)}")
        if self.single_pin_nets:
            lines.append(f"single-pin nets: {len(self.single_pin_nets)}")
        if self.duplicate_net_groups:
            dups = sum(len(g) - 1 for g in self.duplicate_net_groups)
            lines.append(f"duplicate nets: {dups}")
        if self.huge_nets:
            lines.append(f"huge nets (>10% of nodes): {len(self.huge_nets)}")
        if self.zero_cost_nets:
            lines.append(f"zero-cost nets: {len(self.zero_cost_nets)}")
        if self.clean:
            lines.append("netlist is clean")
        return "\n".join(lines)


def lint(graph: Hypergraph, huge_net_fraction: float = 0.1) -> LintReport:
    """Inspect ``graph`` for the usual netlist warts.

    ``huge_net_fraction``: nets touching more than this fraction of all
    nodes are flagged (clock/reset/power-like; most flows filter them
    before clustering — see
    :func:`repro.hypergraph.transforms.remove_large_nets`).
    """
    if not 0.0 < huge_net_fraction <= 1.0:
        raise ValueError("huge_net_fraction must be in (0, 1]")

    duplicate_groups: Dict[tuple, List[int]] = {}
    single_pin: List[int] = []
    huge: List[int] = []
    zero_cost: List[int] = []
    threshold = max(2, int(graph.num_nodes * huge_net_fraction))
    for net_id, pins in enumerate(graph.nets):
        key = tuple(sorted(pins))
        duplicate_groups.setdefault(key, []).append(net_id)
        if len(pins) == 1:
            single_pin.append(net_id)
        if len(pins) > threshold:
            huge.append(net_id)
        if graph.net_cost(net_id) == 0.0:
            zero_cost.append(net_id)

    return LintReport(
        num_components=len(connected_components(graph)),
        isolated_nodes=graph.isolated_nodes(),
        single_pin_nets=single_pin,
        duplicate_net_groups=[
            sorted(g) for g in duplicate_groups.values() if len(g) > 1
        ],
        huge_nets=huge,
        zero_cost_nets=zero_cost,
    )
