"""Synthetic circuit generators.

The DAC-96 paper evaluates on 16 ACM/SIGDA benchmark netlists (Table 1).
Those netlists are not redistributable / not available offline, so this module
provides deterministic, seeded generators that produce *circuit-like*
hypergraphs, including :func:`benchmark_suite`, which reproduces the **exact
node / net / pin counts of paper Table 1** with a hierarchically clustered
(Rent-style) topology.  See DESIGN.md, "Substitutions" for the rationale: the
partitioners under study are topology heuristics, and relative behaviour is
driven by clustered structure plus hypergraph statistics, both of which are
matched here.

Generators:

* :func:`random_hypergraph` — unstructured control case (no clusters; all
  partitioners should do roughly equally badly).
* :func:`planted_bisection` — two planted halves with a known small set of
  crossing nets; used heavily in tests because the optimum is known by
  construction.
* :func:`hierarchical_circuit` — the main circuit model: recursive clusters,
  mostly-local nets with a Rent-like locality distribution and a 2-3 pin
  dominated net-size distribution with a long tail (clock/reset-like nets).
* :func:`benchmark_suite` / :func:`make_benchmark` — the Table-1 instances.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from .hypergraph import Hypergraph

# ---------------------------------------------------------------------------
# Paper Table 1: benchmark circuit characteristics (exact values).
# ---------------------------------------------------------------------------
TABLE1_CHARACTERISTICS: Dict[str, Tuple[int, int, int]] = {
    # name: (num_nodes, num_nets, num_pins)
    "balu": (801, 735, 2697),
    "bm1": (882, 903, 2910),
    "p1": (833, 902, 2908),
    "p2": (3014, 3029, 11219),
    "s13207": (8772, 8651, 20606),
    "s15850": (10470, 10383, 24712),
    "s9234": (5866, 5844, 14065),
    "struct": (1952, 1920, 5471),
    "19ks": (2844, 3282, 10547),
    "biomed": (6514, 5742, 21040),
    "industry2": (12637, 13419, 48404),
    "t2": (1663, 1720, 6134),
    "t3": (1607, 1618, 5807),
    "t4": (1515, 1658, 5975),
    "t5": (2595, 2750, 10076),
    "t6": (1752, 1541, 6638),
}

#: Circuit order used throughout the paper's tables.
BENCHMARK_NAMES: Tuple[str, ...] = tuple(TABLE1_CHARACTERISTICS)


def random_hypergraph(
    num_nodes: int,
    num_nets: int,
    avg_net_size: float = 3.5,
    seed: int = 0,
) -> Hypergraph:
    """Fully random hypergraph (no planted structure).

    Net sizes are 2 plus a geometric tail with mean ``avg_net_size``; pins
    are sampled uniformly from all nodes.
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    if avg_net_size < 2:
        raise ValueError("avg_net_size must be >= 2")
    rng = random.Random(seed)
    geo_p = 1.0 / (avg_net_size - 1.0)
    nets: List[List[int]] = []
    for _ in range(num_nets):
        size = 2
        while rng.random() > geo_p and size < num_nodes:
            size += 1
        nets.append(rng.sample(range(num_nodes), size))
    return Hypergraph(nets, num_nodes=num_nodes)


def planted_bisection(
    nodes_per_side: int,
    nets_per_side: int,
    crossing_nets: int,
    net_size: int = 3,
    seed: int = 0,
    shuffle: bool = True,
) -> Tuple[Hypergraph, List[int], int]:
    """Two dense halves joined by exactly ``crossing_nets`` crossing nets.

    Returns ``(hypergraph, planted_sides, crossing_nets)`` where
    ``planted_sides[v]`` is 0/1.  Any balanced bisection along the planted
    split cuts exactly ``crossing_nets`` nets, which upper-bounds the optimum
    — tests use this as a quality oracle for the partitioners.

    When ``shuffle`` is true, node indices are randomly permuted so the
    planted structure is not encoded in index order.
    """
    if nodes_per_side < net_size:
        raise ValueError("nodes_per_side must be >= net_size")
    rng = random.Random(seed)
    n = 2 * nodes_per_side
    perm = list(range(n))
    if shuffle:
        rng.shuffle(perm)

    side_nodes = (
        [perm[v] for v in range(nodes_per_side)],
        [perm[v] for v in range(nodes_per_side, n)],
    )
    nets: List[List[int]] = []
    for side in (0, 1):
        pool = side_nodes[side]
        for _ in range(nets_per_side):
            nets.append(rng.sample(pool, net_size))
    for _ in range(crossing_nets):
        a = rng.choice(side_nodes[0])
        b = rng.choice(side_nodes[1])
        while b == a:  # pragma: no cover - distinct pools, can't collide
            b = rng.choice(side_nodes[1])
        nets.append([a, b])

    sides = [0] * n
    for v in side_nodes[1]:
        sides[v] = 1
    return Hypergraph(nets, num_nodes=n), sides, crossing_nets


def _net_sizes(
    num_nets: int,
    num_pins: int,
    max_size: int,
    rng: random.Random,
) -> List[int]:
    """Net sizes summing exactly to ``num_pins``, all >= 2 (or 1 if forced).

    Circuit-like distribution: dominated by 2-3 pin nets, with a small
    number of high-fanout (clock/reset-like) nets receiving chunks of the
    surplus pins.
    """
    if num_nets <= 0:
        raise ValueError("num_nets must be positive")
    base = 2 if num_pins >= 2 * num_nets else 1
    sizes = [base] * num_nets
    surplus = num_pins - base * num_nets
    if surplus < 0:
        raise ValueError(
            f"num_pins={num_pins} too small for {num_nets} nets"
        )
    while surplus > 0:
        i = rng.randrange(num_nets)
        if rng.random() < 0.015:
            # grow a high-fanout net
            chunk = min(surplus, rng.randint(4, 30), max_size - sizes[i])
        else:
            chunk = min(surplus, 1 if sizes[i] < 6 else 0)
        if chunk <= 0:
            continue
        sizes[i] += chunk
        surplus -= chunk
    return sizes


def hierarchical_circuit(
    num_nodes: int,
    num_nets: int,
    num_pins: int,
    seed: int = 0,
    locality: float = 0.62,
    leaf_size: int = 12,
) -> Hypergraph:
    """Rent-style hierarchically clustered circuit.

    Node indices are (conceptually) arranged on a line and recursively
    bisected into a cluster tree with leaves of ~``leaf_size`` nodes.  Each
    net picks a tree level — deep (local) levels with probability
    ``locality`` per descent step, so most nets are confined to small
    clusters and few span the whole chip — then samples its pins from a
    uniformly-chosen cluster at that level.  Finally node indices are
    permuted so the hierarchy is not visible in index order.

    The exact ``num_pins`` total is honoured (this is what lets
    :func:`benchmark_suite` match paper Table 1 to the pin).
    """
    if num_nodes < 4:
        raise ValueError("need at least 4 nodes")
    if not 0.0 < locality < 1.0:
        raise ValueError("locality must be in (0, 1)")
    rng = random.Random(seed)

    # Depth of the cluster tree.
    levels = 0
    span = num_nodes
    while span > leaf_size:
        span = (span + 1) // 2
        levels += 1

    sizes = _net_sizes(num_nets, num_pins, max_size=num_nodes, rng=rng)

    perm = list(range(num_nodes))
    rng.shuffle(perm)

    nets: List[List[int]] = []
    for size in sizes:
        # Descend the cluster tree: at each step, with prob. `locality`
        # go one level deeper into a random child half.
        lo, hi = 0, num_nodes
        for _ in range(levels):
            width = hi - lo
            if width <= max(size, leaf_size):
                break
            if rng.random() > locality:
                break
            mid = lo + width // 2
            if rng.random() < 0.5:
                hi = mid
            else:
                lo = mid
        width = hi - lo
        if size > width:
            # a huge net: fall back to a window large enough to host it
            lo = rng.randrange(0, num_nodes - size + 1)
            hi = lo + size
            width = size
        pins = rng.sample(range(lo, hi), size)
        nets.append([perm[v] for v in pins])
    return Hypergraph(nets, num_nodes=num_nodes)


def make_benchmark(
    name: str,
    scale: float = 1.0,
    seed: Optional[int] = None,
) -> Hypergraph:
    """Generate one synthetic stand-in for a Table-1 benchmark circuit.

    With ``scale == 1`` the instance matches the paper's node/net/pin counts
    exactly.  ``scale < 1`` shrinks all three counts proportionally (keeping
    the same statistics) — used by the benchmark harness to keep pure-Python
    runtimes manageable (see DESIGN.md, decision 6).

    The seed defaults to a stable hash of the circuit name, so every call
    with the same (name, scale) yields the identical netlist.
    """
    try:
        n, e, m = TABLE1_CHARACTERISTICS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(TABLE1_CHARACTERISTICS)}"
        ) from None
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    if scale != 1.0:
        n = max(64, round(n * scale))
        e = max(48, round(e * scale))
        m = max(2 * e + e // 2, round(m * scale))
    if seed is None:
        # Stable across processes (unlike hash()).
        seed = sum((i + 1) * ord(c) for i, c in enumerate(name)) * 7919
    return hierarchical_circuit(n, e, m, seed=seed)


def benchmark_suite(
    scale: float = 1.0,
    names: Optional[Sequence[str]] = None,
) -> Dict[str, Hypergraph]:
    """The full Table-1 suite (or a named subset) as a name → netlist dict."""
    if names is None:
        names = BENCHMARK_NAMES
    return {name: make_benchmark(name, scale=scale) for name in names}


# ---------------------------------------------------------------------------
# Scale family: 100k-1M node circuits (vectorized, version-stable PRNG).
# ---------------------------------------------------------------------------
_SM64_GAMMA = 0x9E3779B97F4A7C15
_SM64_MIX1 = 0xBF58476D1CE4E5B9
_SM64_MIX2 = 0x94D049BB133111EB


def _splitmix64_array(x):
    """Vectorized splitmix64 finalizer over a uint64 numpy array.

    The same constants the subround kernels use for tie-break hashing
    (:func:`repro.kernels.subround.tie_break_keys`).  Chosen over
    ``np.random.Generator`` deliberately: NEP 19 does not guarantee
    Generator streams are stable across numpy versions, while these
    fixed-width integer ops are reproducible forever — a hard
    requirement for golden-corpus instances.
    """
    import numpy as np

    z = (x + np.uint64(_SM64_GAMMA)) * np.uint64(1)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_SM64_MIX1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_SM64_MIX2)
    return z ^ (z >> np.uint64(31))


def _hash_stream(seed: int, stream: int, count: int):
    """``count`` deterministic uint64 hashes for one (seed, stream)."""
    import numpy as np

    base = np.uint64((seed & 0xFFFFFFFF) * 0x1_0000_0001 + stream * 0x9E37)
    idx = np.arange(count, dtype=np.uint64)
    return _splitmix64_array(idx * np.uint64(0xD1B54A32D192ED03) + base)


def large_circuit(
    num_nodes: int,
    seed: int = 0,
    local_nets_per_node: float = 0.4,
    hub_nets: int = 8,
) -> Hypergraph:
    """A sparse 100k-1M-node circuit, generated in vectorized numpy.

    The scale workload for the n-level coarsening engine
    (:mod:`repro.multilevel.nlevel`): structure is circuit-like but
    bounded-degree, so coarsening regions stay small.

    * a **scan chain** — ``n - 1`` two-pin nets threading a seeded
      permutation of all nodes (connected, no isolated nodes);
    * **local nets** — ``local_nets_per_node * n`` nets of 3-9 pins,
      each confined to a small window of the permutation (placement
      locality), pins placed by stratified offsets so they are distinct
      by construction;
    * a few **hub nets** of 80-400 pins (clock/reset-like), which
      exercise the coarsener's large-net skip and the benches' pad-heavy
      paths.

    Deterministic for a given ``(num_nodes, seed, ...)`` on every
    platform and numpy version: all randomness is splitmix64 over
    fixed-width integers (see :func:`_splitmix64_array`), never a numpy
    Generator stream.  Generation is O(pins) vectorized; the Hypergraph
    constructor's per-pin validation dominates at the 1M end.
    """
    import numpy as np

    if num_nodes < 64:
        raise ValueError("large_circuit needs at least 64 nodes")
    if local_nets_per_node < 0:
        raise ValueError("local_nets_per_node must be >= 0")
    if hub_nets < 0:
        raise ValueError("hub_nets must be >= 0")
    n = num_nodes

    # Seeded permutation: argsort of per-node hashes (ties impossible in
    # practice; argsort is stable, so even a collision is deterministic).
    perm = np.argsort(_hash_stream(seed, 1, n), kind="stable").astype(np.int64)

    nets: List[List[int]] = []

    # Scan chain along the permutation.
    chain = np.stack([perm[:-1], perm[1:]], axis=1)
    nets.extend(chain.tolist())

    # Local nets: windows over the permutation, stratified distinct pins.
    num_local = int(round(local_nets_per_node * n))
    if num_local > 0:
        h_size = _hash_stream(seed, 2, num_local)
        h_start = _hash_stream(seed, 3, num_local)
        h_frac = _hash_stream(seed, 4, num_local)
        # 3..9 pins, biased toward small nets (product of two 3-bit dice).
        a = (h_size >> np.uint64(8)) & np.uint64(7)
        b = (h_size >> np.uint64(16)) & np.uint64(7)
        sizes = (3 + (a * b) // np.uint64(8)).astype(np.int64)
        windows = np.minimum(4 * sizes + 8, n)
        starts = (h_start % (n - windows + 1).astype(np.uint64)).astype(np.int64)
        u = (h_frac >> np.uint64(11)).astype(np.float64) / float(1 << 53)

        total = int(sizes.sum())
        net_of_pin = np.repeat(np.arange(num_local), sizes)
        first_pin = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        k = np.arange(total, dtype=np.int64) - first_pin[net_of_pin]
        # floor(W*(k+u)/s) is strictly increasing in k while W >= s, so
        # the offsets (hence the pins) are distinct by construction.
        offs = np.floor(
            windows[net_of_pin] * (k + u[net_of_pin]) / sizes[net_of_pin]
        ).astype(np.int64)
        positions = starts[net_of_pin] + offs
        local_pins = perm[positions]
        splits = np.cumsum(sizes)[:-1]
        nets.extend(part.tolist() for part in np.split(local_pins, splits))

    # Hub nets: high-fanout, stratified over the whole permutation.
    if hub_nets > 0:
        h_hub = _hash_stream(seed, 5, hub_nets)
        h_hubu = _hash_stream(seed, 6, hub_nets)
        for j in range(hub_nets):
            size = int(80 + h_hub[j] % np.uint64(321))
            size = min(size, n // 4)
            if size < 2:
                continue
            uj = float(h_hubu[j] >> np.uint64(11)) / float(1 << 53)
            offs = np.floor(
                n * (np.arange(size, dtype=np.int64) + uj) / size
            ).astype(np.int64)
            nets.append(perm[offs].tolist())

    return Hypergraph(nets, num_nodes=n)


# ---------------------------------------------------------------------------
# Batch instances: many independent small circuits from one seed.
# ---------------------------------------------------------------------------
def small_instance(
    size_range: Tuple[int, int],
    seed: int,
    index: int,
) -> Hypergraph:
    """Instance ``index`` of the seeded :func:`many_small` batch.

    Each instance is a self-contained :func:`hierarchical_circuit` whose
    node count is drawn uniformly from ``size_range`` by an RNG derived
    from ``(seed, index)`` alone — instance ``i`` is identical whether
    the batch is built whole or one circuit at a time, which is what
    lets a service job or a pool worker materialize exactly the circuit
    it needs without generating its predecessors.
    """
    lo, hi = size_range
    if lo < 6:
        raise ValueError(f"size_range lower bound must be >= 6, got {lo}")
    if hi < lo:
        raise ValueError(f"bad size_range ({lo}, {hi}): upper < lower")
    # Distinct odd multiplier decorrelates adjacent (seed, index) pairs.
    rng = random.Random((seed * 1_000_003 + index) & 0x7FFFFFFF)
    n = rng.randint(lo, hi)
    e = max(6, round(n * 1.25))
    m = max(2 * e + e // 2, round(e * 2.7))
    return hierarchical_circuit(
        n, e, m, seed=rng.randrange(2**31), leaf_size=6
    )


def many_small(
    n_circuits: int,
    size_range: Tuple[int, int] = (8, 24),
    seed: int = 0,
) -> List[Hypergraph]:
    """A seeded batch of ``n_circuits`` independent small circuits.

    The workload generator for load tests and multi-instance ensemble
    studies: thousands of cheap, structurally varied instances from one
    ``(n_circuits, size_range, seed)`` triple.  Prefix-stable —
    ``many_small(1000, r, s)[i] == many_small(i + 1, r, s)[i]`` — so
    distributed consumers can address circuits by index (see
    :func:`small_instance`).
    """
    if n_circuits < 0:
        raise ValueError(f"n_circuits must be >= 0, got {n_circuits}")
    return [small_instance(size_range, seed, i) for i in range(n_circuits)]
