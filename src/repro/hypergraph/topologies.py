"""Structured topology generators: mesh, torus, tree, ring, butterfly.

Complements the statistical generators in
:mod:`repro.hypergraph.generators` with *known-structure* netlists whose
optimal bisections are understood analytically:

* a ``w x h`` **mesh** has a minimum bisection of ``min(w, h)`` (cut down
  the short axis); the **torus** doubles that;
* a **ring** of n nodes has a minimum balanced bisection of exactly 2;
* a complete binary **tree** has a minimum bisection of 1 (cut one of the
  root's child edges — one half is a subtree);
* a **butterfly** network's bisection is Θ(n / log n).

These make sharp partitioner tests (the planted generators only give
upper bounds) and are the classic worst/best cases for spectral methods.
"""

from __future__ import annotations

from typing import List

from .hypergraph import Hypergraph


def mesh_circuit(width: int, height: int) -> Hypergraph:
    """``width x height`` grid; 2-pin nets between 4-neighbors.

    Node ``(x, y)`` has index ``y * width + x``.  Minimum bisection cut is
    ``min(width, height)`` for even node counts.
    """
    if width < 1 or height < 1:
        raise ValueError("mesh dimensions must be >= 1")
    nets: List[List[int]] = []
    for y in range(height):
        for x in range(width):
            node = y * width + x
            if x + 1 < width:
                nets.append([node, node + 1])
            if y + 1 < height:
                nets.append([node, node + width])
    return Hypergraph(nets, num_nodes=width * height)


def torus_circuit(width: int, height: int) -> Hypergraph:
    """Mesh with wraparound edges in both dimensions.

    Wrap edges are skipped along a dimension of size < 3 (they would
    duplicate existing mesh edges).
    """
    if width < 1 or height < 1:
        raise ValueError("torus dimensions must be >= 1")
    nets = [list(net) for net in mesh_circuit(width, height).nets]
    if width >= 3:
        for y in range(height):
            nets.append([y * width + width - 1, y * width])
    if height >= 3:
        for x in range(width):
            nets.append([(height - 1) * width + x, x])
    return Hypergraph(nets, num_nodes=width * height)


def ring_circuit(num_nodes: int) -> Hypergraph:
    """Cycle of 2-pin nets; optimal balanced bisection cuts exactly 2."""
    if num_nodes < 3:
        raise ValueError("ring needs at least 3 nodes")
    nets = [[v, (v + 1) % num_nodes] for v in range(num_nodes)]
    return Hypergraph(nets, num_nodes=num_nodes)


def tree_circuit(levels: int, fanout: int = 2) -> Hypergraph:
    """Complete ``fanout``-ary tree with ``levels`` levels of edges.

    Node 0 is the root; a node ``v`` has children ``v*fanout + 1 ..
    v*fanout + fanout`` (binary-heap layout generalized).  Total nodes:
    ``(fanout^(levels+1) - 1) / (fanout - 1)``.
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    if fanout < 2:
        raise ValueError("fanout must be >= 2")
    num_nodes = (fanout ** (levels + 1) - 1) // (fanout - 1)
    internal = (fanout ** levels - 1) // (fanout - 1)
    nets: List[List[int]] = []
    for v in range(internal):
        for c in range(fanout):
            child = v * fanout + 1 + c
            nets.append([v, child])
    return Hypergraph(nets, num_nodes=num_nodes)


def star_circuit(leaves: int, as_single_net: bool = False) -> Hypergraph:
    """Hub node 0 connected to ``leaves`` leaf nodes.

    ``as_single_net=True`` models a high-fanout net (one hyperedge over
    everything — can only ever contribute 1 to any cut); otherwise each
    spoke is its own 2-pin net (bisection must cut about half the spokes).
    The pair demonstrates why net-based (hypergraph) cut models differ
    fundamentally from graph models — a classic Schweikert–Kernighan
    point the paper's cost model inherits.
    """
    if leaves < 1:
        raise ValueError("need at least 1 leaf")
    if as_single_net:
        nets = [list(range(leaves + 1))]
    else:
        nets = [[0, leaf] for leaf in range(1, leaves + 1)]
    return Hypergraph(nets, num_nodes=leaves + 1)


def butterfly_circuit(stages: int) -> Hypergraph:
    """FFT butterfly network with ``stages`` stages of 2x2 exchanges.

    ``(stages + 1) * 2^stages`` nodes; node ``(s, r)`` (stage, row) has
    index ``s * 2^stages + r``; each node in stage s connects straight and
    cross to stage s+1.  Bisection width is Θ(2^stages / stages).
    """
    if stages < 1:
        raise ValueError("stages must be >= 1")
    rows = 1 << stages
    nets: List[List[int]] = []
    for s in range(stages):
        for r in range(rows):
            here = s * rows + r
            straight = (s + 1) * rows + r
            cross = (s + 1) * rows + (r ^ (1 << s))
            nets.append([here, straight])
            nets.append([here, cross])
    return Hypergraph(nets, num_nodes=(stages + 1) * rows)
