"""Netlist readers and writers.

Three formats are supported:

* **hMETIS ``.hgr``** — the de-facto standard exchange format for hypergraph
  partitioning benchmarks: a header line ``<#nets> <#nodes> [fmt]`` followed
  by one line per net listing 1-based node indices; ``fmt`` 1 adds a leading
  net weight per line, 10 adds node-weight lines after the nets, 11 both.
* **SIGDA-style ``.net``** — a simple line-oriented subset of the ACM/SIGDA
  netlist format family: ``NET <name> <node> <node> ...`` plus optional
  ``NODE <name> [weight]`` declarations and ``#`` comments.  (The original
  1980s formats have many dialects; this reader/writer pair is loss-free for
  everything this package produces.)
* **JSON** — a verbose but fully general round-trip format carrying costs,
  weights and names.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

from .builder import HypergraphBuilder
from .hypergraph import Hypergraph, HypergraphError

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# hMETIS .hgr
# ---------------------------------------------------------------------------
def write_hgr(graph: Hypergraph, path: PathLike) -> None:
    """Write ``graph`` in hMETIS ``.hgr`` format.

    The fmt code is chosen automatically: net weights are emitted only when
    they are non-unit, likewise node weights.
    """
    has_net_w = not graph.has_unit_net_costs
    has_node_w = any(w != 1.0 for w in graph.node_weights)
    fmt = (1 if has_net_w else 0) + (10 if has_node_w else 0)
    lines: List[str] = []
    header = f"{graph.num_nets} {graph.num_nodes}"
    if fmt:
        header += f" {fmt}"
    lines.append(header)
    for net_id, pins in enumerate(graph.nets):
        parts: List[str] = []
        if has_net_w:
            parts.append(_fmt_weight(graph.net_cost(net_id)))
        parts.extend(str(v + 1) for v in pins)
        lines.append(" ".join(parts))
    if has_node_w:
        for v in range(graph.num_nodes):
            lines.append(_fmt_weight(graph.node_weight(v)))
    Path(path).write_text("\n".join(lines) + "\n")


def _fmt_weight(w: float) -> str:
    return str(int(w)) if float(w).is_integer() else repr(w)


def read_hgr(path: PathLike) -> Hypergraph:
    """Read an hMETIS ``.hgr`` file."""
    return parse_hgr_text(Path(path).read_text(), origin=str(path))


def parse_hgr_text(text: str, origin: str = "<hgr>") -> Hypergraph:
    """Parse hMETIS ``.hgr`` content from a string.

    The in-memory twin of :func:`read_hgr`, for netlists that never
    touch disk — e.g. hypergraphs submitted inline over the service
    API.  ``origin`` labels error messages in place of a file path.
    """
    path = origin
    raw_lines = text.splitlines()
    lines = [ln.strip() for ln in raw_lines]
    lines = [ln for ln in lines if ln and not ln.startswith("%")]
    if not lines:
        raise HypergraphError(f"{path}: empty hgr file")
    header = lines[0].split()
    if len(header) not in (2, 3):
        raise HypergraphError(f"{path}: bad header {lines[0]!r}")
    try:
        num_nets, num_nodes = int(header[0]), int(header[1])
        fmt = int(header[2]) if len(header) == 3 else 0
    except ValueError:
        raise HypergraphError(f"{path}: bad header {lines[0]!r}") from None
    if fmt not in (0, 1, 10, 11):
        raise HypergraphError(f"{path}: unsupported fmt {fmt}")
    has_net_w = fmt in (1, 11)
    has_node_w = fmt in (10, 11)

    expected = num_nets + (num_nodes if has_node_w else 0)
    body = lines[1:]
    if len(body) != expected:
        raise HypergraphError(
            f"{path}: expected {expected} data lines, found {len(body)}"
        )

    nets: List[List[int]] = []
    net_costs: List[float] = []
    for ln in body[:num_nets]:
        fields = ln.split()
        try:
            if has_net_w:
                net_costs.append(float(fields[0]))
                fields = fields[1:]
            pins = [int(f) - 1 for f in fields]
        except ValueError:
            raise HypergraphError(
                f"{path}: bad net line {ln!r}"
            ) from None
        if any(p < 0 or p >= num_nodes for p in pins):
            raise HypergraphError(f"{path}: pin out of range in line {ln!r}")
        nets.append(pins)

    node_weights: Optional[List[float]] = None
    if has_node_w:
        try:
            node_weights = [float(ln.split()[0]) for ln in body[num_nets:]]
        except ValueError:
            raise HypergraphError(
                f"{path}: bad node-weight line"
            ) from None

    return Hypergraph(
        nets,
        num_nodes=num_nodes,
        net_costs=net_costs if has_net_w else None,
        node_weights=node_weights,
    )


# ---------------------------------------------------------------------------
# SIGDA-style .net
# ---------------------------------------------------------------------------
def write_netlist(graph: Hypergraph, path: PathLike) -> None:
    """Write ``graph`` in the SIGDA-style ``NET``/``NODE`` line format."""
    node_names = graph.node_names or tuple(
        f"c{v}" for v in range(graph.num_nodes)
    )
    net_names = graph.net_names or tuple(
        f"n{i}" for i in range(graph.num_nets)
    )
    lines = [f"# nodes={graph.num_nodes} nets={graph.num_nets} pins={graph.num_pins}"]
    for v in range(graph.num_nodes):
        w = graph.node_weight(v)
        if w != 1.0:
            lines.append(f"NODE {node_names[v]} {_fmt_weight(w)}")
        else:
            lines.append(f"NODE {node_names[v]}")
    for i, pins in enumerate(graph.nets):
        cost = graph.net_cost(i)
        cost_part = f" COST {_fmt_weight(cost)}" if cost != 1.0 else ""
        pin_part = " ".join(node_names[v] for v in pins)
        lines.append(f"NET {net_names[i]}{cost_part} {pin_part}")
    Path(path).write_text("\n".join(lines) + "\n")


def read_netlist(path: PathLike) -> Hypergraph:
    """Read the SIGDA-style ``NET``/``NODE`` line format."""
    builder = HypergraphBuilder()
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword = fields[0].upper()
        if keyword == "NODE":
            if len(fields) not in (2, 3):
                raise HypergraphError(f"{path}:{lineno}: bad NODE line")
            weight = float(fields[2]) if len(fields) == 3 else 1.0
            builder.add_node(name=fields[1], weight=weight)
        elif keyword == "NET":
            if len(fields) < 3:
                raise HypergraphError(f"{path}:{lineno}: bad NET line")
            name = fields[1]
            rest = fields[2:]
            cost = 1.0
            if rest[0].upper() == "COST":
                if len(rest) < 3:
                    raise HypergraphError(f"{path}:{lineno}: bad COST clause")
                cost = float(rest[1])
                rest = rest[2:]
            builder.add_net_by_names(rest, cost=cost, name=name)
        else:
            raise HypergraphError(
                f"{path}:{lineno}: unknown keyword {fields[0]!r}"
            )
    return builder.build()


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------
def write_json(graph: Hypergraph, path: PathLike) -> None:
    """Write a loss-free JSON representation."""
    payload = {
        "num_nodes": graph.num_nodes,
        "nets": [list(pins) for pins in graph.nets],
        "net_costs": list(graph.net_costs),
        "node_weights": list(graph.node_weights),
        "node_names": list(graph.node_names) if graph.node_names else None,
        "net_names": list(graph.net_names) if graph.net_names else None,
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def read_json(path: PathLike) -> Hypergraph:
    """Read the JSON representation written by :func:`write_json`."""
    payload = json.loads(Path(path).read_text())
    try:
        return Hypergraph(
            payload["nets"],
            num_nodes=payload["num_nodes"],
            net_costs=payload.get("net_costs"),
            node_weights=payload.get("node_weights"),
            node_names=payload.get("node_names"),
            net_names=payload.get("net_names"),
        )
    except KeyError as exc:
        raise HypergraphError(f"{path}: missing field {exc}") from exc


# ---------------------------------------------------------------------------
# Dispatch by extension
# ---------------------------------------------------------------------------
_READERS = {".hgr": read_hgr, ".net": read_netlist, ".json": read_json}
_WRITERS = {".hgr": write_hgr, ".net": write_netlist, ".json": write_json}


def read(path: PathLike) -> Hypergraph:
    """Read a netlist, dispatching on file extension (.hgr/.net/.json)."""
    suffix = Path(path).suffix.lower()
    try:
        reader = _READERS[suffix]
    except KeyError:
        raise HypergraphError(
            f"unknown netlist extension {suffix!r} (want .hgr/.net/.json)"
        ) from None
    return reader(path)


def write(graph: Hypergraph, path: PathLike) -> None:
    """Write a netlist, dispatching on file extension (.hgr/.net/.json)."""
    suffix = Path(path).suffix.lower()
    try:
        writer = _WRITERS[suffix]
    except KeyError:
        raise HypergraphError(
            f"unknown netlist extension {suffix!r} (want .hgr/.net/.json)"
        ) from None
    writer(graph, path)
