"""Hypergraph transformations: contraction, projection, subhypergraphs.

These serve the clustering-based baselines (WINDOW contracts clusters, runs
FM on the contracted netlist, then projects the result back) and the k-way
recursive flow (which partitions induced subhypergraphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .hypergraph import Hypergraph, HypergraphError


@dataclass(frozen=True)
class Contraction:
    """Result of contracting clusters of a hypergraph.

    Attributes
    ----------
    coarse:
        The contracted hypergraph.  Coarse node ``i`` represents cluster
        ``i``; its weight is the summed weight of its members.  Nets whose
        pins collapse to a single cluster disappear; duplicate coarse nets
        are merged with summed costs.
    cluster_of:
        Fine node → coarse node map.
    members:
        Coarse node → list of fine nodes.
    """

    coarse: Hypergraph
    cluster_of: Tuple[int, ...]
    members: Tuple[Tuple[int, ...], ...]

    def project_sides(self, coarse_sides: Sequence[int]) -> List[int]:
        """Expand a partition of the coarse graph to the fine graph."""
        if len(coarse_sides) != self.coarse.num_nodes:
            raise ValueError(
                f"expected {self.coarse.num_nodes} coarse sides, "
                f"got {len(coarse_sides)}"
            )
        return [coarse_sides[c] for c in self.cluster_of]


def contract(graph: Hypergraph, cluster_of: Sequence[int]) -> Contraction:
    """Contract ``graph`` according to a node → cluster-id assignment.

    Cluster ids must be ``0 .. k-1`` with every id used at least once.
    """
    if len(cluster_of) != graph.num_nodes:
        raise HypergraphError(
            f"cluster_of has length {len(cluster_of)}, "
            f"expected {graph.num_nodes}"
        )
    if not cluster_of:
        raise HypergraphError("cannot contract an empty hypergraph")
    k = max(cluster_of) + 1
    if min(cluster_of) < 0:
        raise HypergraphError("negative cluster id")
    used = set(cluster_of)
    if len(used) != k:
        missing = sorted(set(range(k)) - used)
        raise HypergraphError(f"cluster ids not contiguous; missing {missing}")

    members: List[List[int]] = [[] for _ in range(k)]
    weights = [0.0] * k
    for v, c in enumerate(cluster_of):
        members[c].append(v)
        weights[c] += graph.node_weight(v)

    # Merge nets that collapse to identical coarse pin sets.
    merged: Dict[Tuple[int, ...], float] = {}
    for net_id, pins in enumerate(graph.nets):
        coarse_pins = tuple(sorted({cluster_of[v] for v in pins}))
        if len(coarse_pins) < 2:
            continue
        merged[coarse_pins] = merged.get(coarse_pins, 0.0) + graph.net_cost(net_id)

    nets = [list(pins) for pins in merged]
    costs = list(merged.values())
    coarse = Hypergraph(
        nets, num_nodes=k, net_costs=costs, node_weights=weights
    )
    return Contraction(
        coarse=coarse,
        cluster_of=tuple(cluster_of),
        members=tuple(tuple(m) for m in members),
    )


@dataclass(frozen=True)
class SubHypergraph:
    """An induced subhypergraph plus node/net maps back to the parent.

    ``net_to_parent[i]`` is the parent net id that sub-net ``i`` restricts
    — needed by terminal propagation, which must know which sub-nets are
    restrictions of *crossing* parent nets.
    """

    graph: Hypergraph
    to_parent: Tuple[int, ...]
    from_parent: Dict[int, int]
    net_to_parent: Tuple[int, ...] = ()


def induced_subhypergraph(
    graph: Hypergraph,
    nodes: Sequence[int],
    keep_dangling: bool = False,
) -> SubHypergraph:
    """Subhypergraph induced by ``nodes``.

    Each parent net is restricted to its pins inside ``nodes``; restrictions
    with fewer than 2 pins are dropped unless ``keep_dangling`` (in which
    case single-pin restrictions of *crossing* nets are kept — useful for
    terminal propagation experiments).
    """
    node_list = list(dict.fromkeys(nodes))  # preserve order, dedupe
    if not node_list:
        raise HypergraphError("cannot induce an empty subhypergraph")
    for v in node_list:
        if v < 0 or v >= graph.num_nodes:
            raise HypergraphError(f"node {v} out of range")
    from_parent = {v: i for i, v in enumerate(node_list)}

    nets: List[List[int]] = []
    costs: List[float] = []
    net_to_parent: List[int] = []
    for net_id, pins in enumerate(graph.nets):
        inside = [from_parent[v] for v in pins if v in from_parent]
        min_pins = 1 if (keep_dangling and len(inside) < len(pins)) else 2
        if len(inside) >= min_pins and inside:
            if len(inside) < 2 and min_pins == 2:
                continue
            nets.append(inside)
            costs.append(graph.net_cost(net_id))
            net_to_parent.append(net_id)

    sub = Hypergraph(
        nets,
        num_nodes=len(node_list),
        net_costs=costs,
        node_weights=[graph.node_weight(v) for v in node_list],
    )
    return SubHypergraph(
        graph=sub,
        to_parent=tuple(node_list),
        from_parent=from_parent,
        net_to_parent=tuple(net_to_parent),
    )


def remove_large_nets(graph: Hypergraph, max_size: int) -> Hypergraph:
    """Drop nets with more than ``max_size`` pins.

    Very-high-fanout nets (clock, reset) are commonly filtered before
    clustering/spectral methods since they connect everything to everything
    and carry no placement information.
    """
    if max_size < 2:
        raise ValueError("max_size must be >= 2")
    nets = []
    costs = []
    for net_id, pins in enumerate(graph.nets):
        if len(pins) <= max_size:
            nets.append(list(pins))
            costs.append(graph.net_cost(net_id))
    return Hypergraph(
        nets,
        num_nodes=graph.num_nodes,
        net_costs=costs,
        node_weights=graph.node_weights,
    )
