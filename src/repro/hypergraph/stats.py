"""Hypergraph statistics in the paper's notation (Sec. 1 and Sec. 3.5).

Symbols:

* ``n``  — number of nodes
* ``e``  — number of nets (hyperedges)
* ``m``  — total number of pins, ``m = p*n = q*e``
* ``p``  — average nets per node (pins per node)
* ``q``  — average nodes per net (pins per net)
* ``d``  — average number of neighbors per node, ``d = p * (q - 1)``

These drive the complexity statements reproduced by
``benchmarks/test_scaling_complexity.py`` (PROP pass is Θ(m log n) for
constant q).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .hypergraph import Hypergraph


@dataclass(frozen=True)
class HypergraphStats:
    """Summary statistics for one netlist (one row of paper Table 1)."""

    num_nodes: int
    num_nets: int
    num_pins: int
    avg_pins_per_node: float
    avg_pins_per_net: float
    avg_neighbors: float
    max_pins_per_node: int
    max_pins_per_net: int

    @property
    def n(self) -> int:
        return self.num_nodes

    @property
    def e(self) -> int:
        return self.num_nets

    @property
    def m(self) -> int:
        return self.num_pins

    @property
    def p(self) -> float:
        return self.avg_pins_per_node

    @property
    def q(self) -> float:
        return self.avg_pins_per_net

    @property
    def d(self) -> float:
        return self.avg_neighbors

    def as_table_row(self) -> Dict[str, int]:
        """The three columns reported per circuit in paper Table 1."""
        return {
            "nodes": self.num_nodes,
            "nets": self.num_nets,
            "pins": self.num_pins,
        }


def compute_stats(graph: Hypergraph) -> HypergraphStats:
    """Compute the Sec. 3.5 statistics of ``graph``."""
    n = graph.num_nodes
    e = graph.num_nets
    m = graph.num_pins
    p = m / n if n else 0.0
    q = m / e if e else 0.0
    # d = p*(q-1) is the paper's *estimate*; we report it for comparability.
    d = p * (q - 1.0) if e else 0.0
    max_node_deg = max(
        (graph.node_degree(v) for v in range(n)), default=0
    )
    max_net_size = max((graph.net_size(i) for i in range(e)), default=0)
    return HypergraphStats(
        num_nodes=n,
        num_nets=e,
        num_pins=m,
        avg_pins_per_node=p,
        avg_pins_per_net=q,
        avg_neighbors=d,
        max_pins_per_node=max_node_deg,
        max_pins_per_net=max_net_size,
    )


def exact_average_neighbors(graph: Hypergraph) -> float:
    """Exact (not estimated) mean number of distinct neighbors per node.

    The paper uses the approximation ``d = p (q - 1)``, which over-counts
    when a node shares several nets with the same neighbor.  This helper
    computes the true value; tests use it to check the approximation is
    within a sane factor on generated circuits.
    """
    n = graph.num_nodes
    if n == 0:
        return 0.0
    total = sum(len(graph.neighbors(v)) for v in range(n))
    return total / n
