"""Core hypergraph (netlist) data structure.

A circuit netlist is modelled as a hypergraph ``G = (V, E)`` following the
notation of Dutt & Deng (DAC 1996, Sec. 1):

* ``V`` is the set of nodes (circuit components), identified by the integers
  ``0 .. num_nodes - 1``;
* ``E`` is the set of nets (hyperedges), identified by the integers
  ``0 .. num_nets - 1``; each net connects one or more nodes;
* every (node, net) incidence is a *pin*; ``num_pins`` is the total pin count
  ``m = p*n = q*e`` of Sec. 3.5.

The structure is immutable after construction: all partitioners in this
package treat the netlist as read-only and keep their mutable state (sides,
locks, gains, probabilities) in separate objects.  Use
:class:`repro.hypergraph.builder.HypergraphBuilder` for incremental
construction, or the generator functions in
:mod:`repro.hypergraph.generators` for synthetic circuits.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class HypergraphError(ValueError):
    """Raised when a hypergraph is constructed from inconsistent data."""


class Hypergraph:
    """An immutable hypergraph / circuit netlist.

    Parameters
    ----------
    nets:
        A sequence of nets, each net a sequence of node indices.  Nodes on a
        net must be distinct; single-pin nets are allowed (they can never be
        cut) but empty nets are rejected.
    num_nodes:
        Optional explicit node count.  When omitted, it is inferred as
        ``max(node index) + 1``.  Passing it explicitly allows isolated
        nodes (nodes on no net), which do occur in real netlists (e.g. a
        spare cell).
    net_costs:
        Optional per-net cost/weight ``c(nt)`` (Sec. 1 of the paper:
        e.g. net width for area-driven, criticality weight for
        timing-driven partitioning).  Defaults to unit costs.
    node_weights:
        Optional per-node size/area weight, used by weighted balance
        constraints.  Defaults to unit weights ("all nodes have unit size",
        paper Sec. 1).
    node_names / net_names:
        Optional human-readable names preserved by the netlist readers.
    """

    __slots__ = (
        "_nets",
        "_node_nets",
        "_net_costs",
        "_node_weights",
        "_num_pins",
        "_node_names",
        "_net_names",
    )

    def __init__(
        self,
        nets: Sequence[Sequence[int]],
        num_nodes: Optional[int] = None,
        net_costs: Optional[Sequence[float]] = None,
        node_weights: Optional[Sequence[float]] = None,
        node_names: Optional[Sequence[str]] = None,
        net_names: Optional[Sequence[str]] = None,
    ) -> None:
        canonical_nets: List[Tuple[int, ...]] = []
        max_node = -1
        num_pins = 0
        for net_id, net in enumerate(nets):
            pins = tuple(net)
            if not pins:
                raise HypergraphError(f"net {net_id} is empty")
            seen = set()
            for node in pins:
                if not isinstance(node, int) or isinstance(node, bool):
                    raise HypergraphError(
                        f"net {net_id} contains non-integer node {node!r}"
                    )
                if node < 0:
                    raise HypergraphError(
                        f"net {net_id} contains negative node {node}"
                    )
                if node in seen:
                    raise HypergraphError(
                        f"net {net_id} contains duplicate node {node}"
                    )
                seen.add(node)
                if node > max_node:
                    max_node = node
            canonical_nets.append(pins)
            num_pins += len(pins)

        inferred = max_node + 1
        if num_nodes is None:
            num_nodes = inferred
        elif num_nodes < inferred:
            raise HypergraphError(
                f"num_nodes={num_nodes} but nets reference node {max_node}"
            )

        self._nets: Tuple[Tuple[int, ...], ...] = tuple(canonical_nets)
        self._num_pins = num_pins

        node_nets: List[List[int]] = [[] for _ in range(num_nodes)]
        for net_id, pins in enumerate(self._nets):
            for node in pins:
                node_nets[node].append(net_id)
        self._node_nets: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(lst) for lst in node_nets
        )

        self._net_costs = self._check_vector(
            net_costs, len(self._nets), "net_costs", default=1.0
        )
        self._node_weights = self._check_vector(
            node_weights, num_nodes, "node_weights", default=1.0
        )
        self._node_names = self._check_names(node_names, num_nodes, "node_names")
        self._net_names = self._check_names(net_names, len(self._nets), "net_names")

    @staticmethod
    def _check_vector(
        values: Optional[Sequence[float]],
        expected_len: int,
        label: str,
        default: float,
    ) -> Tuple[float, ...]:
        if values is None:
            return (default,) * expected_len
        out = tuple(float(v) for v in values)
        if len(out) != expected_len:
            raise HypergraphError(
                f"{label} has length {len(out)}, expected {expected_len}"
            )
        for i, v in enumerate(out):
            if v < 0:
                raise HypergraphError(f"{label}[{i}] = {v} is negative")
        return out

    @staticmethod
    def _check_names(
        names: Optional[Sequence[str]], expected_len: int, label: str
    ) -> Optional[Tuple[str, ...]]:
        if names is None:
            return None
        out = tuple(str(s) for s in names)
        if len(out) != expected_len:
            raise HypergraphError(
                f"{label} has length {len(out)}, expected {expected_len}"
            )
        return out

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """``n``: number of nodes (circuit components)."""
        return len(self._node_nets)

    @property
    def num_nets(self) -> int:
        """``e``: number of nets (hyperedges)."""
        return len(self._nets)

    @property
    def num_pins(self) -> int:
        """``m = p*n = q*e``: total number of pins (node-net incidences)."""
        return self._num_pins

    # ------------------------------------------------------------------
    # Incidence
    # ------------------------------------------------------------------
    @property
    def nets(self) -> Tuple[Tuple[int, ...], ...]:
        """All nets, as tuples of node indices."""
        return self._nets

    def net(self, net_id: int) -> Tuple[int, ...]:
        """Nodes connected by net ``net_id``."""
        return self._nets[net_id]

    def net_size(self, net_id: int) -> int:
        """Number of pins on net ``net_id``."""
        return len(self._nets[net_id])

    def node_nets(self, node: int) -> Tuple[int, ...]:
        """Nets that ``node`` is connected to (its pins)."""
        return self._node_nets[node]

    def node_degree(self, node: int) -> int:
        """Number of nets on ``node`` (paper symbol: pins per node)."""
        return len(self._node_nets[node])

    def neighbors(self, node: int) -> List[int]:
        """Distinct nodes sharing at least one net with ``node``.

        Two nodes are *neighbors* when they are connected by a common net
        (paper Sec. 1).  The result excludes ``node`` itself.
        """
        seen = {node}
        result: List[int] = []
        for net_id in self._node_nets[node]:
            for other in self._nets[net_id]:
                if other not in seen:
                    seen.add(other)
                    result.append(other)
        return result

    # ------------------------------------------------------------------
    # Costs and weights
    # ------------------------------------------------------------------
    @property
    def net_costs(self) -> Tuple[float, ...]:
        """Per-net cost ``c(nt)``."""
        return self._net_costs

    def net_cost(self, net_id: int) -> float:
        """Cost ``c(net_id)`` of one net."""
        return self._net_costs[net_id]

    @property
    def has_unit_net_costs(self) -> bool:
        """True when every net has cost exactly 1 (enables FM buckets)."""
        return all(c == 1.0 for c in self._net_costs)

    @property
    def node_weights(self) -> Tuple[float, ...]:
        return self._node_weights

    def node_weight(self, node: int) -> float:
        """Size/area weight of one node."""
        return self._node_weights[node]

    @property
    def total_node_weight(self) -> float:
        return sum(self._node_weights)

    @property
    def node_names(self) -> Optional[Tuple[str, ...]]:
        return self._node_names

    @property
    def net_names(self) -> Optional[Tuple[str, ...]]:
        return self._net_names

    # ------------------------------------------------------------------
    # Derived constructions
    # ------------------------------------------------------------------
    def with_net_costs(self, net_costs: Sequence[float]) -> "Hypergraph":
        """A copy of this hypergraph with different net costs."""
        return Hypergraph(
            self._nets,
            num_nodes=self.num_nodes,
            net_costs=net_costs,
            node_weights=self._node_weights,
            node_names=self._node_names,
            net_names=self._net_names,
        )

    def with_node_weights(self, node_weights: Sequence[float]) -> "Hypergraph":
        """A copy of this hypergraph with different node weights."""
        return Hypergraph(
            self._nets,
            num_nodes=self.num_nodes,
            net_costs=self._net_costs,
            node_weights=node_weights,
            node_names=self._node_names,
            net_names=self._net_names,
        )

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Hypergraph(num_nodes={self.num_nodes}, "
            f"num_nets={self.num_nets}, num_pins={self.num_pins})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and self._nets == other._nets
            and self._net_costs == other._net_costs
            and self._node_weights == other._node_weights
        )

    def __hash__(self) -> int:
        return hash((self.num_nodes, self._nets))

    def iter_pins(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all (net_id, node) pin pairs."""
        for net_id, pins in enumerate(self._nets):
            for node in pins:
                yield net_id, node

    def degree_histogram(self) -> Dict[int, int]:
        """Histogram {net size: count} of net sizes."""
        hist: Dict[int, int] = {}
        for pins in self._nets:
            hist[len(pins)] = hist.get(len(pins), 0) + 1
        return hist

    def isolated_nodes(self) -> List[int]:
        """Nodes connected to no net."""
        return [v for v in range(self.num_nodes) if not self._node_nets[v]]


def clique_edges(
    graph: Hypergraph, weight_model: str = "standard"
) -> Dict[Tuple[int, int], float]:
    """Expand a hypergraph into weighted clique-model graph edges.

    Used by the spectral (EIG1, MELO), analytical (PARABOLI-style) and KL
    baselines, which operate on ordinary graphs.  Each net of size ``q`` is
    replaced by a clique over its pins.

    weight_model:
        ``"standard"``: each clique edge weighs ``c(net) / (q - 1)`` — the
        classic model used by EIG1 [Hagen & Kahng 1991].
        ``"uniform"``: each clique edge weighs ``c(net)``.

    Returns a dict mapping ``(u, v)`` with ``u < v`` to accumulated weight.
    Single-pin nets contribute nothing.
    """
    if weight_model not in ("standard", "uniform"):
        raise ValueError(f"unknown weight_model {weight_model!r}")
    edges: Dict[Tuple[int, int], float] = {}
    for net_id, pins in enumerate(graph.nets):
        q = len(pins)
        if q < 2:
            continue
        if weight_model == "standard":
            w = graph.net_cost(net_id) / (q - 1)
        else:
            w = graph.net_cost(net_id)
        for i in range(q):
            u = pins[i]
            for j in range(i + 1, q):
                v = pins[j]
                key = (u, v) if u < v else (v, u)
                edges[key] = edges.get(key, 0.0) + w
    return edges
