"""Hypergraph (circuit netlist) substrate.

Public surface:

* :class:`Hypergraph`, :class:`HypergraphBuilder`, :exc:`HypergraphError`
* statistics (:func:`compute_stats`, :class:`HypergraphStats`)
* netlist I/O (:mod:`repro.hypergraph.io_`)
* synthetic circuit generators (:mod:`repro.hypergraph.generators`)
* transforms (:func:`contract`, :func:`induced_subhypergraph`)
"""

from .builder import HypergraphBuilder
from .generators import (
    BENCHMARK_NAMES,
    TABLE1_CHARACTERISTICS,
    benchmark_suite,
    hierarchical_circuit,
    large_circuit,
    make_benchmark,
    many_small,
    planted_bisection,
    random_hypergraph,
    small_instance,
)
from .hypergraph import Hypergraph, HypergraphError, clique_edges
from .stats import HypergraphStats, compute_stats, exact_average_neighbors
from .topologies import (
    butterfly_circuit,
    mesh_circuit,
    ring_circuit,
    star_circuit,
    torus_circuit,
    tree_circuit,
)
from .validate import (
    LintReport,
    connected_components,
    is_connected,
    lint,
)
from .transforms import (
    Contraction,
    SubHypergraph,
    contract,
    induced_subhypergraph,
    remove_large_nets,
)

__all__ = [
    "Hypergraph",
    "HypergraphBuilder",
    "HypergraphError",
    "HypergraphStats",
    "compute_stats",
    "exact_average_neighbors",
    "clique_edges",
    "contract",
    "Contraction",
    "induced_subhypergraph",
    "SubHypergraph",
    "remove_large_nets",
    "random_hypergraph",
    "planted_bisection",
    "hierarchical_circuit",
    "large_circuit",
    "make_benchmark",
    "many_small",
    "small_instance",
    "benchmark_suite",
    "BENCHMARK_NAMES",
    "TABLE1_CHARACTERISTICS",
    "connected_components",
    "is_connected",
    "lint",
    "LintReport",
    "mesh_circuit",
    "torus_circuit",
    "ring_circuit",
    "tree_circuit",
    "star_circuit",
    "butterfly_circuit",
]
