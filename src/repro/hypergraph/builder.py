"""Incremental construction of :class:`~repro.hypergraph.hypergraph.Hypergraph`.

Netlist readers and circuit generators accumulate nets one at a time; the
builder validates as it goes and produces an immutable hypergraph at the end.
It also supports name-based construction (add nodes/nets by string name), the
natural interface when parsing textual netlist formats.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .hypergraph import Hypergraph, HypergraphError


class HypergraphBuilder:
    """Accumulates nodes and nets, then builds an immutable hypergraph.

    Example
    -------
    >>> b = HypergraphBuilder()
    >>> a, c, d = b.add_node("a"), b.add_node("c"), b.add_node("d")
    >>> _ = b.add_net([a, c], name="n1")
    >>> _ = b.add_net([c, d], cost=2.0)
    >>> hg = b.build()
    >>> hg.num_nodes, hg.num_nets, hg.num_pins
    (3, 2, 4)
    """

    def __init__(self) -> None:
        self._nets: List[List[int]] = []
        self._net_costs: List[float] = []
        self._net_names: List[Optional[str]] = []
        self._node_weights: List[float] = []
        self._node_names: List[Optional[str]] = []
        self._name_to_node: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._node_weights)

    @property
    def num_nets(self) -> int:
        return len(self._nets)

    def add_node(self, name: Optional[str] = None, weight: float = 1.0) -> int:
        """Add one node; returns its index."""
        if weight < 0:
            raise HypergraphError(f"node weight {weight} is negative")
        if name is not None:
            if name in self._name_to_node:
                raise HypergraphError(f"duplicate node name {name!r}")
            self._name_to_node[name] = self.num_nodes
        node = self.num_nodes
        self._node_weights.append(float(weight))
        self._node_names.append(name)
        return node

    def add_nodes(self, count: int, weight: float = 1.0) -> range:
        """Add ``count`` anonymous nodes; returns their index range."""
        if count < 0:
            raise HypergraphError(f"cannot add {count} nodes")
        start = self.num_nodes
        for _ in range(count):
            self.add_node(weight=weight)
        return range(start, start + count)

    def node_by_name(self, name: str) -> int:
        """Index of a previously added named node (KeyError if unknown)."""
        return self._name_to_node[name]

    def get_or_add_node(self, name: str, weight: float = 1.0) -> int:
        """Return the node with ``name``, creating it if necessary."""
        existing = self._name_to_node.get(name)
        if existing is not None:
            return existing
        return self.add_node(name=name, weight=weight)

    # ------------------------------------------------------------------
    # Nets
    # ------------------------------------------------------------------
    def add_net(
        self,
        pins: Iterable[int],
        cost: float = 1.0,
        name: Optional[str] = None,
    ) -> int:
        """Add one net over existing node indices; returns the net index."""
        pin_list = list(pins)
        if not pin_list:
            raise HypergraphError("net has no pins")
        seen = set()
        for node in pin_list:
            if node < 0 or node >= self.num_nodes:
                raise HypergraphError(
                    f"net pin {node} out of range (have {self.num_nodes} nodes)"
                )
            if node in seen:
                raise HypergraphError(f"net has duplicate pin {node}")
            seen.add(node)
        if cost < 0:
            raise HypergraphError(f"net cost {cost} is negative")
        net_id = len(self._nets)
        self._nets.append(pin_list)
        self._net_costs.append(float(cost))
        self._net_names.append(name)
        return net_id

    def add_net_by_names(
        self,
        pin_names: Iterable[str],
        cost: float = 1.0,
        name: Optional[str] = None,
    ) -> int:
        """Add a net given node *names*, creating unknown nodes on the fly."""
        pins = [self.get_or_add_node(pn) for pn in pin_names]
        return self.add_net(pins, cost=cost, name=name)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> Hypergraph:
        """Produce the immutable hypergraph."""
        node_names: Optional[Sequence[str]]
        if any(n is not None for n in self._node_names):
            node_names = [
                n if n is not None else f"node{i}"
                for i, n in enumerate(self._node_names)
            ]
        else:
            node_names = None
        net_names: Optional[Sequence[str]]
        if any(n is not None for n in self._net_names):
            net_names = [
                n if n is not None else f"net{i}"
                for i, n in enumerate(self._net_names)
            ]
        else:
            net_names = None
        return Hypergraph(
            self._nets,
            num_nodes=self.num_nodes,
            net_costs=self._net_costs,
            node_weights=self._node_weights,
            node_names=node_names,
            net_names=net_names,
        )
