"""Multilevel (V-cycle) bisection with PROP refinement.

Coarsen by heavy-edge matching (:mod:`repro.multilevel.coarsen`), partition
the coarsest graph from several random starts, then walk back up the
hierarchy, projecting the partition and refining it at every level with an
FM-family engine (PROP by default, started from the projected sides).

This generalizes the paper's Sec. 5 "clustering initial phase" suggestion
from one clustering level to a full hierarchy, and serves as the repo's
strongest partitioner on large instances.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..core import PropPartitioner
from ..hypergraph import Hypergraph
from ..multirun.runner import Partitioner
from ..partition import (
    BalanceConstraint,
    BipartitionResult,
    cut_cost,
    random_balanced_sides,
)
from .coarsen import coarsen_to


class MultilevelPartitioner:
    """Heavy-edge V-cycle around any 2-way refinement engine."""

    def __init__(
        self,
        refiner: Optional[Partitioner] = None,
        coarsest_nodes: int = 80,
        coarsest_runs: int = 8,
    ) -> None:
        if coarsest_nodes < 2:
            raise ValueError("coarsest_nodes must be >= 2")
        if coarsest_runs < 1:
            raise ValueError("coarsest_runs must be >= 1")
        self.refiner = refiner if refiner is not None else PropPartitioner()
        self.coarsest_nodes = coarsest_nodes
        self.coarsest_runs = coarsest_runs

    name = "ML-PROP"

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,
        initial_sides: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> BipartitionResult:
        """V-cycle bisection of ``graph``.

        ``initial_sides`` (when given) skips the V-cycle and runs the
        refiner directly — interface compatibility with the harness.
        """
        if balance is None:
            balance = BalanceConstraint.fifty_fifty(graph)
        base_seed = 0 if seed is None else seed
        start = time.perf_counter()

        if initial_sides is not None:
            result = self.refiner.partition(
                graph, balance=balance, initial_sides=initial_sides, seed=seed
            )
            result.algorithm = self.name
            return result

        hierarchy = coarsen_to(
            graph, target_nodes=self.coarsest_nodes, seed=base_seed
        )
        levels = 0

        # Partition the coarsest graph from several random starts.
        coarsest = hierarchy[-1].coarse if hierarchy else graph
        coarse_balance = self._slackened(balance, coarsest)
        best_sides = None
        best_cut = float("inf")
        for i in range(self.coarsest_runs):
            init = random_balanced_sides(coarsest, base_seed + 17 * i)
            res = self.refiner.partition(
                coarsest, balance=coarse_balance, initial_sides=init,
                seed=base_seed + 17 * i,
            )
            if res.cut < best_cut:
                best_cut = res.cut
                best_sides = res.sides
        assert best_sides is not None
        sides = best_sides

        # Uncoarsen: project one level up and refine from the projection.
        for idx in range(len(hierarchy) - 1, -1, -1):
            levels += 1
            fine = graph if idx == 0 else hierarchy[idx - 1].coarse
            sides = hierarchy[idx].project_sides(sides)
            level_balance = (
                balance if idx == 0 else self._slackened(balance, fine)
            )
            res = self.refiner.partition(
                fine, balance=level_balance, initial_sides=sides,
                seed=base_seed + levels,
            )
            sides = res.sides

        result = BipartitionResult(
            sides=list(sides),
            cut=cut_cost(graph, sides),
            algorithm=self.name,
            seed=seed,
            passes=levels + 1,
            runtime_seconds=time.perf_counter() - start,
            stats={
                "levels": float(len(hierarchy)),
                "coarsest_nodes": float(coarsest.num_nodes),
            },
        )
        result.verify(graph)
        return result

    @staticmethod
    def _slackened(
        balance: BalanceConstraint, level_graph: Hypergraph
    ) -> BalanceConstraint:
        """Same absolute bounds, slackened by one max-weight super-node so
        coarse-level moves stay feasible (weights grow with contraction)."""
        max_w = max(level_graph.node_weights) if level_graph.num_nodes else 1.0
        return BalanceConstraint(
            lo=max(0.0, balance.lo - max_w),
            hi=min(balance.total, balance.hi + max_w),
            total=balance.total,
        )
