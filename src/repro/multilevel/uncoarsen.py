"""Localized uncoarsening and the n-level partitioner.

The V-cycle projects the partition one whole level up and re-runs the
refiner over the *entire* level graph — at a million nodes that is
twenty full-graph refinement passes.  The n-level engine instead
uncontracts the memento stack in exponentially growing batches and
refines only the *region* around each batch: the uncontracted pairs plus
the pins of their small nets.  One full-graph refinement (the configured
PROP/FM engine, with its CSR + numpy gain machinery built exactly once)
finishes the job at the finest level.

Cut and balance bookkeeping stay exact throughout: uncontracting a pair
``(u, v)`` gives ``v`` the side of ``u``, which changes neither any
net's cut state nor either side's weight (proof in docs/multilevel.md),
so the incremental per-net side counts carried across batches never
drift from the true partition state.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import PropPartitioner
from ..datastructures import AddressablePriorityQueue
from ..hypergraph import Hypergraph
from ..partition import (
    BalanceConstraint,
    BipartitionResult,
    cut_cost,
    random_balanced_sides,
)
from ..telemetry.recorder import Recorder, resolve_recorder
from .coarsen import DEFAULT_MAX_NET_SIZE
from .nlevel import (
    DEFAULT_SAMPLE_PINS,
    DynamicHypergraph,
    Memento,
    nlevel_coarsen,
)


def _slackened(balance: BalanceConstraint, max_w: float) -> BalanceConstraint:
    """Bounds slackened by one max-weight super-node (V-cycle convention:
    coarse-level moves must stay feasible despite contracted weights)."""
    return BalanceConstraint(
        lo=max(0.0, balance.lo - max_w),
        hi=min(balance.total, balance.hi + max_w),
        total=balance.total,
    )


class UncoarsenState:
    """Exact incremental partition state over a :class:`DynamicHypergraph`.

    Tracks sides (in original node ids), per-net side counts, side
    weights and the cut while mementos are undone and region-local FM
    moves are applied.  Per-net counts are maintained for every
    *attached* net; pruned (detached single-pin) nets go stale while
    detached and have their counts rebuilt directly at uncontraction,
    when their full pin set — two nodes on one side — is known exactly.
    """

    def __init__(
        self,
        dyn: DynamicHypergraph,
        sides: List[int],
        balance: BalanceConstraint,
        max_net_size: int = DEFAULT_MAX_NET_SIZE,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.dyn = dyn
        self.sides = sides
        self.balance = balance
        self.max_net_size = max_net_size
        self.recorder = recorder
        self.c0: List[int] = [0] * dyn.num_nets
        self.c1: List[int] = [0] * dyn.num_nets
        self.cut = 0.0
        self.side_weights: List[float] = [0.0, 0.0]
        for net in range(dyn.num_nets):
            for x in dyn.pins[net]:
                if sides[x] == 0:
                    self.c0[net] += 1
                else:
                    self.c1[net] += 1
            if (
                len(dyn.pins[net]) >= 2
                and self.c0[net] > 0
                and self.c1[net] > 0
            ):
                self.cut += dyn.net_cost[net]
        for u in range(dyn.num_nodes):
            if dyn.alive[u]:
                self.side_weights[sides[u]] += dyn.node_weight[u]
        self.uncontract_batches = 0
        self.region_moves = 0
        self.rebalance_moves = 0
        self.local_refine_seconds = 0.0

    # ------------------------------------------------------------------
    # Exact incremental moves (Eqn. 1 gains from the side counts)
    # ------------------------------------------------------------------
    def _gain(self, x: int) -> float:
        dyn = self.dyn
        s = self.sides[x]
        g = 0.0
        for net in dyn.nets_of[x]:
            if len(dyn.pins[net]) < 2:
                continue
            same = self.c0[net] if s == 0 else self.c1[net]
            other = self.c1[net] if s == 0 else self.c0[net]
            cost = dyn.net_cost[net]
            if same == 1:
                g += cost
            if other == 0:
                g -= cost
        return g

    def _apply_move(self, x: int) -> float:
        """Flip ``x`` to the other side; returns the exact cut gain."""
        delta = self._gain(x)
        s = self.sides[x]
        if s == 0:
            for net in self.dyn.nets_of[x]:
                self.c0[net] -= 1
                self.c1[net] += 1
        else:
            for net in self.dyn.nets_of[x]:
                self.c1[net] -= 1
                self.c0[net] += 1
        w = self.dyn.node_weight[x]
        self.side_weights[s] -= w
        self.side_weights[1 - s] += w
        self.sides[x] = 1 - s
        self.cut -= delta
        return delta

    # ------------------------------------------------------------------
    # Uncontraction
    # ------------------------------------------------------------------
    def _undo(self, m: Memento) -> None:
        """Undo one contraction and fold ``v`` into the partition state.

        ``v`` takes the side of ``u``: shrunk nets gain one pin on an
        already-populated side, replaced nets swap ``u`` for the
        same-side ``v``, and revived pruned nets hold exactly
        ``{u, v}`` on one side — none of which changes the cut or the
        side weights.
        """
        self.dyn.uncontract(m)
        s = self.sides[m.u]
        self.sides[m.v] = s
        if s == 0:
            for net in m.shrunk:
                self.c0[net] += 1
            for net, _last in m.pruned:
                self.c0[net], self.c1[net] = 2, 0
        else:
            for net in m.shrunk:
                self.c1[net] += 1
            for net, _last in m.pruned:
                self.c0[net], self.c1[net] = 0, 2
        # replaced nets: v inherits u's side, so their counts are already
        # correct; pin identity is all that changed.

    def _region(self, batch: Sequence[Memento]) -> Dict[int, None]:
        """Refinement region: the batch's endpoints plus all pins of
        their small nets (insertion-ordered, hence deterministic)."""
        dyn = self.dyn
        region: Dict[int, None] = {}
        for m in batch:
            region[m.u] = None
            region[m.v] = None
        for x in list(region):
            for net in dyn.nets_of[x]:
                net_pins = dyn.pins[net]
                if 2 <= len(net_pins) <= self.max_net_size:
                    region.update(dict.fromkeys(net_pins))
        return region

    def _refine_region(self, region: Dict[int, None]) -> int:
        """One best-gain FM pass restricted to ``region``, with
        best-prefix rollback.  Balance bounds are slackened by the
        heaviest region node so coarse super-nodes stay movable."""
        if len(region) < 2:
            return 0
        dyn = self.dyn
        max_w = max(dyn.node_weight[x] for x in region)
        bounds = _slackened(self.balance, max_w)
        pq = AddressablePriorityQueue()
        for x in region:
            pq.push(x, self._gain(x))
        moves: List[int] = []
        cum = 0.0
        best = 0.0
        best_k = 0
        while True:
            entry = pq.pop()
            if entry is None:
                break
            x, _gain, _ = entry
            if not bounds.move_allowed(
                self.side_weights, self.sides[x], dyn.node_weight[x]
            ):
                continue  # locked out this pass (balance reject)
            cum += self._apply_move(x)
            moves.append(x)
            if cum > best + 1e-12:
                best = cum
                best_k = len(moves)
            # Rerate the moved node's small-net neighbors still in play.
            for net in dyn.nets_of[x]:
                net_pins = dyn.pins[net]
                if not 2 <= len(net_pins) <= self.max_net_size:
                    continue
                for y in net_pins:
                    if y in pq:
                        pq.push(y, self._gain(y))
        for x in reversed(moves[best_k:]):
            self._apply_move(x)
        kept = best_k
        self.region_moves += kept
        return kept

    def rebalance(self, bounds: Optional[BalanceConstraint] = None) -> int:
        """Greedy repair when the partition violates ``bounds`` (the true
        balance bounds by default) — possible because the coarsest
        partition is only feasible under bounds slackened by the heaviest
        super-node, and no refiner recovers from an infeasible start.
        Flips best-gain nodes off the overweight side until both sides
        are inside the bounds; each node flips at most once, so
        termination is guaranteed.  Called with progressively tighter
        bounds at every stage-refine boundary, so the correction is
        Runs once at the finest level, before the final refine, so the
        repair happens at single-node granularity (forcing it earlier,
        at super-node granularity, measurably hurts the final cut) and
        the final refiner starts from a feasible partition.
        Returns the number of moves made."""
        bal = self.balance if bounds is None else bounds
        if bal.is_satisfied(self.side_weights):
            return 0
        dyn = self.dyn
        heavy = 0 if self.side_weights[0] > bal.hi else 1
        pq = AddressablePriorityQueue()
        for u in range(dyn.num_nodes):
            if dyn.alive[u] and self.sides[u] == heavy:
                pq.push(u, self._gain(u))
        moved = 0
        while self.side_weights[heavy] > bal.hi + 1e-9:
            entry = pq.pop()
            if entry is None:
                break  # degenerate weights: no repairing move exists
            x, _gain, _ = entry
            if self.side_weights[heavy] - dyn.node_weight[x] < bal.lo - 1e-9:
                continue  # would overshoot the heavy side below lo
            self._apply_move(x)
            moved += 1
            for net in dyn.nets_of[x]:
                net_pins = dyn.pins[net]
                if not 2 <= len(net_pins) <= self.max_net_size:
                    continue
                for y in net_pins:
                    if y in pq:
                        pq.push(y, self._gain(y))
        self.rebalance_moves += moved
        return moved

    def uncoarsen(self, mementos: List[Memento], refine: bool = True) -> None:
        """Undo the whole memento stack in exponentially growing batches
        (1, 2, 4, ...), locally refining around each batch."""
        i = len(mementos)
        size = 1
        while i > 0:
            b = min(size, i)
            batch = mementos[i - b:i]
            i -= b
            for m in reversed(batch):
                self._undo(m)
            if refine:
                t0 = time.perf_counter()
                self._refine_region(self._region(batch))
                dt = time.perf_counter() - t0
                self.local_refine_seconds += dt
                if self.recorder is not None:
                    self.recorder.span(
                        self.uncontract_batches, "local_refine", dt
                    )
            self.uncontract_batches += 1
            size *= 2


class NLevelPartitioner:
    """n-level bisection: PQ coarsening + localized uncoarsening.

    Drop-in peer of :class:`~repro.multilevel.vcycle.MultilevelPartitioner`
    (same constructor shape, same harness protocol) built on
    :func:`~repro.multilevel.nlevel.nlevel_coarsen`.  ``coarsen_journal``
    (a path) enables resumable coarsening through a sealed JSONL journal;
    ``final_refine=False`` skips the finest-level full-graph refinement
    (bench instrumentation only).
    """

    name = "NLEVEL"
    supports_telemetry = True

    def __init__(
        self,
        refiner=None,
        coarsest_nodes: int = 80,
        coarsest_runs: int = 8,
        rating: str = "heavy-edge",
        max_net_size: int = DEFAULT_MAX_NET_SIZE,
        sample_pins: int = DEFAULT_SAMPLE_PINS,
        coarsen_journal=None,
        journal_batch: Optional[int] = None,
        final_refine: bool = True,
        refine_growth: Optional[float] = 8.0,
    ) -> None:
        if coarsest_nodes < 2:
            raise ValueError("coarsest_nodes must be >= 2")
        if coarsest_runs < 1:
            raise ValueError("coarsest_runs must be >= 1")
        if rating not in ("heavy-edge", "uniform"):
            raise ValueError(f"unknown rating {rating!r}")
        if refine_growth is not None and refine_growth <= 1.0:
            raise ValueError("refine_growth must be > 1.0 (or None)")
        self.refiner = refiner if refiner is not None else PropPartitioner()
        self.coarsest_nodes = coarsest_nodes
        self.coarsest_runs = coarsest_runs
        self.rating = rating
        self.max_net_size = max_net_size
        self.sample_pins = sample_pins
        self.coarsen_journal = (
            None if coarsen_journal is None else str(coarsen_journal)
        )
        self.journal_batch = journal_batch
        self.final_refine = final_refine
        #: Interleaved full refinement: every time the alive node count
        #: grows past ``refine_growth``x its size at the previous full
        #: refinement, pause uncoarsening and run the refiner on a
        #: snapshot of the whole intermediate graph.  This recovers the
        #: V-cycle's refine-at-every-level quality at a geometric (not
        #: per-level) cost; None disables it (purely local refinement).
        self.refine_growth = (
            None if refine_growth is None else float(refine_growth)
        )

    def _stage_boundaries(
        self, total: int, coarse_nodes: int
    ) -> List[int]:
        """Memento indices at which to pause for a full stage refine.

        Walking the stack from the coarsest end, a boundary is placed
        whenever the alive count reaches ``refine_growth``x its value at
        the previous boundary.  Index 0 (the fully uncontracted graph)
        is excluded — the final full refinement covers it.
        """
        if self.refine_growth is None:
            return []
        bounds: List[int] = []
        alive = max(coarse_nodes, 1)
        nxt = alive * self.refine_growth
        for i in range(total - 1, -1, -1):
            alive += 1
            if alive >= nxt and i > 0:
                bounds.append(i)
                nxt = alive * self.refine_growth
        return bounds

    def _stage_refine(
        self,
        state: UncoarsenState,
        balance: BalanceConstraint,
        seed: int,
    ) -> None:
        """Refine the whole intermediate graph and fold the improved
        sides back into the exact incremental partition state."""
        coarse, reps = state.dyn.snapshot()
        if coarse.num_nodes < 2:
            return
        init = [state.sides[u] for u in reps]
        max_w = max(coarse.node_weights)
        res = self.refiner.partition(
            coarse,
            balance=_slackened(balance, max_w),
            initial_sides=init,
            seed=seed,
        )
        if res.cut > state.cut + 1e-9:
            return  # refiner never worsens; guard stays for safety
        for i, u in enumerate(reps):
            if res.sides[i] != state.sides[u]:
                state._apply_move(u)

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,
        initial_sides: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
        recorder: Optional[Recorder] = None,
    ) -> BipartitionResult:
        """n-level bisection of ``graph``.

        ``initial_sides`` (when given) skips the hierarchy and runs the
        refiner directly — interface compatibility with the harness.
        """
        if balance is None:
            balance = BalanceConstraint.fifty_fifty(graph)
        base_seed = 0 if seed is None else seed
        start = time.perf_counter()

        if initial_sides is not None:
            result = self.refiner.partition(
                graph, balance=balance, initial_sides=initial_sides, seed=seed
            )
            result.algorithm = self.name
            return result
        if graph.num_nodes == 0:
            return BipartitionResult(sides=[], cut=0.0, algorithm=self.name,
                                     seed=seed)

        rec = resolve_recorder(recorder)
        if rec is not None:
            rec.run_start(self.name, seed, graph.num_nodes, graph.num_nets)

        journal_kwargs = {}
        if self.journal_batch is not None:
            journal_kwargs["journal_batch"] = self.journal_batch
        dyn, mementos, cstats = nlevel_coarsen(
            graph,
            target_nodes=self.coarsest_nodes,
            rating=self.rating,
            max_net_size=self.max_net_size,
            sample_pins=self.sample_pins,
            journal_path=self.coarsen_journal,
            **journal_kwargs,
        )
        if rec is not None:
            rec.span(-1, "coarsen", cstats["coarsen_seconds"])

        # Partition the coarsest graph from several random starts.
        coarse, reps = dyn.snapshot()
        max_w = max(coarse.node_weights) if coarse.num_nodes else 1.0
        coarse_balance = _slackened(balance, max_w)
        best_sides = None
        best_cut = float("inf")
        for i in range(self.coarsest_runs):
            init = random_balanced_sides(coarse, base_seed + 17 * i)
            res = self.refiner.partition(
                coarse, balance=coarse_balance, initial_sides=init,
                seed=base_seed + 17 * i,
            )
            if res.cut < best_cut:
                best_cut = res.cut
                best_sides = res.sides
        assert best_sides is not None

        sides = [0] * graph.num_nodes
        for i, u in enumerate(reps):
            sides[u] = best_sides[i]

        t_un = time.perf_counter()
        state = UncoarsenState(
            dyn, sides, balance, max_net_size=self.max_net_size, recorder=rec
        )
        stage_refines = 0
        stage_refine_seconds = 0.0
        hi = len(mementos)
        for lo in self._stage_boundaries(hi, coarse.num_nodes):
            state.uncoarsen(mementos[lo:hi])
            hi = lo
            t_st = time.perf_counter()
            self._stage_refine(
                state, balance, base_seed + 7919 * (stage_refines + 1)
            )
            dt = time.perf_counter() - t_st
            stage_refine_seconds += dt
            stage_refines += 1
            if rec is not None:
                rec.span(-1, "stage_refine", dt)
        state.uncoarsen(mementos[:hi])
        state.rebalance()
        uncoarsen_seconds = time.perf_counter() - t_un

        passes = state.uncontract_batches
        pass_cuts: List[float] = []
        final_stats: Dict[str, float] = {}
        if self.final_refine and mementos:
            res = self.refiner.partition(
                graph, balance=balance, initial_sides=state.sides,
                seed=base_seed + 1,
            )
            sides = list(res.sides)
            passes += res.passes
            pass_cuts = list(res.pass_cuts)
            final_stats = {
                f"final_{k}": v
                for k, v in res.stats.items()
                if isinstance(v, (int, float))
            }
        else:
            sides = state.sides

        stats: Dict[str, float] = {
            "coarsest_nodes": float(coarse.num_nodes),
            "coarsen_seconds": cstats["coarsen_seconds"],
            "contractions": cstats["contractions"],
            "ratings_updated": cstats["ratings_updated"],
            "rescued_nodes": cstats["rescued_nodes"],
            "journal_replayed": cstats["journal_replayed"],
            "uncoarsen_seconds": uncoarsen_seconds,
            "local_refine_seconds": state.local_refine_seconds,
            "stage_refines": float(stage_refines),
            "stage_refine_seconds": stage_refine_seconds,
            "uncontract_batches": float(state.uncontract_batches),
            "region_moves": float(state.region_moves),
            "rebalance_moves": float(state.rebalance_moves),
        }
        stats.update(final_stats)
        result = BipartitionResult(
            sides=sides,
            cut=cut_cost(graph, sides),
            algorithm=self.name,
            seed=seed,
            passes=passes,
            runtime_seconds=time.perf_counter() - start,
            stats=stats,
            pass_cuts=pass_cuts,
        )
        result.verify(graph)
        if rec is not None:
            rec.counters(-1, {
                "contractions": int(cstats["contractions"]),
                "ratings_updated": int(cstats["ratings_updated"]),
                "rescued_nodes": int(cstats["rescued_nodes"]),
                "uncontract_batches": state.uncontract_batches,
            })
            rec.run_end(
                self.name, result.cut, result.passes,
                result.runtime_seconds, result.stats,
            )
        return result
