"""n-level coarsening: one-pair-at-a-time contraction under a PQ rating.

The V-cycle coarsener (:mod:`repro.multilevel.coarsen`) builds whole
matching levels at once and pays O(q²) per net for its clique affinity.
This module implements the *n-level* alternative of Henne, Sanders,
Schlag et al. (*n-Level Hypergraph Partitioning*, see PAPERS.md):

* :class:`DynamicHypergraph` — a mutable pin/incidence structure
  supporting KaHyPar-style single-pair contraction in O(deg(v)) dict
  operations, with a :class:`Memento` per contraction so the exact
  pre-contraction state can be restored during uncoarsening;
* :class:`NLevelCoarsener` — heavy-edge ratings maintained in an
  :class:`~repro.datastructures.AddressablePriorityQueue`, contracting
  the best-rated pair one at a time down to a target node count, with a
  rescue scan that pairs nodes whose every net is oversized (sampled-pin
  fallback) instead of stranding them;
* :class:`CoarseningJournal` — the contraction sequence serialized
  through the sha256-sealed JSONL machinery of
  :mod:`repro.engine.journal`, so a partially coarsened million-node
  instance resumes with zero rating recomputation for journaled pairs.

Determinism contract (docs/multilevel.md): coarsening is a pure function
of ``(graph, target_nodes, rating, max_net_size, max_cluster_weight,
sample_pins)`` — no seeds, no wall-clock, no iteration over
unordered containers.  After every contraction the ratings of the entire
affected neighborhood are recomputed *eagerly*, so the queue never holds
a stale entry and its pop order — total order on ``(-rating, node)`` —
depends only on the current dynamic graph, never on update history.
That is what makes a journal-resumed coarsening bit-identical to an
uninterrupted one: replay reapplies the journaled pairs mechanically,
the queue is rebuilt from the resulting state, and the continuation
makes exactly the moves the original run would have made.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import IO, Dict, List, Optional, Tuple

from ..datastructures import AddressablePriorityQueue
from ..engine.journal import iter_journal_records
from ..engine.records import seal
from ..engine.units import hypergraph_fingerprint
from ..hypergraph import Hypergraph
from .coarsen import DEFAULT_MAX_NET_SIZE, DEFAULT_SAMPLE_PINS

#: ``kind`` field of a coarsening-journal header record.
JOURNAL_KIND = "nlevel-coarsen"

#: Contraction pairs per sealed journal record.  Each record is one
#: line-atomic append (write+flush+fsync), so a crash loses at most the
#: unflushed tail of one batch — which resume simply re-derives.
DEFAULT_JOURNAL_BATCH = 4096


class Memento:
    """Everything needed to undo one contraction ``v -> u`` exactly.

    ``shrunk`` lists nets that contained both endpoints (v was removed,
    the net got smaller); ``replaced`` nets that contained only v (v's
    slot was taken over by u, size unchanged); ``pruned`` holds
    ``(net, last_pin)`` for shrunk nets that collapsed to a single pin
    and were detached from that pin's incidence list (a 1-pin net can
    never be cut, so refinement must not iterate it).  ``uw`` is u's
    weight *before* the contraction — restored by assignment, not
    subtraction, so float weights round-trip bit-exactly.
    """

    __slots__ = ("u", "v", "uw", "shrunk", "replaced", "pruned")

    def __init__(self, u: int, v: int, uw: float) -> None:
        self.u = u
        self.v = v
        self.uw = uw
        self.shrunk: List[int] = []
        self.replaced: List[int] = []
        self.pruned: List[Tuple[int, int]] = []


class DynamicHypergraph:
    """Mutable incidence structure for single-pair contraction.

    Pins and per-node net lists are stored as dicts-used-as-ordered-sets:
    O(1) membership, insertion and deletion with deterministic
    (insertion-order) iteration — so replaying the same contraction
    sequence reconstructs byte-identical iteration orders, which the
    determinism contract relies on for float accumulation.

    Invariants: ``pins[net]`` contains only alive nodes; ``net in
    nets_of[x]`` iff ``x in pins[net]``, except for dead nodes (whose
    ``nets_of`` is left frozen at contraction time for the undo) and
    pruned nets (detached from their last pin until uncontracted).
    """

    __slots__ = (
        "pins",
        "nets_of",
        "net_cost",
        "node_weight",
        "alive",
        "alive_count",
        "num_nets",
    )

    def __init__(self, graph: Hypergraph) -> None:
        self.pins: List[Dict[int, None]] = [
            dict.fromkeys(net) for net in graph.nets
        ]
        self.nets_of: List[Dict[int, None]] = [
            dict.fromkeys(graph.node_nets(u)) for u in range(graph.num_nodes)
        ]
        self.net_cost: List[float] = list(graph.net_costs)
        self.node_weight: List[float] = list(graph.node_weights)
        self.alive: List[bool] = [True] * graph.num_nodes
        self.alive_count: int = graph.num_nodes
        self.num_nets: int = graph.num_nets

    @property
    def num_nodes(self) -> int:
        """Size of the *original* node id space (dead ids included)."""
        return len(self.alive)

    def contract(self, u: int, v: int) -> Memento:
        """Merge ``v`` into ``u`` (KaHyPar-style), returning the undo
        record.  O(deg(v)) dict operations."""
        m = Memento(u, v, self.node_weight[u])
        pins = self.pins
        for net in self.nets_of[v]:
            net_pins = pins[net]
            if u in net_pins:
                del net_pins[v]
                if len(net_pins) == 1:
                    last = next(iter(net_pins))
                    del self.nets_of[last][net]
                    m.pruned.append((net, last))
                else:
                    m.shrunk.append(net)
            else:
                del net_pins[v]
                net_pins[u] = None
                self.nets_of[u][net] = None
                m.replaced.append(net)
        self.node_weight[u] += self.node_weight[v]
        self.alive[v] = False
        self.alive_count -= 1
        return m

    def uncontract(self, m: Memento) -> None:
        """Exact inverse of :meth:`contract`.  Mementos must be undone
        in LIFO order (later contractions may touch the same nets)."""
        u, v = m.u, m.v
        pins = self.pins
        for net in m.replaced:
            net_pins = pins[net]
            del net_pins[u]
            net_pins[v] = None
            del self.nets_of[u][net]
        for net in m.shrunk:
            pins[net][v] = None
        for net, last in m.pruned:
            pins[net][v] = None
            self.nets_of[last][net] = None
        self.node_weight[u] = m.uw
        self.alive[v] = True
        self.alive_count += 1

    def snapshot(self) -> Tuple[Hypergraph, List[int]]:
        """The current coarse graph as an immutable Hypergraph.

        Returns ``(coarse, reps)`` where ``reps[i]`` is the original node
        id of compact coarse node ``i``.  Nets with fewer than two alive
        pins are dropped (they can never be cut)."""
        reps = [u for u in range(len(self.alive)) if self.alive[u]]
        compact = {u: i for i, u in enumerate(reps)}
        nets: List[List[int]] = []
        costs: List[float] = []
        for net in range(self.num_nets):
            net_pins = self.pins[net]
            if len(net_pins) < 2:
                continue
            nets.append([compact[x] for x in net_pins])
            costs.append(self.net_cost[net])
        coarse = Hypergraph(
            nets,
            num_nodes=len(reps),
            net_costs=costs,
            node_weights=[self.node_weight[u] for u in reps],
        )
        return coarse, reps


def coarsening_fingerprint(
    graph: Hypergraph,
    target_nodes: int,
    rating: str,
    max_net_size: int,
    max_cluster_weight: float,
    sample_pins: int,
) -> str:
    """Journal binding: netlist content hash + every coarsening knob.

    The seed is deliberately absent — n-level coarsening is
    seed-independent, so one journal serves every seed of a config."""
    h = hashlib.sha256()
    h.update(hypergraph_fingerprint(graph).encode())
    h.update(
        f"|{JOURNAL_KIND}-v1|{target_nodes}|{rating}|{max_net_size}"
        f"|{max_cluster_weight!r}|{sample_pins}".encode()
    )
    return h.hexdigest()


class CoarseningJournal:
    """Sealed JSONL log of the contraction sequence.

    Same crash-safety discipline as :class:`repro.engine.journal.RunJournal`:
    each record is one newline-terminated ``write`` + flush + fsync, torn
    or checksum-failing lines are skipped on read, and all I/O errors are
    swallowed into :attr:`errors` (journalling is best-effort and must
    never abort the coarsening it protects).  The header binds the file
    to a :func:`coarsening_fingerprint`; a mismatch on replay means the
    journal belongs to a different graph/config and is ignored.
    """

    def __init__(
        self,
        path,
        fingerprint: str,
        batch_pairs: int = DEFAULT_JOURNAL_BATCH,
    ) -> None:
        if batch_pairs < 1:
            raise ValueError("batch_pairs must be >= 1")
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.batch_pairs = batch_pairs
        self.errors = 0
        self.appended_pairs = 0
        self._buffer: List[List[int]] = []
        self._fh: Optional[IO[str]] = None
        # Cumulative pair index of the next record to write.  Replay
        # sets it to the intact-prefix length, so appended records chain
        # onto the prefix even when the file has a corrupt middle.
        self._seq = 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def replay_pairs(self) -> List[Tuple[int, int]]:
        """The journaled contraction pairs — longest intact prefix.

        Empty when the file is missing or its header does not match this
        journal's fingerprint (different graph or different knobs).
        Every record carries the cumulative pair index it starts at
        (``seq``); a record that does not chain onto the pairs read so
        far (its predecessor was torn or corrupt) ends the trusted
        prefix — replaying across a gap would silently reorder the
        contraction sequence."""
        pairs: List[Tuple[int, int]] = []
        saw_header = False
        for record in iter_journal_records(self.path):
            rtype = record.get("type")
            if not saw_header:
                if (
                    rtype != "header"
                    or record.get("kind") != JOURNAL_KIND
                    or record.get("fingerprint") != self.fingerprint
                ):
                    return []
                saw_header = True
                continue
            if rtype != "contractions":
                continue
            if record.get("seq") != len(pairs):
                break
            for pair in record.get("pairs", ()):
                pairs.append((int(pair[0]), int(pair[1])))
        self._seq = len(pairs)
        return pairs

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _write_line(self, record: dict) -> None:
        try:
            line = json.dumps(seal(record)) + "\n"
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                torn_tail = False
                try:
                    if self.path.stat().st_size > 0:
                        with open(self.path, "rb") as probe:
                            probe.seek(-1, os.SEEK_END)
                            torn_tail = probe.read(1) != b"\n"
                except OSError:
                    torn_tail = False
                self._fh = open(self.path, "a")
                if torn_tail:
                    # A crash mid-write left a torn final line.  Close it
                    # out so appended records stand on their own lines;
                    # the fragment then fails its checksum and is skipped
                    # on replay instead of corrupting our first record.
                    self._fh.write("\n")
            self._fh.write(line)
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except (OSError, TypeError, ValueError):
            self.errors += 1

    def ensure_header(self) -> None:
        """Write the fingerprint header when starting a fresh file."""
        try:
            exists = self.path.exists() and self.path.stat().st_size > 0
        except OSError:
            exists = False
        if exists:
            return
        self._write_line({
            "type": "header",
            "kind": JOURNAL_KIND,
            "fingerprint": self.fingerprint,
        })

    def append(self, u: int, v: int) -> None:
        """Buffer one contraction; flushes a sealed record per batch."""
        self._buffer.append([u, v])
        if len(self._buffer) >= self.batch_pairs:
            self.flush()

    def flush(self) -> None:
        """Write the buffered pairs as one sealed record."""
        if not self._buffer:
            return
        self._write_line({
            "type": "contractions",
            "seq": self._seq,
            "pairs": self._buffer,
        })
        self._seq += len(self._buffer)
        self.appended_pairs += len(self._buffer)
        self._buffer = []

    def close(self) -> None:
        """Flush the tail batch and release the file handle."""
        self.flush()
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                self.errors += 1
            self._fh = None


class NLevelCoarsener:
    """Priority-queue driven one-pair-at-a-time coarsening.

    Ratings follow the heavy-edge rule of the V-cycle coarsener —
    ``r(u, v) = Σ c(net)/(|net|-1)`` over shared nets of size at most
    ``max_net_size`` (``rating="uniform"`` drops the ``1/(|net|-1)``
    factor) — but are computed per *node* (best feasible partner), not
    per O(q²) clique edge.  The pair ``(u, best(u))`` with the highest
    rating is contracted; ties break toward the smaller node id at both
    levels, so the sequence is fully deterministic.
    """

    def __init__(
        self,
        dyn: DynamicHypergraph,
        target_nodes: int,
        rating: str = "heavy-edge",
        max_net_size: int = DEFAULT_MAX_NET_SIZE,
        max_cluster_weight: float = float("inf"),
        sample_pins: int = DEFAULT_SAMPLE_PINS,
        journal: Optional[CoarseningJournal] = None,
        mementos: Optional[List[Memento]] = None,
    ) -> None:
        if target_nodes < 2:
            raise ValueError("target_nodes must be >= 2")
        if rating not in ("heavy-edge", "uniform"):
            raise ValueError(f"unknown rating {rating!r}")
        if sample_pins < 1:
            raise ValueError("sample_pins must be >= 1")
        self.dyn = dyn
        self.target_nodes = target_nodes
        self.rating = rating
        self.max_net_size = max_net_size
        self.max_cluster_weight = max_cluster_weight
        self.sample_pins = sample_pins
        self.journal = journal
        self.mementos: List[Memento] = mementos if mementos is not None else []
        self.pq = AddressablePriorityQueue()
        # Reverse partner index: _targets[p] = nodes whose queued best
        # partner is p.  Only the *set* per partner matters (each member
        # is rerated independently from pure graph state), so its
        # history-dependent iteration order cannot leak into results.
        self._targets: Dict[int, Dict[int, None]] = {}
        self.contractions = 0
        self.ratings_updated = 0
        self.rescued_nodes = 0

    # ------------------------------------------------------------------
    # Rating
    # ------------------------------------------------------------------
    def _best_partner(self, u: int) -> Optional[Tuple[float, int]]:
        """Highest-rated weight-feasible partner of ``u`` over its small
        nets, or None.  Ties break toward the smaller partner id."""
        dyn = self.dyn
        pins = dyn.pins
        net_cost = dyn.net_cost
        heavy = self.rating == "heavy-edge"
        max_q = self.max_net_size
        wu = dyn.node_weight[u]
        affinity: Dict[int, float] = {}
        get = affinity.get
        for net in dyn.nets_of[u]:
            net_pins = pins[net]
            q = len(net_pins)
            if q < 2 or q > max_q:
                continue
            w = net_cost[net] / (q - 1) if heavy else net_cost[net]
            for v in net_pins:
                if v != u:
                    affinity[v] = get(v, 0.0) + w
        best_v = -1
        best_r = 0.0
        node_weight = dyn.node_weight
        cap = self.max_cluster_weight
        for v, r in affinity.items():
            if wu + node_weight[v] > cap:
                continue
            if r > best_r or (r == best_r and (best_v < 0 or v < best_v)):
                best_r = r
                best_v = v
        if best_v < 0:
            return None
        return best_r, best_v

    def _update_node(self, u: int) -> None:
        best = self._best_partner(u)
        old = self.pq.payload(u) if u in self.pq else None
        if best is None:
            if old is not None:
                self._targets[old].pop(u, None)
            self.pq.discard(u)
        else:
            rating, partner = best
            if old != partner:
                if old is not None:
                    self._targets[old].pop(u, None)
                self._targets.setdefault(partner, {})[u] = None
            self.pq.push(u, rating, partner)
        self.ratings_updated += 1

    def _update_region(self, m: Memento) -> None:
        """Eagerly rerate the exact affected set of contraction ``m``.

        Sufficiency: a rating term changes only through a net whose size
        or membership changed — those are precisely the memento's nets,
        and net sizes never grow, so an oversized net stays rating-inert
        unless it shrank into range (again a memento net).  Feasibility
        only worsens (weights only grow, and only ``u``'s grew), so a
        node's cached best can be invalidated only when that best *is*
        ``u`` (now heavier) or ``v`` (now dead) — the reverse-index
        sets.  Everything else keeps a valid, unchanged entry.
        """
        dyn = self.dyn
        pins = dyn.pins
        max_q = self.max_net_size
        affected: Dict[int, None] = {m.u: None}
        for net_list in (m.shrunk, m.replaced):
            for net in net_list:
                net_pins = pins[net]
                q = len(net_pins)
                if 2 <= q <= max_q:
                    affected.update(dict.fromkeys(net_pins))
        node_weight = dyn.node_weight
        cap = self.max_cluster_weight
        stale = self._targets.get(m.u)
        if stale:
            # Nodes whose cached best is u keep a valid entry unless the
            # pair outgrew the cap (their rating toward u via unmodified
            # nets is unchanged; modified-net pins are covered above).
            wu = node_weight[m.u]
            for w in stale:
                if wu + node_weight[w] > cap:
                    affected[w] = None
        stale = self._targets.get(m.v)
        if stale:
            affected.update(dict.fromkeys(stale))
        alive = dyn.alive
        for w in affected:
            if alive[w]:
                self._update_node(w)
        self._targets.pop(m.v, None)

    # ------------------------------------------------------------------
    # Contraction loop
    # ------------------------------------------------------------------
    def _contract(self, u: int, v: int) -> None:
        m = self.dyn.contract(u, v)
        self.mementos.append(m)
        self.contractions += 1
        old = self.pq.payload(v) if v in self.pq else None
        if old is not None:
            self._targets[old].pop(v, None)
        self.pq.discard(v)
        if self.journal is not None:
            self.journal.append(u, v)
        self._update_region(m)

    def _rebuild_queue(self) -> None:
        """Rate every alive node from scratch (startup and resume)."""
        self.pq = AddressablePriorityQueue()
        self._targets = {}
        dyn = self.dyn
        for u in range(len(dyn.alive)):
            if dyn.alive[u]:
                self._update_node(u)

    def _fallback_partner(self, u: int) -> Optional[int]:
        """Rescue partner for a node the rating cannot match: the first
        weight-feasible pin among the first ``sample_pins`` of its
        smallest net (pad-heavy nodes whose every net is oversized), or
        the nearest alive node by id when ``u`` is isolated."""
        dyn = self.dyn
        wu = dyn.node_weight[u]
        best_net = -1
        best_q = -1
        for net in dyn.nets_of[u]:
            q = len(dyn.pins[net])
            if q < 2:
                continue
            if best_q < 0 or q < best_q or (q == best_q and net < best_net):
                best_q = q
                best_net = net
        if best_net >= 0:
            sampled = 0
            for v in dyn.pins[best_net]:
                if v == u:
                    continue
                sampled += 1
                if sampled > self.sample_pins:
                    break
                if wu + dyn.node_weight[v] <= self.max_cluster_weight:
                    return v
            return None
        n = len(dyn.alive)
        for step in range(1, n):
            v = (u + step) % n
            if dyn.alive[v] and wu + dyn.node_weight[v] <= self.max_cluster_weight:
                return v
        return None

    def _rescue_round(self) -> bool:
        """One fallback contraction when the queue is dry.

        Scans alive nodes from id 0 — a pure function of the current
        graph (no cursor state), so a resumed run rescues the same pair
        an uninterrupted one would."""
        dyn = self.dyn
        for u in range(len(dyn.alive)):
            if not dyn.alive[u]:
                continue
            v = self._fallback_partner(u)
            if v is None:
                continue
            self._contract(u, v)
            self.rescued_nodes += 1
            return True
        return False

    def coarsen(self) -> List[Memento]:
        """Contract down to ``target_nodes`` (or until nothing can
        contract).  Returns the accumulated memento stack."""
        dyn = self.dyn
        if dyn.alive_count <= self.target_nodes:
            # Already coarse enough (e.g. resumed from a complete
            # journal): zero rating work.
            return self.mementos
        self._rebuild_queue()
        while dyn.alive_count > self.target_nodes:
            entry = self.pq.pop()
            if entry is None:
                if not self._rescue_round():
                    break
                continue
            u, _rating, v = entry
            if (
                not dyn.alive[v]
                or dyn.node_weight[u] + dyn.node_weight[v]
                > self.max_cluster_weight
            ):
                # Unreachable under eager updates; rerate from pure
                # state so even a missed case cannot break determinism.
                self._update_node(u)
                continue
            self._contract(u, v)
        if self.journal is not None:
            self.journal.flush()
        return self.mementos


def nlevel_coarsen(
    graph: Hypergraph,
    target_nodes: int,
    rating: str = "heavy-edge",
    max_net_size: int = DEFAULT_MAX_NET_SIZE,
    max_cluster_weight: Optional[float] = None,
    sample_pins: int = DEFAULT_SAMPLE_PINS,
    journal_path=None,
    journal_batch: int = DEFAULT_JOURNAL_BATCH,
) -> Tuple[DynamicHypergraph, List[Memento], Dict[str, float]]:
    """Coarsen ``graph`` to about ``target_nodes`` alive nodes.

    When ``journal_path`` is given, a matching journal's pairs are
    replayed mechanically (no rating work) before the priority queue
    takes over, and every new contraction is appended to it.

    Returns ``(dyn, mementos, stats)``; ``mementos`` is the full
    hierarchy (replayed + fresh) in contraction order.
    """
    if max_cluster_weight is None:
        # The V-cycle recomputes its 4x-average cap per level, so by the
        # coarsest level the cap is ~4x(total/target).  n-level has no
        # levels; use that final cap directly, else the fixed-cap floor
        # of n/4 alive nodes makes the target unreachable.
        max_cluster_weight = (
            4.0 * graph.total_node_weight / max(target_nodes, 1)
        )
    start = time.perf_counter()
    dyn = DynamicHypergraph(graph)
    mementos: List[Memento] = []
    journal: Optional[CoarseningJournal] = None
    replayed = 0
    if journal_path is not None:
        fingerprint = coarsening_fingerprint(
            graph, target_nodes, rating, max_net_size,
            max_cluster_weight, sample_pins,
        )
        journal = CoarseningJournal(
            journal_path, fingerprint, batch_pairs=journal_batch
        )
        n = dyn.num_nodes
        for u, v in journal.replay_pairs():
            if dyn.alive_count <= target_nodes:
                break
            if (
                u == v
                or not 0 <= u < n
                or not 0 <= v < n
                or not dyn.alive[u]
                or not dyn.alive[v]
            ):
                break  # journal diverged from this graph; stop trusting it
            mementos.append(dyn.contract(u, v))
            replayed += 1
        journal.ensure_header()
    coarsener = NLevelCoarsener(
        dyn,
        target_nodes=target_nodes,
        rating=rating,
        max_net_size=max_net_size,
        max_cluster_weight=max_cluster_weight,
        sample_pins=sample_pins,
        journal=journal,
        mementos=mementos,
    )
    coarsener.coarsen()
    if journal is not None:
        journal.close()
    stats: Dict[str, float] = {
        "coarsen_seconds": time.perf_counter() - start,
        "contractions": float(coarsener.contractions),
        "ratings_updated": float(coarsener.ratings_updated),
        "rescued_nodes": float(coarsener.rescued_nodes),
        "journal_replayed": float(replayed),
    }
    return dyn, mementos, stats
