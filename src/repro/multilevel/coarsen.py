"""Hypergraph coarsening by heavy-edge matching.

The multilevel paradigm (popularized by hMETIS shortly after the DAC-96
paper) coarsens the netlist through a hierarchy of contractions, partitions
the small coarsest graph, then uncoarsens with refinement at every level.
This module provides the coarsening half:

* :func:`connectivity_weights` — pairwise node affinity from shared nets
  (clique weighting, ``c/(q-1)`` per shared net);
* :func:`heavy_edge_matching` — greedy maximal matching preferring the
  heaviest affinity, with node-weight balance guards;
* :func:`coarsen_once` / :func:`coarsen_to` — one level / a full hierarchy
  of :class:`~repro.hypergraph.transforms.Contraction` records.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..hypergraph import Hypergraph, contract
from ..hypergraph.transforms import Contraction

#: Nets larger than this carry almost no matching signal and cost q^2 to
#: expand; they are skipped during affinity computation (standard practice).
DEFAULT_MAX_NET_SIZE = 40

#: Pins inspected per oversized net by the stranded-node fallback (both
#: here and in the n-level rescue scan, :mod:`repro.multilevel.nlevel`).
DEFAULT_SAMPLE_PINS = 16


def connectivity_weights(
    graph: Hypergraph, max_net_size: int = DEFAULT_MAX_NET_SIZE
) -> List[Dict[int, float]]:
    """Per-node affinity maps: ``weights[u][v] = Σ c(net)/(|net|-1)``."""
    weights: List[Dict[int, float]] = [dict() for _ in range(graph.num_nodes)]
    for net_id, pins in enumerate(graph.nets):
        q = len(pins)
        if q < 2 or q > max_net_size:
            continue
        w = graph.net_cost(net_id) / (q - 1)
        for i in range(q):
            u = pins[i]
            for j in range(i + 1, q):
                v = pins[j]
                weights[u][v] = weights[u].get(v, 0.0) + w
                weights[v][u] = weights[v].get(u, 0.0) + w
    return weights


def heavy_edge_matching(
    graph: Hypergraph,
    seed: int = 0,
    max_cluster_weight: Optional[float] = None,
    max_net_size: int = DEFAULT_MAX_NET_SIZE,
) -> List[int]:
    """Cluster assignment from a greedy heavy-edge matching.

    Nodes are visited in seeded random order; each unmatched node pairs
    with its heaviest-affinity unmatched neighbor whose combined weight
    stays below ``max_cluster_weight`` (default: 4x the average node
    weight — prevents snowballing super-nodes).  Unmatchable nodes become
    singleton clusters.  Returns contiguous cluster ids.
    """
    n = graph.num_nodes
    if n == 0:
        return []
    if max_cluster_weight is None:
        max_cluster_weight = 4.0 * graph.total_node_weight / max(n, 1)

    affinity = connectivity_weights(graph, max_net_size=max_net_size)
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)

    match: List[int] = [-1] * n
    for u in order:
        if match[u] != -1:
            continue
        best_v = -1
        best_w = 0.0
        wu = graph.node_weight(u)
        for v, w in affinity[u].items():
            if match[v] != -1 or v == u:
                continue
            if wu + graph.node_weight(v) > max_cluster_weight:
                continue
            if w > best_w or (w == best_w and v > best_v):
                best_w = w
                best_v = v
        if best_v >= 0:
            match[u] = best_v
            match[best_v] = u
        else:
            match[u] = u  # singleton

    # Stranded-node fallback: a node whose every net exceeds max_net_size
    # has an empty affinity map, so the loop above can never match it and
    # coarsening stalls at min_reduction on pad-heavy circuits.  Pair such
    # nodes with another stranded singleton sampled from their smallest
    # net (restricted to stranded partners, so circuits without stranded
    # nodes — the entire golden corpus — are bit-for-bit unaffected).
    for u in order:
        if match[u] != u or affinity[u]:
            continue
        best_net = -1
        best_q = -1
        for net_id in graph.node_nets(u):
            q = graph.net_size(net_id)
            if q < 2:
                continue
            if best_q < 0 or q < best_q or (q == best_q and net_id < best_net):
                best_q = q
                best_net = net_id
        if best_net < 0:
            continue  # isolated node: nothing to pair with
        wu = graph.node_weight(u)
        sampled = 0
        for v in graph.net(best_net):
            if v == u:
                continue
            sampled += 1
            if sampled > DEFAULT_SAMPLE_PINS:
                break
            if (
                match[v] == v
                and not affinity[v]
                and wu + graph.node_weight(v) <= max_cluster_weight
            ):
                match[u] = v
                match[v] = u
                break

    cluster_of = [-1] * n
    next_id = 0
    for u in range(n):
        if cluster_of[u] != -1:
            continue
        cluster_of[u] = next_id
        if match[u] != u:
            cluster_of[match[u]] = next_id
        next_id += 1
    return cluster_of


def coarsen_once(
    graph: Hypergraph, seed: int = 0, max_net_size: int = DEFAULT_MAX_NET_SIZE
) -> Contraction:
    """One level of heavy-edge coarsening."""
    cluster_of = heavy_edge_matching(graph, seed=seed, max_net_size=max_net_size)
    return contract(graph, cluster_of)


def coarsen_to(
    graph: Hypergraph,
    target_nodes: int = 80,
    max_levels: int = 20,
    min_reduction: float = 0.9,
    seed: int = 0,
) -> List[Contraction]:
    """Coarsening hierarchy, finest first.

    Stops when the coarse graph has at most ``target_nodes`` nodes, when a
    level shrinks the graph by less than ``1 - min_reduction`` (matching
    has stalled — typical once structure is exhausted), or after
    ``max_levels`` levels.  May return an empty list for already-small
    inputs.
    """
    if target_nodes < 2:
        raise ValueError("target_nodes must be >= 2")
    levels: List[Contraction] = []
    current = graph
    for level in range(max_levels):
        if current.num_nodes <= target_nodes:
            break
        contraction = coarsen_once(current, seed=seed + level)
        if contraction.coarse.num_nodes >= current.num_nodes * min_reduction:
            break  # stalled
        levels.append(contraction)
        current = contraction.coarse
    return levels
