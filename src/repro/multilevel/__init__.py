"""Multilevel partitioning: V-cycle and n-level engines.

Two coarsening paradigms share this package:

* the classic **V-cycle** (:class:`MultilevelPartitioner`) — whole
  matching levels via :func:`heavy_edge_matching`, full-graph refinement
  at every level;
* the **n-level** engine (:class:`NLevelPartitioner`) — one-pair-at-a-
  time priority-queue contraction (:func:`nlevel_coarsen`) with
  journal-resumable hierarchies and refinement localized around each
  uncontraction batch.  The scalable choice for 100k+-node instances
  (see docs/multilevel.md).
"""

from .coarsen import (
    coarsen_once,
    coarsen_to,
    connectivity_weights,
    heavy_edge_matching,
)
from .nlevel import (
    CoarseningJournal,
    DynamicHypergraph,
    Memento,
    NLevelCoarsener,
    coarsening_fingerprint,
    nlevel_coarsen,
)
from .uncoarsen import NLevelPartitioner, UncoarsenState
from .vcycle import MultilevelPartitioner

__all__ = [
    "MultilevelPartitioner",
    "NLevelPartitioner",
    "UncoarsenState",
    "CoarseningJournal",
    "DynamicHypergraph",
    "Memento",
    "NLevelCoarsener",
    "coarsening_fingerprint",
    "nlevel_coarsen",
    "coarsen_once",
    "coarsen_to",
    "heavy_edge_matching",
    "connectivity_weights",
]
