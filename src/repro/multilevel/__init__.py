"""Multilevel (V-cycle) partitioning: heavy-edge coarsening + refinement."""

from .coarsen import (
    coarsen_once,
    coarsen_to,
    connectivity_weights,
    heavy_edge_matching,
)
from .vcycle import MultilevelPartitioner

__all__ = [
    "MultilevelPartitioner",
    "coarsen_once",
    "coarsen_to",
    "heavy_edge_matching",
    "connectivity_weights",
]
