"""Brute-force reference oracles — direct transcriptions of definitions.

Every function here recomputes a quantity the incremental engines track,
straight from the paper's definitions, over plain Python lists (node →
side, node → locked, node → probability).  Nothing in this module reads a
:class:`~repro.partition.partition.Partition`'s internal counters or the
gain engines' caches — that independence is what makes these usable as
oracles: if an incremental shortcut is wrong, the disagreement shows up
here instead of being reproduced.

Float caveat: products and sums iterate pins/nets in the same (netlist)
order the incremental code uses, so reference and incremental values are
bit-equal in practice; audits still compare with a small tolerance.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..hypergraph import Hypergraph


# ---------------------------------------------------------------------------
# Structure: counts, weights, cut
# ---------------------------------------------------------------------------
def pin_counts(
    graph: Hypergraph, sides: Sequence[int], net_id: int
) -> Tuple[int, int]:
    """(pins on side 0, pins on side 1) of one net."""
    c0 = sum(1 for v in graph.net(net_id) if sides[v] == 0)
    return c0, graph.net_size(net_id) - c0


def locked_pin_counts(
    graph: Hypergraph,
    sides: Sequence[int],
    locked: Sequence[bool],
    net_id: int,
) -> Tuple[int, int]:
    """(locked pins on side 0, locked pins on side 1) of one net."""
    l0 = l1 = 0
    for v in graph.net(net_id):
        if locked[v]:
            if sides[v] == 0:
                l0 += 1
            else:
                l1 += 1
    return l0, l1


def cut_cost(graph: Hypergraph, sides: Sequence[int]) -> float:
    """Sum of costs of nets with pins on both sides (the cutset)."""
    total = 0.0
    for net_id in range(graph.num_nets):
        c0, c1 = pin_counts(graph, sides, net_id)
        if c0 and c1:
            total += graph.net_cost(net_id)
    return total


def side_weights(graph: Hypergraph, sides: Sequence[int]) -> Tuple[float, float]:
    """Total node weight on (side 0, side 1)."""
    w0 = sum(
        graph.node_weight(v) for v in range(graph.num_nodes) if sides[v] == 0
    )
    return w0, graph.total_node_weight - w0


# ---------------------------------------------------------------------------
# FM: Eqn. (1) deterministic gain
# ---------------------------------------------------------------------------
def immediate_gain(graph: Hypergraph, sides: Sequence[int], node: int) -> float:
    """FM's deterministic gain (paper Eqn. 1): cut decrease if moved now."""
    s = sides[node]
    gain = 0.0
    for net_id in graph.node_nets(node):
        mine, theirs = pin_counts(graph, sides, net_id)
        if s == 1:
            mine, theirs = theirs, mine
        cost = graph.net_cost(net_id)
        if theirs == 0:
            if mine > 1:
                gain -= cost
            # else: single-pin net follows the node; cut unchanged
        elif mine == 1:
            gain += cost
    return gain


# ---------------------------------------------------------------------------
# PROP: Eqns. (2)–(6) probabilistic gain
# ---------------------------------------------------------------------------
def prop_net_gain(
    graph: Hypergraph,
    sides: Sequence[int],
    locked: Sequence[bool],
    p: Sequence[float],
    node: int,
    net_id: int,
) -> float:
    """Gain of one net for free node ``u`` — the Eqn. 2–6 case split.

    With ``A = (net ∩ side(u)) − {u}`` and ``B = net ∩ other side``:

    * net in the cutset (B non-empty):  ``g = c · (Π_A p − Π_B p)``
      — Eqn. (3); a locked member zeroes its side's product, which is
      exactly the Eqn. (5)/(6) locked specializations;
    * net internal to side(u) (B empty):  ``g = −c · (1 − Π_A p)``
      — Eqn. (4).
    """
    s = sides[node]
    prod_a = 1.0
    prod_b = 1.0
    has_other = False
    for v in graph.net(net_id):
        if v == node:
            continue
        pv = 0.0 if locked[v] else p[v]
        if sides[v] == s:
            prod_a *= pv
        else:
            has_other = True
            prod_b *= pv
    cost = graph.net_cost(net_id)
    if has_other:
        return cost * (prod_a - prod_b)
    return cost * (prod_a - 1.0)


def prop_gain(
    graph: Hypergraph,
    sides: Sequence[int],
    locked: Sequence[bool],
    p: Sequence[float],
    node: int,
) -> float:
    """Total probabilistic gain ``g(u) = Σ_nets g_net(u)`` (Eqn. 2)."""
    return sum(
        prop_net_gain(graph, sides, locked, p, node, net_id)
        for net_id in graph.node_nets(node)
    )


def prop_net_contributions(
    graph: Hypergraph,
    sides: Sequence[int],
    locked: Sequence[bool],
    p: Sequence[float],
    net_id: int,
) -> Dict[int, float]:
    """Per-free-pin gain contributions of one net (Eqn. 5/6 primitive)."""
    return {
        v: prop_net_gain(graph, sides, locked, p, v, net_id)
        for v in graph.net(net_id)
        if not locked[v]
    }


# ---------------------------------------------------------------------------
# LA: Krishnamurthy gain vectors
# ---------------------------------------------------------------------------
def la_gain_vector(
    graph: Hypergraph,
    sides: Sequence[int],
    locked: Sequence[bool],
    node: int,
    k: int,
) -> Tuple[float, ...]:
    """The LA-k gain vector of a free node, from first principles.

    Element i (1-based) accumulates ``+cost`` for nets removable from the
    cut by moving ``i`` free pins off ``node``'s side (``node`` included),
    and ``−cost`` for nets whose removal through the *other* side is
    foreclosed at binding level ``i``; a locked pin on a side kills that
    side's term.  Element 1 is exactly the FM gain.
    """
    s = sides[node]
    vec = [0.0] * k
    for net_id in graph.node_nets(node):
        cost = graph.net_cost(net_id)
        pins = graph.net(net_id)
        same_free = sum(1 for v in pins if sides[v] == s and not locked[v])
        same_locked = any(sides[v] == s and locked[v] for v in pins)
        other = [v for v in pins if sides[v] != s]
        other_free = sum(1 for v in other if not locked[v])
        other_locked = any(locked[v] for v in other)

        if not same_locked and 1 <= same_free <= k:
            vec[same_free - 1] += cost
        if not other:
            vec[0] -= cost
        elif not other_locked:
            level = other_free + 1
            if 2 <= level <= k:
                vec[level - 1] -= cost
    return tuple(vec)


# ---------------------------------------------------------------------------
# Rollback: prefix sums over a journal
# ---------------------------------------------------------------------------
def best_prefix(gains: Sequence[float]) -> Tuple[int, float]:
    """``(p, Gmax)`` — smallest prefix achieving the maximum prefix sum.

    Mirrors the pass-journal contract: ``(0, 0.0)`` for an empty
    sequence, ``(0, Gmax)`` when no prefix is strictly positive.  The
    comparison is exact (no tolerance), in lockstep with
    :meth:`repro.datastructures.PassJournal.best_prefix` — a tolerance
    would discard strictly-better later prefixes under fractional
    (weighted) net costs.
    """
    if not gains:
        return 0, 0.0
    best_p = 0
    best_sum = float("-inf")
    running = 0.0
    for i, g in enumerate(gains, start=1):
        running += g
        if running > best_sum:
            best_sum = running
            best_p = i
    if best_sum <= 0:
        return 0, best_sum
    return best_p, best_sum


def replay_moves(
    graph: Hypergraph, sides: Sequence[int], nodes: Sequence[int]
) -> Tuple[List[int], float, List[float]]:
    """Apply a move sequence to a copy of ``sides`` from first principles.

    Returns ``(final sides, final cut, per-move immediate gains)`` where
    each gain is the from-scratch cut delta of that move — the oracle for
    both journal records and prefix-sum rollback.
    """
    state = list(sides)
    cut = cut_cost(graph, state)
    gains: List[float] = []
    for node in nodes:
        state[node] = 1 - state[node]
        new_cut = cut_cost(graph, state)
        gains.append(cut - new_cut)
        cut = new_cut
    return state, cut, gains
