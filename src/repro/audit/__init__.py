"""Invariant auditing: runtime cross-checks for the incremental engines.

PROP's whole claim rests on incremental bookkeeping being exactly right —
probabilistic gain updates (paper Eqns. 2–6), lock discipline, cut
maintenance and prefix-sum rollback must agree with their brute-force
definitions on *every* move.  This package pins them down:

* :class:`AuditConfig` — opt-in knobs (check every Nth move, which
  invariant families to check); ``AuditConfig.from_env()`` reads the
  ``REPRO_AUDIT`` environment variable so any entry point (CLI, engine
  workers, tests) can be audited without code changes.
* :class:`InvariantViolation` — the structured error a failed check
  raises: invariant name, move index, node, expected/actual, and the
  run's repro seed.
* :class:`PassAuditor` — the runtime auditor the FM/LA/PROP pass loops
  call after every (Nth) move and after every rollback.
* :mod:`repro.audit.reference` — independent brute-force transcriptions
  of every quantity the incremental code tracks (the oracles).
* :mod:`repro.audit.differential` — reference implementations of whole
  FM/LA passes plus trajectory-equality harnesses over seeded grids.

Quick use::

    from repro.audit import AuditConfig
    from repro.core import PropPartitioner

    result = PropPartitioner().partition(graph, seed=3, audit=AuditConfig())

or, for any existing flow, ``REPRO_AUDIT=1 prop-partition ...``.
"""

from .config import AUDIT_ENV, AUDIT_EVERY_ENV, AuditConfig, resolve_audit
from .auditor import PassAuditor
from .violations import InvariantViolation

__all__ = [
    "AUDIT_ENV",
    "AUDIT_EVERY_ENV",
    "AuditConfig",
    "InvariantViolation",
    "PassAuditor",
    "resolve_audit",
]
