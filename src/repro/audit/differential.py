"""Differential oracles: incremental vs. reference whole-run trajectories.

The runtime auditor (:mod:`repro.audit.auditor`) checks invariants *inside*
one run.  This module attacks the same bookkeeping from the outside: it
re-implements the FM and LA algorithms with zero incremental state — every
gain recomputed from scratch before every move, selection and rollback
done over plain lists — and asserts that the real engines produce
**identical trajectories** (same moves in the same order, same per-move
gains, same kept prefixes, same final cuts) over seeded generator grids.

Two engines that share tie-breaking rules must agree move for move:

* ``run_fm(container="tree")``  vs  :func:`reference_fm_run`
* ``run_la(k)``                 vs  :func:`reference_la_run`
* PROP ``update_strategy="recompute"`` vs ``"cached"`` with in-pass
  probability re-derivation off (two independent incremental
  realizations of the same function; see
  :func:`differential_prop_strategies` for why the paper-default
  probability updates are excluded)
* any audited run vs its unaudited twin (auditing is read-only)

FM-bucket is excluded from move-level comparison: its LIFO bucket ties
differ from the tree container's highest-node-id rule by design.

Engines are imported lazily inside functions — this module sits below
:mod:`repro.core`/`repro.baselines` in the import graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..hypergraph import Hypergraph
from . import reference

#: One tentative move: (pass index, node, immediate cut gain).
TrajectoryMove = Tuple[int, int, float]


@dataclass
class Trajectory:
    """Everything observable about one run, move by move."""

    algorithm: str
    moves: List[TrajectoryMove] = field(default_factory=list)
    kept: List[int] = field(default_factory=list)  # kept prefix per pass
    pass_cuts: List[float] = field(default_factory=list)
    final_sides: List[int] = field(default_factory=list)
    final_cut: float = 0.0


@dataclass(frozen=True)
class Mismatch:
    """First point where two trajectories diverge."""

    kind: str  # "move" | "kept" | "pass-cuts" | "sides" | "cut" | "length"
    index: int
    left: object
    right: object

    def __str__(self) -> str:
        return (
            f"trajectory mismatch [{self.kind}] at {self.index}: "
            f"{self.left!r} != {self.right!r}"
        )


def compare_trajectories(
    a: Trajectory, b: Trajectory, tolerance: float = 1e-6
) -> Optional[Mismatch]:
    """The first divergence between two trajectories, or ``None``."""
    for i, (ma, mb) in enumerate(zip(a.moves, b.moves)):
        if ma[:2] != mb[:2] or abs(ma[2] - mb[2]) > tolerance:
            return Mismatch("move", i, ma, mb)
    if len(a.moves) != len(b.moves):
        return Mismatch("length", min(len(a.moves), len(b.moves)),
                        len(a.moves), len(b.moves))
    if a.kept != b.kept:
        return Mismatch("kept", 0, a.kept, b.kept)
    for i, (ca, cb) in enumerate(zip(a.pass_cuts, b.pass_cuts)):
        if abs(ca - cb) > tolerance:
            return Mismatch("pass-cuts", i, ca, cb)
    if a.final_sides != b.final_sides:
        diff = [i for i, (sa, sb) in
                enumerate(zip(a.final_sides, b.final_sides)) if sa != sb]
        return Mismatch("sides", diff[0] if diff else -1,
                        len(a.final_sides), len(b.final_sides))
    if abs(a.final_cut - b.final_cut) > tolerance:
        return Mismatch("cut", 0, a.final_cut, b.final_cut)
    return None


# ---------------------------------------------------------------------------
# Reference runs (no incremental state whatsoever)
# ---------------------------------------------------------------------------
def _reference_pick(
    graph: Hypergraph,
    sides: List[int],
    locked: List[bool],
    weights: List[float],
    balance,
    gain_of,
) -> Optional[int]:
    """Selection rule shared by the tree-container engines.

    Per side, the best free node is the one maximizing ``(gain, node)``;
    across sides, candidates are tried in descending ``(gain, side,
    node)`` order and the first whose move keeps balance wins.
    """
    candidates = []
    for side in (0, 1):
        best = None
        for v in range(graph.num_nodes):
            if locked[v] or sides[v] != side:
                continue
            key = (gain_of(v), v)
            if best is None or key > best:
                best = key
        if best is not None:
            candidates.append((best[0], side, best[1]))
    candidates.sort(reverse=True)
    for _, side, node in candidates:
        if balance.move_allowed(weights, side, graph.node_weight(node)):
            return node
    return None


def _reference_run(
    graph: Hypergraph,
    initial_sides: Sequence[int],
    balance,
    gain_key_fn,
    algorithm: str,
    max_passes: int,
    min_pass_gain: float = 1e-9,
) -> Trajectory:
    """Generic from-scratch pass loop for deterministic-gain engines.

    ``gain_key_fn(sides, locked, node)`` returns the selection key of a
    free node (a float for FM, a vector for LA); its first element (or
    itself) is *not* assumed to be the immediate gain — realized gains
    come from :func:`reference.replay_moves` semantics, i.e. from-scratch
    cut deltas.
    """
    traj = Trajectory(algorithm=algorithm)
    sides = list(initial_sides)
    passes = 0
    while passes < max_passes:
        locked = [False] * graph.num_nodes
        weights = list(reference.side_weights(graph, sides))
        pass_nodes: List[int] = []
        pass_gains: List[float] = []
        state = list(sides)
        cut = reference.cut_cost(graph, state)
        while True:
            node = _reference_pick(
                graph, state, locked, weights, balance,
                lambda v: gain_key_fn(state, locked, v),
            )
            if node is None:
                break
            s = state[node]
            state[node] = 1 - s
            locked[node] = True
            w = graph.node_weight(node)
            weights[s] -= w
            weights[1 - s] += w
            new_cut = reference.cut_cost(graph, state)
            pass_nodes.append(node)
            pass_gains.append(cut - new_cut)
            cut = new_cut
        p, gmax = reference.best_prefix(pass_gains)
        passes += 1
        for i, node in enumerate(pass_nodes):
            traj.moves.append((passes - 1, node, pass_gains[i]))
        traj.kept.append(p)
        sides, kept_cut, _ = reference.replay_moves(
            graph, sides, pass_nodes[:p]
        )
        traj.pass_cuts.append(kept_cut)
        if gmax <= min_pass_gain or p == 0:
            break
    traj.final_sides = sides
    traj.final_cut = reference.cut_cost(graph, sides)
    return traj


def reference_fm_run(
    graph: Hypergraph,
    initial_sides: Sequence[int],
    balance,
    max_passes: int = 100,
) -> Trajectory:
    """Brute-force FM (tree tie-breaking): gains from Eqn. (1) every move."""
    return _reference_run(
        graph,
        initial_sides,
        balance,
        lambda sides, locked, v: reference.immediate_gain(graph, sides, v),
        algorithm="FM-reference",
        max_passes=max_passes,
    )


def reference_la_run(
    graph: Hypergraph,
    initial_sides: Sequence[int],
    balance,
    k: int = 2,
    max_passes: int = 100,
) -> Trajectory:
    """Brute-force LA-k: every vector recomputed before every move."""
    return _reference_run(
        graph,
        initial_sides,
        balance,
        lambda sides, locked, v: reference.la_gain_vector(
            graph, sides, locked, v, k
        ),
        algorithm=f"LA-{k}-reference",
        max_passes=max_passes,
    )


# ---------------------------------------------------------------------------
# Incremental-engine trajectory capture
# ---------------------------------------------------------------------------
def _capture(run_fn, graph, initial_sides, balance, algorithm, **kwargs):
    moves: List[TrajectoryMove] = []

    def observer(pass_index, node, selection_gain, immediate):
        moves.append((pass_index, int(node), float(immediate)))

    result = run_fn(
        graph, initial_sides, balance, observer=observer, **kwargs
    )
    traj = Trajectory(algorithm=algorithm, moves=moves)
    traj.pass_cuts = list(result.pass_cuts)
    traj.final_sides = list(result.sides)
    traj.final_cut = result.cut
    traj.kept = _kept_from_moves(graph, initial_sides, moves)
    # A terminal pass in which no move was balance-allowed produces no
    # observer calls but still counts as a pass (kept prefix 0).
    while len(traj.kept) < len(traj.pass_cuts):
        traj.kept.append(0)
    return traj


def _kept_from_moves(
    graph: Hypergraph,
    initial_sides: Sequence[int],
    moves: Sequence[TrajectoryMove],
) -> List[int]:
    """Per-pass kept-prefix lengths implied by the recorded gains."""
    kept: List[int] = []
    num_passes = (max(m[0] for m in moves) + 1) if moves else 0
    for pi in range(num_passes):
        gains = [m[2] for m in moves if m[0] == pi]
        p, _ = reference.best_prefix(gains)
        kept.append(p)
    return kept


def fm_trajectory(
    graph: Hypergraph,
    initial_sides: Sequence[int],
    balance,
    max_passes: int = 100,
) -> Trajectory:
    """Trajectory of the incremental FM-tree engine."""
    from ..baselines.fm import run_fm

    return _capture(
        run_fm, graph, initial_sides, balance, "FM-tree",
        container="tree", max_passes=max_passes,
    )


def la_trajectory(
    graph: Hypergraph,
    initial_sides: Sequence[int],
    balance,
    k: int = 2,
    max_passes: int = 100,
) -> Trajectory:
    """Trajectory of the incremental LA-k engine."""
    from ..baselines.la import run_la

    return _capture(
        run_la, graph, initial_sides, balance, f"LA-{k}",
        k=k, max_passes=max_passes,
    )


def prop_trajectory(
    graph: Hypergraph,
    initial_sides: Sequence[int],
    balance,
    config=None,
) -> Trajectory:
    """Trajectory of PROP under a given config."""
    from ..core.engine import run_prop

    return _capture(
        run_prop, graph, initial_sides, balance,
        "PROP", config=config,
    )


# ---------------------------------------------------------------------------
# Seeded grids
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one incremental-vs-reference comparison."""

    label: str
    seed: int
    num_nodes: int
    num_moves: int
    mismatch: Optional[Mismatch]

    @property
    def ok(self) -> bool:
        return self.mismatch is None


def differential_fm(graph, initial_sides, balance, seed=0) -> DifferentialReport:
    """FM-tree incremental vs. brute-force reference, one instance."""
    inc = fm_trajectory(graph, initial_sides, balance)
    ref = reference_fm_run(graph, initial_sides, balance)
    return DifferentialReport(
        label="fm-tree", seed=seed, num_nodes=graph.num_nodes,
        num_moves=len(inc.moves), mismatch=compare_trajectories(inc, ref),
    )


def differential_la(graph, initial_sides, balance, k=2, seed=0) -> DifferentialReport:
    """LA-k incremental vs. brute-force reference, one instance."""
    inc = la_trajectory(graph, initial_sides, balance, k=k)
    ref = reference_la_run(graph, initial_sides, balance, k=k)
    return DifferentialReport(
        label=f"la-{k}", seed=seed, num_nodes=graph.num_nodes,
        num_moves=len(inc.moves), mismatch=compare_trajectories(inc, ref),
    )


def differential_prop_strategies(
    graph, initial_sides, balance, seed=0
) -> DifferentialReport:
    """PROP "recompute" vs. "cached" update strategies, one instance.

    With in-pass probability re-derivation disabled the two strategies
    are independent realizations of the same function — probabilities
    only change via locking, so the cached Eqn. 5/6 contribution deltas
    must reproduce the recomputed gains exactly, and the trajectories
    must be identical; a drift means one of the delta rules is wrong.

    (Under ``update_neighbor_probabilities=True`` — the paper default —
    the strategies legitimately diverge: each feeds the probability
    function its own flavour of gain staleness, so a neighbor's new
    probability, and hence the subsequent trajectory, differs by design.
    That regime is covered by the runtime auditor instead, which checks
    each strategy against the Eqn. 2–6 oracle under its *own*
    probabilities.)
    """
    from ..core.config import PropConfig

    a = prop_trajectory(
        graph, initial_sides, balance,
        config=PropConfig(
            update_strategy="recompute",
            update_neighbor_probabilities=False,
        ),
    )
    b = prop_trajectory(
        graph, initial_sides, balance,
        config=PropConfig(
            update_strategy="cached",
            update_neighbor_probabilities=False,
        ),
    )
    return DifferentialReport(
        label="prop-recompute-vs-cached", seed=seed,
        num_nodes=graph.num_nodes, num_moves=len(a.moves),
        mismatch=compare_trajectories(a, b),
    )


def run_differential_grid(
    seeds: Sequence[int],
    *,
    max_nodes: int = 14,
    balance_spec: str = "50-50",
    checks: Sequence[str] = ("fm", "la2", "la3", "prop"),
) -> List[DifferentialReport]:
    """Run every requested differential over a seeded instance grid.

    Instances come from :func:`repro.testing.random_instance` with a
    seeded random balanced start, so any failure reproduces from
    ``(seed, max_nodes)`` alone.
    """
    from ..partition import BalanceConstraint, random_balanced_sides
    from ..testing import random_instance

    reports: List[DifferentialReport] = []
    for seed in seeds:
        graph = random_instance(seed, max_nodes=max_nodes)
        sides = random_balanced_sides(graph, seed)
        if balance_spec == "50-50":
            balance = BalanceConstraint.fifty_fifty(graph)
        else:
            lo, hi = balance_spec.split("-")
            balance = BalanceConstraint.from_fractions(
                graph, float(lo) / 100.0, float(hi) / 100.0
            )
        if "fm" in checks:
            reports.append(differential_fm(graph, sides, balance, seed=seed))
        if "la2" in checks:
            reports.append(differential_la(graph, sides, balance, k=2, seed=seed))
        if "la3" in checks:
            reports.append(differential_la(graph, sides, balance, k=3, seed=seed))
        if "prop" in checks:
            reports.append(
                differential_prop_strategies(graph, sides, balance, seed=seed)
            )
    return reports
