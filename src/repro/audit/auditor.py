"""The runtime pass auditor.

A :class:`PassAuditor` rides along inside an FM/LA/PROP pass loop.  The
engine tells it when a pass starts, after every tentative move, and after
the prefix rollback; the auditor cross-checks the engine's incremental
state against the brute-force oracles in :mod:`repro.audit.reference` and
raises :class:`~repro.audit.violations.InvariantViolation` on the first
disagreement.  All checks are read-only — an audited run makes exactly
the same moves as an unaudited one.

Invariant families (see :class:`~repro.audit.config.AuditConfig`):

* **structure** — per-net pin counts, locked-pin counts, side weights,
  the tracked cut cost, and the running journal cut;
* **gains** — FM container gains vs Eqn. (1), LA vectors vs the
  Krishnamurthy rules, PROP incremental gains vs Eqns. (2)–(6), and
  container membership (exactly the free nodes, on the right side);
* **probabilities** — PROP lock discipline (locked ⇒ p = 0) and range;
* **balance** — a pass that starts inside the window stays inside it;
* **rollback** — journal gains, the maximum-prefix-sum decision, and the
  post-rollback state all match an independent replay.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from ..hypergraph import Hypergraph
from . import reference
from .config import AuditConfig
from .violations import InvariantViolation


class PassAuditor:
    """Cross-checks one run's incremental state against brute force.

    One auditor instance audits one run (it tracks pass/move indices and
    accumulates counters); create a fresh one per run.
    """

    def __init__(
        self,
        graph: Hypergraph,
        balance,
        config: Optional[AuditConfig] = None,
        *,
        algorithm: str = "",
        seed: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.balance = balance
        self.config = config or AuditConfig()
        self.algorithm = algorithm
        self.seed = seed
        self.passes_audited = 0
        self.moves_seen = 0
        self.moves_audited = 0
        self.checks_run = 0
        #: Wall-clock seconds spent inside audit hooks.  The engines
        #: subtract this from their elapsed time so ``runtime_seconds``
        #: measures the algorithm, not the auditing riding along.
        self.seconds = 0.0
        self._pass_index = -1
        self._move_index = 0
        self._pre_pass_sides: List[int] = []
        self._running_cut = 0.0
        self._started_balanced = False

    # ------------------------------------------------------------------
    # Pass lifecycle hooks (called by the engines)
    # ------------------------------------------------------------------
    def start_pass(self, partition) -> None:
        """Snapshot pre-pass state and verify the starting bookkeeping."""
        t0 = time.perf_counter()
        try:
            self._pass_index += 1
            self._move_index = 0
            self.passes_audited += 1
            self._pre_pass_sides = partition.sides
            self._running_cut = partition.cut_cost
            weights = reference.side_weights(self.graph, self._pre_pass_sides)
            self._started_balanced = self.balance is not None and bool(
                self.balance.is_satisfied(weights)
            )
            if self.config.check_structure:
                self._check_structure(partition, node=None)
        finally:
            self.seconds += time.perf_counter() - t0

    def after_move(self, partition, node: int, reported_gain: float) -> bool:
        """Account for one tentative move; deep-check every Nth.

        Returns True when this move was audited — the engine then calls
        the relevant gain/probability checks with its own containers.
        """
        t0 = time.perf_counter()
        try:
            self.moves_seen += 1
            self._move_index += 1
            self._running_cut -= reported_gain
            if self._move_index % self.config.every != 0:
                return False
            self.moves_audited += 1
            if self.config.check_structure:
                self._check_structure(partition, node=node)
            if self.config.check_balance and self._started_balanced:
                self._check_balance(partition, node)
            return True
        finally:
            self.seconds += time.perf_counter() - t0

    def after_rollback(self, partition, journal) -> None:
        """Verify journal gains, the prefix decision, and the rollback."""
        if not self.config.check_rollback:
            return
        t0 = time.perf_counter()
        try:
            self._after_rollback_checks(partition, journal)
        finally:
            self.seconds += time.perf_counter() - t0

    def _after_rollback_checks(self, partition, journal) -> None:
        tol = self.config.tolerance
        moves = list(journal.moves)
        nodes = [record.node for record in moves]
        final_sides, _, ref_gains = reference.replay_moves(
            self.graph, self._pre_pass_sides, nodes
        )
        del final_sides  # full-sequence replay; only the gains matter here
        sides = list(self._pre_pass_sides)
        for i, record in enumerate(moves):
            self.checks_run += 1
            if record.from_side != sides[record.node]:
                raise self._violation(
                    "journal-from-side",
                    sides[record.node],
                    record.from_side,
                    move_index=i,
                    node=record.node,
                )
            if abs(record.immediate_gain - ref_gains[i]) > tol:
                raise self._violation(
                    "journal-gain",
                    ref_gains[i],
                    record.immediate_gain,
                    move_index=i,
                    node=record.node,
                )
            sides[record.node] = 1 - sides[record.node]

        ref_p, ref_gmax = reference.best_prefix(ref_gains)
        p, gmax = journal.best_prefix()
        self.checks_run += 1
        if p != ref_p or abs(gmax - ref_gmax) > tol:
            raise self._violation(
                "rollback-prefix", (ref_p, ref_gmax), (p, gmax)
            )

        kept_sides, kept_cut, _ = reference.replay_moves(
            self.graph, self._pre_pass_sides, nodes[:ref_p]
        )
        actual_sides = partition.sides
        self.checks_run += 1
        if kept_sides != actual_sides:
            diff = [
                v
                for v in range(self.graph.num_nodes)
                if kept_sides[v] != actual_sides[v]
            ]
            raise self._violation(
                "rollback-state",
                f"{len(diff)} nodes match replay",
                f"nodes {diff[:10]} differ",
                detail=f"kept prefix {ref_p} of {len(nodes)} moves",
            )
        self.checks_run += 1
        if abs(kept_cut - partition.cut_cost) > tol:
            raise self._violation(
                "rollback-cut", kept_cut, partition.cut_cost
            )

    def after_batch(
        self, partition, nodes: Sequence[int], gains: Sequence[float]
    ) -> bool:
        """Account for one applied sub-round batch; deep-check on the
        ``every`` cadence.

        The sub-round engines commit moves in batches, so the per-move
        :meth:`after_move` hook (whose structure check compares the
        running journal cut against the *current* partition) cannot run
        mid-batch — the partition is only consistent at batch
        boundaries.  This hook advances the same counters by the whole
        batch and deep-checks the post-batch state whenever the batch
        crossed an ``every`` boundary.  Returns True when it audited.
        """
        t0 = time.perf_counter()
        try:
            self.moves_seen += len(nodes)
            before = self._move_index
            self._move_index += len(nodes)
            for g in gains:
                self._running_cut -= g
            if before // self.config.every == self._move_index // self.config.every:
                return False
            self.moves_audited += 1
            if self.config.check_structure:
                self._check_structure(partition, node=None)
            if self.config.check_balance and self._started_balanced:
                self._check_balance(partition, nodes[-1] if nodes else None)
            return True
        finally:
            self.seconds += time.perf_counter() - t0

    def check_subround_batch(
        self, partition, pre_sides: Sequence[int], batch: Sequence[int],
        gains: Sequence[float],
    ) -> None:
        """Independent scalar replay of one sub-round batch.

        The sub-round kernel commits a whole batch with precomputed
        gains (:meth:`repro.partition.Partition.apply_batch`), justified
        by net-disjointness.  This check re-derives everything the
        shortcut relies on: the batch shares no net between its nodes,
        and a one-move-at-a-time replay from the pre-batch sides
        (``reference.replay_moves``) realizes exactly the reported gains
        and lands exactly on the engine's post-batch state and cut.
        Called once per batch, after the engine's ``after_move`` calls.
        """
        if not self.config.check_gains:
            return
        t0 = time.perf_counter()
        try:
            self._check_subround_batch(partition, pre_sides, batch, gains)
        finally:
            self.seconds += time.perf_counter() - t0

    def _check_subround_batch(
        self, partition, pre_sides, batch, gains
    ) -> None:
        tol = self.config.tolerance
        seen_nets = set()
        for v in batch:
            for net_id in self.graph.node_nets(v):
                self.checks_run += 1
                if net_id in seen_nets:
                    raise self._violation(
                        "subround-net-disjoint",
                        f"net {net_id} claimed by one batch move",
                        f"also touched by node {v}",
                        node=v,
                    )
                seen_nets.add(net_id)
        final_sides, final_cut, ref_gains = reference.replay_moves(
            self.graph, list(pre_sides), list(batch)
        )
        for i, v in enumerate(batch):
            self.checks_run += 1
            if abs(gains[i] - ref_gains[i]) > tol:
                raise self._violation(
                    "subround-batch-gain", ref_gains[i], gains[i], node=v
                )
        actual_sides = partition.sides
        self.checks_run += 1
        if final_sides != actual_sides:
            diff = [
                v
                for v in range(self.graph.num_nodes)
                if final_sides[v] != actual_sides[v]
            ]
            raise self._violation(
                "subround-batch-state",
                "batched state equals scalar replay",
                f"nodes {diff[:10]} differ",
                detail=f"batch of {len(batch)} moves",
            )
        self.checks_run += 1
        if abs(final_cut - partition.cut_cost) > tol:
            raise self._violation(
                "subround-batch-cut", final_cut, partition.cut_cost
            )

    # ------------------------------------------------------------------
    # Structure / balance
    # ------------------------------------------------------------------
    def _check_structure(self, partition, node: Optional[int]) -> None:
        graph = self.graph
        sides = partition.sides
        locked = [partition.is_locked(v) for v in range(graph.num_nodes)]
        tol = self.config.tolerance
        for net_id in range(graph.num_nets):
            c0, c1 = reference.pin_counts(graph, sides, net_id)
            self.checks_run += 1
            if (partition.count(net_id, 0), partition.count(net_id, 1)) != (c0, c1):
                raise self._violation(
                    "pin-counts",
                    (c0, c1),
                    (partition.count(net_id, 0), partition.count(net_id, 1)),
                    node=node,
                    detail=f"net {net_id}",
                )
            l0, l1 = reference.locked_pin_counts(graph, sides, locked, net_id)
            if (
                partition.locked_count(net_id, 0),
                partition.locked_count(net_id, 1),
            ) != (l0, l1):
                raise self._violation(
                    "locked-pin-counts",
                    (l0, l1),
                    (
                        partition.locked_count(net_id, 0),
                        partition.locked_count(net_id, 1),
                    ),
                    node=node,
                    detail=f"net {net_id}",
                )
        ref_cut = reference.cut_cost(graph, sides)
        self.checks_run += 1
        if abs(ref_cut - partition.cut_cost) > tol:
            raise self._violation(
                "cut-cost", ref_cut, partition.cut_cost, node=node
            )
        self.checks_run += 1
        if abs(ref_cut - self._running_cut) > tol:
            raise self._violation(
                "journal-cut",
                ref_cut,
                self._running_cut,
                node=node,
                detail="initial cut minus journaled immediate gains",
            )
        ref_w = reference.side_weights(graph, sides)
        self.checks_run += 1
        if any(
            abs(a - b) > tol for a, b in zip(ref_w, partition.side_weights)
        ):
            raise self._violation(
                "side-weights", ref_w, partition.side_weights, node=node
            )

    def _check_balance(self, partition, node: int) -> None:
        weights = reference.side_weights(self.graph, partition.sides)
        self.checks_run += 1
        if not self.balance.is_satisfied(weights):
            raise self._violation(
                "balance",
                f"side weights within {self.balance.describe()}",
                weights,
                node=node,
                detail="pass started balanced but left the window",
            )

    # ------------------------------------------------------------------
    # Gain checks (engine-specific; called only on audited moves)
    # ------------------------------------------------------------------
    def check_containers(self, partition, containers) -> None:
        """Containers hold exactly the free nodes, each on its side."""
        t0 = time.perf_counter()
        try:
            self._check_containers(partition, containers)
        finally:
            self.seconds += time.perf_counter() - t0

    def _check_containers(self, partition, containers) -> None:
        if not self.config.check_gains:
            return
        for v in range(self.graph.num_nodes):
            self.checks_run += 1
            if partition.is_locked(v):
                if v in containers[0] or v in containers[1]:
                    raise self._violation(
                        "container-membership",
                        "locked node absent from containers",
                        "present",
                        node=v,
                        move_index=self._move_index,
                    )
            else:
                s = partition.side(v)
                if v not in containers[s] or v in containers[1 - s]:
                    raise self._violation(
                        "container-membership",
                        f"free node in side-{s} container only",
                        (v in containers[0], v in containers[1]),
                        node=v,
                        move_index=self._move_index,
                    )

    def check_fm_gains(self, partition, containers) -> None:
        """Every free node's container gain equals Eqn. (1) from scratch."""
        t0 = time.perf_counter()
        try:
            self._check_fm_gains(partition, containers)
        finally:
            self.seconds += time.perf_counter() - t0

    def _check_fm_gains(self, partition, containers) -> None:
        if not self.config.check_gains:
            return
        self._check_containers(partition, containers)
        sides = partition.sides
        tol = self.config.tolerance
        for v in self._gain_sweep_nodes(partition):
            ref = reference.immediate_gain(self.graph, sides, v)
            got = containers[partition.side(v)].gain_of(v)
            self.checks_run += 1
            if abs(float(got) - ref) > tol:
                raise self._violation(
                    "fm-gain",
                    ref,
                    got,
                    node=v,
                    move_index=self._move_index,
                )

    def check_la_vectors(self, partition, containers, k: int) -> None:
        """Every free node's stored LA vector matches the definition."""
        t0 = time.perf_counter()
        try:
            self._check_la_vectors(partition, containers, k)
        finally:
            self.seconds += time.perf_counter() - t0

    def _check_la_vectors(self, partition, containers, k: int) -> None:
        if not self.config.check_gains:
            return
        self._check_containers(partition, containers)
        sides = partition.sides
        locked = [partition.is_locked(v) for v in range(self.graph.num_nodes)]
        tol = self.config.tolerance
        for v in self._gain_sweep_nodes(partition):
            ref = reference.la_gain_vector(self.graph, sides, locked, v, k)
            got = tuple(containers[partition.side(v)].gain_of(v))
            self.checks_run += 1
            if len(got) != len(ref) or any(
                abs(a - b) > tol for a, b in zip(got, ref)
            ):
                raise self._violation(
                    "la-gain-vector",
                    ref,
                    got,
                    node=v,
                    move_index=self._move_index,
                )

    def check_prop_gains(self, partition, engine) -> None:
        """Incremental Eqn. 2–6 evaluation matches the direct transcription.

        PROP's containers intentionally hold *stale* gains (only neighbors
        and the top-k are refreshed — Sec. 3.4), so the exact invariant is
        the gain computation itself: for every free node, the incremental
        ``node_gain`` must equal the brute-force Eqns. (2)–(6) under the
        current probabilities.
        """
        t0 = time.perf_counter()
        try:
            self._check_prop_gains(partition, engine)
        finally:
            self.seconds += time.perf_counter() - t0

    def _check_prop_gains(self, partition, engine) -> None:
        if self.config.check_probabilities:
            self._check_probabilities(partition, engine)
        if not self.config.check_gains:
            return
        sides = partition.sides
        locked = [partition.is_locked(v) for v in range(self.graph.num_nodes)]
        tol = self.config.tolerance
        for v in self._gain_sweep_nodes(partition):
            ref = reference.prop_gain(self.graph, sides, locked, engine.p, v)
            got = engine.node_gain(v)
            self.checks_run += 1
            if abs(got - ref) > tol:
                raise self._violation(
                    "prop-gain",
                    ref,
                    got,
                    node=v,
                    move_index=self._move_index,
                )

    def check_prop_kernel(self, partition, engine) -> None:
        """The numpy backend's per-net product cache matches brute force.

        No-op for engines without a product cache (the python backend).
        Every *valid* cache entry must equal the sequential left-to-right
        product of its side's pin probabilities **exactly** — the kernels
        promise bit-identity, so any tolerance here would hide the very
        drift the differential contract forbids.
        """
        snapshot = getattr(engine, "product_cache_snapshot", None)
        if snapshot is None:
            return
        t0 = time.perf_counter()
        try:
            self._check_prop_kernel(partition, engine, snapshot)
        finally:
            self.seconds += time.perf_counter() - t0

    def _check_prop_kernel(self, partition, engine, snapshot) -> None:
        if not self.config.check_gains:
            return
        graph = self.graph
        p = engine.p
        for net_id, prod0, prod1 in snapshot():
            ref0 = 1.0
            ref1 = 1.0
            for v in graph.net(net_id):
                if partition.side(v) == 0:
                    ref0 *= p[v]
                else:
                    ref1 *= p[v]
            self.checks_run += 1
            if prod0 != ref0 or prod1 != ref1:
                raise self._violation(
                    "kernel-product-cache",
                    (ref0, ref1),
                    (prod0, prod1),
                    move_index=self._move_index,
                    detail=f"net {net_id} cached side products drifted",
                )

    def _check_probabilities(self, partition, engine) -> None:
        for v in range(self.graph.num_nodes):
            p = engine.p[v]
            self.checks_run += 1
            if partition.is_locked(v):
                if p != 0.0:
                    raise self._violation(
                        "lock-probability",
                        0.0,
                        p,
                        node=v,
                        move_index=self._move_index,
                        detail="locked nodes must have p = 0",
                    )
            elif not 0.0 <= p <= 1.0:
                raise self._violation(
                    "probability-range",
                    "[0, 1]",
                    p,
                    node=v,
                    move_index=self._move_index,
                )

    def _gain_sweep_nodes(self, partition) -> List[int]:
        """Free nodes to sweep this move (all, or a rotating sample)."""
        free = [
            v
            for v in range(self.graph.num_nodes)
            if not partition.is_locked(v)
        ]
        cap = self.config.max_gain_nodes
        if not cap or len(free) <= cap:
            return free
        offset = self._move_index % len(free)
        rotated = free[offset:] + free[:offset]
        return rotated[:cap]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Counter snapshot, merged into ``BipartitionResult.stats``."""
        return {
            "audited": 1.0,
            "audit_passes": float(self.passes_audited),
            "audit_moves": float(self.moves_audited),
            "audit_checks": float(self.checks_run),
            "audit_seconds": self.seconds,
        }

    def _violation(
        self,
        invariant: str,
        expected,
        actual,
        *,
        move_index: Optional[int] = None,
        node: Optional[int] = None,
        detail: str = "",
    ) -> InvariantViolation:
        return InvariantViolation(
            invariant,
            expected,
            actual,
            algorithm=self.algorithm,
            seed=self.seed,
            pass_index=self._pass_index,
            move_index=self._move_index if move_index is None else move_index,
            node=node,
            detail=detail,
        )
