"""The structured error raised when an audited invariant breaks.

An :class:`InvariantViolation` pins down *where* the incremental state
diverged from its brute-force definition: which invariant, at which move
of which pass, for which node, with the expected and actual values and
the seed that reproduces the run.  It subclasses ``AssertionError`` so
generic "treat bookkeeping drift as a test failure" handling applies.
"""

from __future__ import annotations

from typing import Any, Optional


class InvariantViolation(AssertionError):
    """Incremental state disagreed with its from-scratch recomputation.

    Attributes
    ----------
    invariant:
        Short name of the broken invariant (``"cut-cost"``,
        ``"fm-gain"``, ``"prop-gain"``, ``"lock-probability"``,
        ``"rollback-prefix"``, ...).
    expected:
        The brute-force (reference) value.
    actual:
        The value the incremental code tracked.
    algorithm / seed:
        Identity of the audited run; ``seed`` replays it exactly
        (every partitioner here is deterministic given its seed).
    pass_index / move_index:
        Position inside the run: ``move_index`` counts tentative moves
        within the pass (0-based), ``None`` for pass-level checks.
    node:
        The node whose state diverged, when the check is per-node.
    detail:
        Free-form context (net id, container side, ...).
    """

    def __init__(
        self,
        invariant: str,
        expected: Any,
        actual: Any,
        *,
        algorithm: str = "",
        seed: Optional[int] = None,
        pass_index: Optional[int] = None,
        move_index: Optional[int] = None,
        node: Optional[int] = None,
        detail: str = "",
    ) -> None:
        self.invariant = invariant
        self.expected = expected
        self.actual = actual
        self.algorithm = algorithm
        self.seed = seed
        self.pass_index = pass_index
        self.move_index = move_index
        self.node = node
        self.detail = detail
        super().__init__(self._format())

    def _format(self) -> str:
        where = []
        if self.algorithm:
            where.append(self.algorithm)
        if self.pass_index is not None:
            where.append(f"pass {self.pass_index}")
        if self.move_index is not None:
            where.append(f"move {self.move_index}")
        if self.node is not None:
            where.append(f"node {self.node}")
        location = ", ".join(where) or "unknown location"
        msg = (
            f"invariant {self.invariant!r} violated ({location}): "
            f"expected {self.expected!r}, got {self.actual!r}"
        )
        if self.detail:
            msg += f" [{self.detail}]"
        if self.seed is not None:
            msg += f" — repro seed {self.seed}"
        return msg

    def as_dict(self) -> dict:
        """JSON-friendly rendering (for logs and regression fixtures)."""
        return {
            "invariant": self.invariant,
            "expected": repr(self.expected),
            "actual": repr(self.actual),
            "algorithm": self.algorithm,
            "seed": self.seed,
            "pass_index": self.pass_index,
            "move_index": self.move_index,
            "node": self.node,
            "detail": self.detail,
        }
