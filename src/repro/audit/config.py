"""Audit configuration and environment-variable resolution.

Auditing is opt-in and strictly read-only: an audited run makes exactly
the same moves (and returns bit-identical cuts) as an unaudited one, it
just cross-checks the incremental state against brute-force recomputation
along the way.  The cost is roughly O(n·m) per audited move, so
``every`` exists to sample every Nth move on larger instances.

Environment contract (``REPRO_AUDIT``):

* unset, empty, or ``0`` — auditing off (the default);
* ``1`` / ``true`` / ``yes`` / ``on`` — audit every move;
* an integer N > 1 — audit every Nth move;
* ``REPRO_AUDIT_EVERY=N`` — overrides the sampling stride.

Because worker processes inherit the environment, ``REPRO_AUDIT=1``
audits engine-parallel runs too.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Any, Optional

#: Master switch environment variable.
AUDIT_ENV = "REPRO_AUDIT"

#: Optional stride override (audit every Nth move).
AUDIT_EVERY_ENV = "REPRO_AUDIT_EVERY"

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("", "0", "false", "no", "off")


@dataclass(frozen=True)
class AuditConfig:
    """All knobs of the runtime invariant auditor.

    Attributes
    ----------
    every:
        Audit every Nth tentative move (1 = every move).  Structural
        checks at pass start and the rollback check at pass end always
        run regardless of the stride.
    check_structure:
        Cross-check pin counts, locked-pin counts, side weights, the
        tracked cut cost, and the running journal cut against
        from-scratch recomputation.
    check_gains:
        Cross-check gain bookkeeping: FM container gains vs Eqn. (1),
        LA vectors vs the Krishnamurthy rules, PROP incremental gains
        vs a direct Eqn. 2–6 transcription.
    check_probabilities:
        PROP only — verify lock discipline (locked ⇒ p = 0) and that
        every probability lies in [0, 1].
    check_balance:
        Verify a pass that started inside the balance window never
        leaves it.
    check_rollback:
        At pass end, independently recompute the maximum-gain prefix
        and replay it from the pre-pass snapshot, comparing sides and
        cut with the post-rollback state.
    tolerance:
        Absolute tolerance for float comparisons (gains and cuts are
        sums of net costs; incremental and reference code multiply in
        the same order, so drift is tiny).
    max_gain_nodes:
        Cap on the number of nodes whose gains are swept per audited
        move (0 = no cap).  The sweep is the dominant cost; capping it
        keeps full-audit runs tractable on large instances while still
        sampling every move.
    """

    every: int = 1
    check_structure: bool = True
    check_gains: bool = True
    check_probabilities: bool = True
    check_balance: bool = True
    check_rollback: bool = True
    tolerance: float = 1e-6
    max_gain_nodes: int = 0

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {self.tolerance}")
        if self.max_gain_nodes < 0:
            raise ValueError(
                f"max_gain_nodes must be >= 0, got {self.max_gain_nodes}"
            )

    def with_overrides(self, **kwargs: Any) -> "AuditConfig":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **kwargs)

    @classmethod
    def from_env(cls, environ: Optional[dict] = None) -> Optional["AuditConfig"]:
        """The audit config requested by ``REPRO_AUDIT``, or ``None``.

        Raises ``ValueError`` for unparseable values — a typo'd audit
        request silently running unaudited would defeat the point.
        """
        env = os.environ if environ is None else environ
        raw = str(env.get(AUDIT_ENV, "")).strip().lower()
        if raw in _FALSY:
            return None
        if raw in _TRUTHY:
            every = 1
        else:
            try:
                every = int(raw)
            except ValueError:
                raise ValueError(
                    f"{AUDIT_ENV}={raw!r} is not 0/1/true/false or an integer stride"
                ) from None
            if every < 1:
                return None
        stride = str(env.get(AUDIT_EVERY_ENV, "")).strip()
        if stride:
            try:
                every = max(1, int(stride))
            except ValueError:
                raise ValueError(
                    f"{AUDIT_EVERY_ENV}={stride!r} is not an integer"
                ) from None
        return cls(every=every)


def resolve_audit(
    audit: Optional[AuditConfig], environ: Optional[dict] = None
) -> Optional[AuditConfig]:
    """An explicit config wins; ``None`` falls back to the environment."""
    if audit is not None:
        return audit
    return AuditConfig.from_env(environ)
