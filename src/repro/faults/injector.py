"""The injector: turns a :class:`~repro.faults.plan.FaultPlan` into
actual failures at well-defined sites.

Sites (all no-ops when the kind is unarmed):

* :meth:`FaultInjector.on_unit_start` — called by
  :func:`repro.engine.workers.execute_unit` before the partitioning
  call.  ``crash`` and ``hang`` fire only inside pool worker processes
  (detected via :func:`multiprocessing.parent_process`), so the
  engine's inline fallback is always fault-free for them and every
  batch can complete; ``transient``/``permanent`` fire anywhere.
* :meth:`FaultInjector.on_pool_create` — called by the engine before
  ``ProcessPoolExecutor(...)``; fires ``pool`` as an ``OSError``.
* :meth:`FaultInjector.on_cache_read` / :meth:`on_cache_write` —
  called by :class:`repro.engine.cache.ResultCache`; fire ``slow_io``
  (sleep) and ``unwritable`` (``OSError``).
* :meth:`FaultInjector.corruption_mode` — consulted by the cache right
  after an atomic record write; returns ``"corrupt"``/``"truncate"``
  when the freshly written bytes should be damaged.

Determinism: whether a fault fires for a target is
``sha256(plan.seed | kind | target key)`` mapped to ``[0, 1)`` and
compared against the spec's rate; the attempt number only gates the
``times`` budget.  A selected target therefore fails on exactly the
same attempts in every run of the same plan, in every process.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from typing import List, Optional

from .errors import PermanentFaultError, TransientFaultError
from .plan import FAULTS_ENV, FaultPlan

#: Exit status of an injected worker crash (shows up in pool diagnostics).
CRASH_EXIT_CODE = 23


def deterministic_fraction(key: str, seed: int = 0) -> float:
    """Map ``(seed, key)`` to a stable fraction in ``[0, 1)``.

    Shared by fault-firing decisions and the engine's backoff jitter:
    both need randomness that is identical across processes and runs.
    """
    digest = hashlib.sha256(f"{seed}|{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class FaultInjector:
    """Stateless fault decisions plus a per-process firing log.

    ``fired`` records ``"kind@target"`` strings for every fault this
    process fired — test assertions and post-mortem debugging.  (Pool
    workers keep their own logs; only same-process fires are visible.)
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.fired: List[str] = []
        self._pool_attempts = 0

    # ------------------------------------------------------------------
    # Decision core
    # ------------------------------------------------------------------
    def _fires(self, kind: str, key: str, attempt: int = 0) -> bool:
        spec = self.plan.spec_for(kind)
        if spec is None or spec.rate <= 0.0:
            return False
        if spec.times is not None and attempt >= spec.times:
            return False
        if spec.rate < 1.0:
            frac = deterministic_fraction(f"{kind}|{key}", self.plan.seed)
            if frac >= spec.rate:
                return False
        self.fired.append(f"{kind}@{key}#{attempt}")
        return True

    @staticmethod
    def _unit_target(unit) -> str:
        name = getattr(unit.partitioner, "name", type(unit.partitioner).__name__)
        return f"{name}|{unit.seed}|{unit.tag}"

    # ------------------------------------------------------------------
    # Worker site
    # ------------------------------------------------------------------
    def on_unit_start(self, unit, attempt: int = 0) -> None:
        """Crash/hang (pool workers only) or raise an injected exception."""
        target = self._unit_target(unit)
        in_pool_worker = multiprocessing.parent_process() is not None
        if in_pool_worker:
            if self._fires("crash", target, attempt):
                os._exit(CRASH_EXIT_CODE)
            if self._fires("hang", target, attempt):
                time.sleep(self.plan.hang_seconds)
        if self._fires("transient", target, attempt):
            raise TransientFaultError(
                f"injected transient fault (unit {target}, attempt {attempt})"
            )
        if self._fires("permanent", target, attempt):
            raise PermanentFaultError(
                f"injected permanent fault (unit {target})"
            )

    def on_subround_worker(self, worker_id: int, round_id: int) -> None:
        """Crash/hang a sub-round shared-memory worker (children only).

        Called by the :mod:`repro.engine.shm` worker loop before each
        command.  Reuses the ``crash``/``hang`` kinds with target key
        ``shm|worker|round`` — like :meth:`on_unit_start`, the faults
        fire only inside child processes so the coordinator (and the
        inline fallback it degrades to) is always fault-free.
        """
        if multiprocessing.parent_process() is None:
            return
        key = f"shm|{worker_id}|{round_id}"
        if self._fires("crash", key):
            os._exit(CRASH_EXIT_CODE)
        if self._fires("hang", key):
            time.sleep(self.plan.hang_seconds)

    # ------------------------------------------------------------------
    # Engine site
    # ------------------------------------------------------------------
    def on_pool_create(self) -> None:
        """Fail pool creation (``OSError``) while the attempt budget lasts."""
        attempt = self._pool_attempts
        self._pool_attempts += 1
        if self._fires("pool", "pool", attempt):
            raise OSError("injected pool-creation failure")

    # ------------------------------------------------------------------
    # Cache sites
    # ------------------------------------------------------------------
    def on_cache_read(self, key: str) -> None:
        """Delay the read of ``key`` when ``slow_io`` is armed."""
        if self._fires("slow_io", f"read|{key}"):
            time.sleep(self.plan.io_delay)

    def on_cache_write(self, key: str) -> None:
        """Delay (``slow_io``) or fail (``unwritable``) the write of ``key``."""
        if self._fires("slow_io", f"write|{key}"):
            time.sleep(self.plan.io_delay)
        if self._fires("unwritable", key):
            raise OSError("injected unwritable cache directory")

    def corruption_mode(self, key: str) -> Optional[str]:
        """How to damage the record just written for ``key`` (or ``None``)."""
        if self._fires("truncate", key):
            return "truncate"
        if self._fires("corrupt", key):
            return "corrupt"
        return None


# ---------------------------------------------------------------------------
# Active-injector registry
# ---------------------------------------------------------------------------
_ACTIVE: Optional[FaultInjector] = None
_ENV_CACHE: "tuple[str, Optional[FaultInjector]]" = ("", None)


def install(plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """Arm ``plan`` process-wide (``None`` disarms); returns the injector.

    Programmatic installation beats the environment variable but does
    **not** reach pool workers — set ``REPRO_FAULTS`` for that.
    """
    global _ACTIVE
    _ACTIVE = FaultInjector(plan) if plan is not None else None
    return _ACTIVE


def uninstall() -> None:
    """Disarm any programmatically installed plan."""
    install(None)


class injected_faults:
    """Context manager arming ``plan`` for the duration of a block."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.injector: Optional[FaultInjector] = None

    def __enter__(self) -> FaultInjector:
        self.injector = install(self.plan)
        assert self.injector is not None
        return self.injector

    def __exit__(self, *exc_info) -> None:
        uninstall()


def current_injector() -> Optional[FaultInjector]:
    """The armed injector: programmatic first, else ``REPRO_FAULTS``.

    The environment parse is cached per raw value, so the common
    fault-free path costs one dict lookup and a string compare.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    raw = os.environ.get(FAULTS_ENV, "").strip()
    if not raw:
        return None
    global _ENV_CACHE
    if _ENV_CACHE[0] != raw:
        _ENV_CACHE = (raw, FaultInjector(FaultPlan.parse(raw)))
    return _ENV_CACHE[1]
