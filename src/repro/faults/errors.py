"""Failure taxonomy: transient vs permanent.

The engine's retry policy hinges on one question per exception: *could
the same attempt succeed if repeated?*  Injected faults answer it
explicitly (:class:`TransientFaultError` / :class:`PermanentFaultError`);
real-world exceptions are classified by :func:`is_transient` — I/O and
connectivity hiccups retry, programming errors fail fast.  Retrying a
``TypeError`` would only burn the backoff budget to reach the same
deterministic crash.
"""

from __future__ import annotations


class FaultError(RuntimeError):
    """Base class of every injected fault raised by :mod:`repro.faults`."""


class TransientFaultError(FaultError):
    """An injected failure that goes away on retry (network blip, ...)."""


class PermanentFaultError(FaultError):
    """An injected failure that repeats on every attempt (poisoned unit)."""


#: Exception types the engine treats as retryable.  ``OSError`` covers
#: the I/O family (disk, sockets, interrupted syscalls); ``TimeoutError``
#: and ``ConnectionError`` are its most common transient subclasses but
#: are listed for clarity and for Python versions where they diverge.
TRANSIENT_TYPES = (
    TransientFaultError,
    TimeoutError,
    ConnectionError,
    InterruptedError,
    OSError,
)

#: Exception types never retried even though they subclass a transient
#: family (``PermanentFaultError`` is a ``RuntimeError``, kept here for
#: symmetry and future carve-outs).
PERMANENT_TYPES = (PermanentFaultError,)


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` is worth retrying (same inputs, later attempt)."""
    if isinstance(exc, PERMANENT_TYPES):
        return False
    return isinstance(exc, TRANSIENT_TYPES)
