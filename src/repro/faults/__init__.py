"""``repro.faults`` — seeded, deterministic fault injection.

The experiment engine claims graceful degradation: a crashed worker, a
hung unit, a corrupted cache record or an unwritable cache directory
must never change a batch's cuts, only its wall clock.  This package
makes those claims testable.  A :class:`FaultPlan` arms a set of fault
kinds — worker crash, hang, transient/permanent exception, slow I/O,
cache-record corruption/truncation, unwritable cache, pool-creation
failure — and a :class:`FaultInjector` fires them at fixed sites inside
the engine, the cache and the workers.  Decisions are pure functions of
*(plan seed, kind, target)*, so the same plan misbehaves identically in
every process and on every run; the chaos suite exploits that to assert
**bit-identical results under fault**.

Arming a plan::

    # in-process (tests)
    from repro.faults import FaultPlan, FaultSpec, injected_faults
    with injected_faults(FaultPlan(specs=(FaultSpec("transient"),))):
        engine.run(units)

    # across pool workers (inherited by child processes)
    REPRO_FAULTS="seed=7,crash:0.3,corrupt:0.25" python -m repro ...

See ``docs/robustness.md`` for the full fault model and grammar.
"""

from .errors import (
    PERMANENT_TYPES,
    TRANSIENT_TYPES,
    FaultError,
    PermanentFaultError,
    TransientFaultError,
    is_transient,
)
from .injector import (
    CRASH_EXIT_CODE,
    FaultInjector,
    current_injector,
    deterministic_fraction,
    injected_faults,
    install,
    uninstall,
)
from .plan import FAULT_KINDS, FAULTS_ENV, FaultPlan, FaultSpec

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "FaultError",
    "TransientFaultError",
    "PermanentFaultError",
    "is_transient",
    "TRANSIENT_TYPES",
    "PERMANENT_TYPES",
    "install",
    "uninstall",
    "injected_faults",
    "current_injector",
    "deterministic_fraction",
    "FAULT_KINDS",
    "FAULTS_ENV",
    "CRASH_EXIT_CODE",
]
