"""Fault plans: *which* failures to inject, seeded and declarative.

A :class:`FaultPlan` is a value object naming the fault kinds to arm,
each with a firing rate and an optional per-target attempt budget
(``times``).  Plans come from code (tests build them directly) or from
the ``REPRO_FAULTS`` environment variable, which makes them travel into
process-pool workers for free::

    REPRO_FAULTS="seed=7,crash:0.3,transient:1:2,corrupt:0.25"

Grammar (comma-separated entries):

* ``kind[:rate[:times]]`` — arm ``kind`` with firing probability
  ``rate`` (default 1.0) for the first ``times`` attempts per target
  (default: 1 for the self-healing kinds ``crash``/``hang``/
  ``transient``/``pool``, unlimited otherwise).
* ``seed=N`` — the plan seed mixed into every firing decision.
* ``hang_seconds=S`` — how long an injected hang sleeps (default 30).
* ``io_delay=S`` — how long ``slow_io`` sleeps per cache access
  (default 0.05).

Every decision is a pure function of *(plan seed, kind, target key)* —
see :mod:`repro.faults.injector` — so a plan misbehaves identically
across runs, worker counts and interpreter restarts.  That determinism
is what lets the chaos suite assert bit-identical cuts under fault.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Environment variable carrying the active fault plan (parsed lazily;
#: inherited by pool workers, which is how worker-side faults arm).
FAULTS_ENV = "REPRO_FAULTS"

#: Every fault kind the injector knows how to fire.
FAULT_KINDS = (
    "crash",       # worker: os._exit — pool sees BrokenProcessPool
    "hang",        # worker: sleep hang_seconds — pool sees a timeout
    "transient",   # worker: raise TransientFaultError (retryable)
    "permanent",   # worker: raise PermanentFaultError (never retried)
    "slow_io",     # cache: sleep io_delay on read/write
    "corrupt",     # cache: garble the record bytes after a write
    "truncate",    # cache: drop the tail of the record after a write
    "unwritable",  # cache: writes raise OSError (read-only cache dir)
    "pool",        # engine: ProcessPoolExecutor creation raises OSError
)

#: Kinds whose attempt budget defaults to 1: they must stop firing so
#: the engine's retry/fallback machinery can actually recover.
_SELF_HEALING = {"crash": 1, "hang": 1, "transient": 1, "pool": 1}


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault kind.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    rate:
        Probability in ``[0, 1]`` that a given *target* (work unit,
        cache key, pool) is selected.  Selection is deterministic per
        target — a selected unit fails on every run of the same plan.
    times:
        Attempt budget: the fault fires only while the target's attempt
        number is below ``times``.  ``None`` means unlimited.  Defaults
        to 1 for crash/hang/transient/pool so retries succeed.
    """

    kind: str
    rate: float = 1.0
    times: Optional[int] = field(default=-1)  # -1 sentinel: kind default

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(choose from {', '.join(FAULT_KINDS)})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.times == -1:
            object.__setattr__(self, "times", _SELF_HEALING.get(self.kind))
        if self.times is not None and self.times < 0:
            raise ValueError(f"times must be >= 0, got {self.times}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultSpec` plus shared fault parameters."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    hang_seconds: float = 30.0
    io_delay: float = 0.05

    def __post_init__(self) -> None:
        seen: Dict[str, FaultSpec] = {}
        for spec in self.specs:
            if spec.kind in seen:
                raise ValueError(f"duplicate fault kind {spec.kind!r}")
            seen[spec.kind] = spec
        if self.hang_seconds < 0 or self.io_delay < 0:
            raise ValueError("hang_seconds/io_delay must be >= 0")

    def spec_for(self, kind: str) -> Optional[FaultSpec]:
        """The armed spec for ``kind``, or ``None`` when not armed."""
        for spec in self.specs:
            if spec.kind == kind:
                return spec
        return None

    def describe(self) -> str:
        """The plan in ``REPRO_FAULTS`` grammar (parse/describe round-trips)."""
        parts = [f"seed={self.seed}"]
        for spec in self.specs:
            times = "inf" if spec.times is None else str(spec.times)
            parts.append(f"{spec.kind}:{spec.rate:g}:{times}")
        if self.hang_seconds != 30.0:
            parts.append(f"hang_seconds={self.hang_seconds:g}")
        if self.io_delay != 0.05:
            parts.append(f"io_delay={self.io_delay:g}")
        return ",".join(parts)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from the ``REPRO_FAULTS`` grammar (see module doc)."""
        specs = []
        options: Dict[str, float] = {}
        for raw_entry in text.split(","):
            entry = raw_entry.strip()
            if not entry:
                continue
            if "=" in entry:
                name, _, value = entry.partition("=")
                name = name.strip()
                if name not in ("seed", "hang_seconds", "io_delay"):
                    raise ValueError(
                        f"unknown fault-plan option {name!r} in {entry!r}"
                    )
                try:
                    options[name] = float(value)
                except ValueError:
                    raise ValueError(
                        f"bad value for {name} in {entry!r}"
                    ) from None
                continue
            fields = entry.split(":")
            if len(fields) > 3:
                raise ValueError(f"bad fault entry {entry!r}")
            kind = fields[0].strip()
            rate = 1.0
            times: Optional[int] = -1
            try:
                if len(fields) >= 2 and fields[1].strip():
                    rate = float(fields[1])
                if len(fields) == 3 and fields[2].strip():
                    raw_times = fields[2].strip()
                    times = None if raw_times == "inf" else int(raw_times)
            except ValueError:
                raise ValueError(f"bad fault entry {entry!r}") from None
            specs.append(FaultSpec(kind=kind, rate=rate, times=times))
        return cls(
            specs=tuple(specs),
            seed=int(options.get("seed", 0)),
            hang_seconds=options.get("hang_seconds", 30.0),
            io_delay=options.get("io_delay", 0.05),
        )

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan armed via ``REPRO_FAULTS``, or ``None`` when unset."""
        raw = os.environ.get(FAULTS_ENV, "").strip()
        return cls.parse(raw) if raw else None
