"""Multi-FPGA partitioning (paper Sec. 5 future work; Sec. 1 motivation).

Partitioning a large circuit across k FPGA devices adds two hard resource
constraints on top of k-way balance:

* **capacity** — each device holds at most ``capacity`` node weight;
* **I/O pins** — each device exposes at most ``io_limit`` external pins,
  where a device consumes one I/O for every *distinct net* that has pins
  both inside and outside it.

The flow here: recursive PROP bisection to k parts, then a greedy repair
loop that relocates boundary nodes out of violating devices.  Repair
failures are reported honestly in :class:`FpgaPlan` — infeasible device
profiles exist and a production flow would re-partition with more devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..hypergraph import Hypergraph
from ..kway import kway_cut, recursive_bisection
from ..multirun.runner import Partitioner


@dataclass(frozen=True)
class FpgaDevice:
    """One device profile: logic capacity and I/O pin budget."""

    capacity: float
    io_limit: int

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {self.capacity}")
        if self.io_limit < 0:
            raise ValueError(f"io_limit must be >= 0, got {self.io_limit}")


@dataclass
class FpgaPlan:
    """Result of mapping a netlist onto k devices."""

    assignment: List[int]
    devices: Sequence[FpgaDevice]
    utilization: List[float]
    io_counts: List[int]
    cut: float

    @property
    def feasible(self) -> bool:
        return not self.capacity_violations() and not self.io_violations()

    def capacity_violations(self) -> List[int]:
        """Devices whose logic capacity is exceeded."""
        return [
            d
            for d, (used, dev) in enumerate(zip(self.utilization, self.devices))
            if used > dev.capacity + 1e-9
        ]

    def io_violations(self) -> List[int]:
        """Devices whose I/O budget is exceeded."""
        return [
            d
            for d, (ios, dev) in enumerate(zip(self.io_counts, self.devices))
            if ios > dev.io_limit
        ]


def device_io_counts(
    graph: Hypergraph, assignment: Sequence[int], k: int
) -> List[int]:
    """External-net count per device (one I/O pin per crossing net)."""
    ios = [0] * k
    for pins in graph.nets:
        parts = {assignment[v] for v in pins}
        if len(parts) > 1:
            for part in parts:
                ios[part] += 1
    return ios


def partition_onto_fpgas(
    graph: Hypergraph,
    devices: Sequence[FpgaDevice],
    partitioner: Optional[Partitioner] = None,
    seed: int = 0,
    repair_rounds: int = 3,
) -> FpgaPlan:
    """Map ``graph`` onto the given devices.

    All devices are assumed identical in capacity ordering terms (the
    common homogeneous-board case); heterogeneous capacity is honoured by
    the repair phase.
    """
    k = len(devices)
    if k < 2:
        raise ValueError("need at least 2 devices")
    total = graph.total_node_weight
    if total > sum(d.capacity for d in devices):
        raise ValueError(
            f"total node weight {total} exceeds aggregate capacity"
        )

    kway = recursive_bisection(graph, k, partitioner=partitioner, seed=seed)
    assignment = list(kway.assignment)

    for _ in range(repair_rounds):
        if not _repair_round(graph, assignment, devices):
            break

    utilization = [0.0] * k
    for v, part in enumerate(assignment):
        utilization[part] += graph.node_weight(v)
    return FpgaPlan(
        assignment=assignment,
        devices=list(devices),
        utilization=utilization,
        io_counts=device_io_counts(graph, assignment, k),
        cut=kway_cut(graph, assignment),
    )


def _repair_round(
    graph: Hypergraph,
    assignment: List[int],
    devices: Sequence[FpgaDevice],
) -> bool:
    """One greedy repair sweep; returns True if anything moved.

    Over-capacity or over-I/O devices shed their least-connected boundary
    nodes to the neighbor device with the most slack.
    """
    k = len(devices)
    utilization = [0.0] * k
    for v, part in enumerate(assignment):
        utilization[part] += graph.node_weight(v)
    ios = device_io_counts(graph, assignment, k)

    violating = [
        d
        for d in range(k)
        if utilization[d] > devices[d].capacity + 1e-9
        or ios[d] > devices[d].io_limit
    ]
    if not violating:
        return False

    moved = False
    for dev in violating:
        boundary = _boundary_nodes(graph, assignment, dev)
        # Least internally-connected first: cheapest to evict.
        boundary.sort(key=lambda v: _internal_pins(graph, assignment, v))
        budget = max(1, len(boundary) // 4)
        for v in boundary[:budget]:
            target = _best_target(graph, assignment, v, utilization, devices)
            if target is None:
                continue
            utilization[assignment[v]] -= graph.node_weight(v)
            utilization[target] += graph.node_weight(v)
            assignment[v] = target
            moved = True
    return moved


def _boundary_nodes(
    graph: Hypergraph, assignment: Sequence[int], device: int
) -> List[int]:
    out = []
    for v in range(graph.num_nodes):
        if assignment[v] != device:
            continue
        for net_id in graph.node_nets(v):
            if any(assignment[u] != device for u in graph.net(net_id)):
                out.append(v)
                break
    return out


def _internal_pins(
    graph: Hypergraph, assignment: Sequence[int], node: int
) -> int:
    dev = assignment[node]
    return sum(
        1
        for net_id in graph.node_nets(node)
        for u in graph.net(net_id)
        if u != node and assignment[u] == dev
    )


def _best_target(
    graph: Hypergraph,
    assignment: Sequence[int],
    node: int,
    utilization: Sequence[float],
    devices: Sequence[FpgaDevice],
) -> Optional[int]:
    """Neighbor device with the most capacity slack that can take ``node``."""
    weight = graph.node_weight(node)
    neighbor_devs = set()
    for net_id in graph.node_nets(node):
        for u in graph.net(net_id):
            if assignment[u] != assignment[node]:
                neighbor_devs.add(assignment[u])
    best = None
    best_slack = 0.0
    for dev in neighbor_devs:
        slack = devices[dev].capacity - utilization[dev] - weight
        if slack >= 0 and (best is None or slack > best_slack):
            best = dev
            best_slack = slack
    return best
