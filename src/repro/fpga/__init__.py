"""Multi-FPGA partitioning flow (paper Sec. 5 future work)."""

from .multi_fpga import (
    FpgaDevice,
    FpgaPlan,
    device_io_counts,
    partition_onto_fpgas,
)

__all__ = [
    "FpgaDevice",
    "FpgaPlan",
    "partition_onto_fpgas",
    "device_io_counts",
]
