"""Shared result-record codec: JSON encoding + integrity checksums.

Both persistence layers — the content-addressed :mod:`cache` and the
per-run :mod:`journal` — store a :class:`~repro.partition.BipartitionResult`
as one JSON object.  This module owns that encoding so the two stay
bit-compatible, and adds the integrity contract: every record embeds a
``sha256`` over its own canonical JSON (sorted keys, minimal
separators, ``sha256`` field excluded).  Verification on read turns
torn writes, bit rot and truncation into clean misses instead of
silently wrong cuts.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

from ..partition import BipartitionResult

#: Record layout version; bumped when the JSON schema changes.
#: 1 = PR 1 layout (no checksum); 2 = embedded sha256 integrity field.
RECORD_FORMAT = 2

#: Name of the embedded integrity field.
CHECKSUM_FIELD = "sha256"


def encode_result(result: BipartitionResult) -> Dict[str, Any]:
    """The JSON-ready fields of one partitioning result."""
    return {
        "algorithm": result.algorithm,
        "seed": result.seed,
        "cut": result.cut,
        "sides": list(result.sides),
        "passes": result.passes,
        "runtime_seconds": result.runtime_seconds,
        "stats": result.stats,
        "pass_cuts": list(result.pass_cuts),
    }


def decode_result(record: Dict[str, Any]) -> BipartitionResult:
    """Rebuild a result from a record (raises on malformed records)."""
    return BipartitionResult(
        sides=list(record["sides"]),
        cut=float(record["cut"]),
        algorithm=record.get("algorithm", ""),
        seed=record.get("seed"),
        passes=int(record.get("passes", 0)),
        runtime_seconds=float(record.get("runtime_seconds", 0.0)),
        stats=dict(record.get("stats", {})),
        pass_cuts=list(record.get("pass_cuts", [])),
    )


def record_checksum(record: Dict[str, Any]) -> str:
    """sha256 over the record's canonical JSON, ``sha256`` field excluded.

    Canonical form (sorted keys, ``,``/``:`` separators) makes the hash
    independent of insertion order, so it survives a JSON round-trip:
    the checksum computed before writing equals the one recomputed from
    the parsed record.
    """
    payload = json.dumps(
        {k: v for k, v in record.items() if k != CHECKSUM_FIELD},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def seal(record: Dict[str, Any]) -> Dict[str, Any]:
    """Embed the integrity checksum; returns ``record`` for chaining."""
    record[CHECKSUM_FIELD] = record_checksum(record)
    return record


def checksum_ok(record: Dict[str, Any]) -> bool:
    """Whether the embedded checksum matches the record's content.

    Records without a checksum (pre-format-2) fail verification: they
    cannot prove their integrity, and version-keyed addressing means
    they are unreachable garbage anyway.
    """
    stored = record.get(CHECKSUM_FIELD)
    if not isinstance(stored, str):
        return False
    return stored == record_checksum(record)
