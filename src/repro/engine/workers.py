"""Process-pool worker entry points.

``ProcessPoolExecutor`` pickles the callable and its arguments into the
worker, so the function must live at module level (lambdas and closures
don't pickle).  The payload is the :class:`~repro.engine.units.WorkUnit`
itself plus its batch index; everything a run needs travels inside the
unit, which is what keeps workers stateless and results order-independent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..faults import current_injector
from ..partition import BipartitionResult
from .units import WorkUnit


def pool_worker_init() -> None:
    """Process-pool worker initializer: apply resource governance.

    Runs once per spawned worker, before any unit.  Applies the
    env-configured ``RLIMIT_AS`` soft cap (see
    :mod:`repro.guard.memory`) so a pathological instance dies with
    ``MemoryError`` inside the worker instead of summoning the host
    OOM-killer, and enables ``faulthandler`` so a hard worker crash
    leaves a traceback on stderr for the quarantine diagnostics.
    Never raises — a governance failure must not break the pool.
    """
    try:
        from ..guard.memory import apply_worker_rlimit

        apply_worker_rlimit()
    except Exception:  # noqa: BLE001 - governance is best-effort
        pass
    try:
        import faulthandler

        if not faulthandler.is_enabled():
            faulthandler.enable()
    except Exception:  # noqa: BLE001
        pass


@dataclass(frozen=True)
class WorkerOutcome:
    """What a worker sends back: the run plus bookkeeping."""

    index: int
    result: BipartitionResult
    seconds: float


def execute_unit(
    index: int,
    unit: WorkUnit,
    attempt: int = 0,
    recorder: object = None,
) -> WorkerOutcome:
    """Run one work unit to completion (in a worker or in-process).

    ``attempt`` is the unit's retry ordinal (0 on first execution); the
    engine threads it through so the fault injector can arm faults per
    attempt — a transient fault with ``times=1`` fails attempt 0 and
    lets attempt 1 succeed, deterministically.

    ``recorder`` attaches a telemetry recorder to the run when the
    partitioner supports one (in-process callers only — recorders do
    not pickle, so the pool path never passes one).  Recording is
    observational: a recorded run makes bit-identical moves.

    The run is timed here, next to the actual compute, so recorded
    per-run seconds exclude scheduling/pickling overhead.
    """
    injector = current_injector()
    if injector is not None:
        injector.on_unit_start(unit, attempt)
    start = time.perf_counter()
    kwargs = {}
    if unit.audit is not None and getattr(
        unit.partitioner, "supports_audit", False
    ):
        kwargs["audit"] = unit.audit
    if recorder is not None and getattr(
        unit.partitioner, "supports_telemetry", False
    ):
        kwargs["recorder"] = recorder
    result = unit.partitioner.partition(
        unit.graph, balance=unit.balance, seed=unit.seed, **kwargs
    )
    return WorkerOutcome(
        index=index, result=result, seconds=time.perf_counter() - start
    )
