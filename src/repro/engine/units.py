"""Work units: the engine's unit of schedulable, cacheable computation.

A :class:`WorkUnit` is one partitioning run — (hypergraph, partitioner,
seed, balance).  The paper's whole evaluation protocol (Sec. 4: best cut
over N runs from random initial partitions) decomposes into independent
work units, which is what makes it embarrassingly parallel: each unit is
fully described by its inputs, carries its own seed, and can execute on
any worker in any order without changing the outcome.

This module also defines the *fingerprints* used as cache keys.  A unit's
key is a content hash over

    repro.__version__ | hypergraph | partitioner config | balance | seed

so a cached record is valid exactly as long as all four inputs (and the
code version) are unchanged.  Fingerprints are pure functions of value,
never of object identity — two structurally identical hypergraphs share
cache entries.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, List, Optional

from ..audit import AuditConfig
from ..hypergraph import Hypergraph
from ..multirun import Partitioner
from ..partition import BalanceConstraint


def seed_stream(base_seed: int, runs: int) -> List[int]:
    """The canonical seed sequence ``base_seed .. base_seed + runs - 1``.

    Both the sequential harness (:func:`repro.multirun.run_many`) and the
    engine derive their seeds from this one function, which is what makes
    parallel and sequential execution bit-identical: the i-th run sees the
    same seed either way, and results are folded back in unit order.
    """
    if runs < 0:
        raise ValueError(f"runs must be >= 0, got {runs}")
    return [base_seed + i for i in range(runs)]


@dataclass(frozen=True)
class WorkUnit:
    """One partitioning run, self-contained and independently executable.

    Attributes
    ----------
    graph:
        The netlist to bisect.
    partitioner:
        Any object satisfying the :class:`repro.multirun.Partitioner`
        protocol.  Must be picklable for process-pool execution (every
        partitioner in this package is).
    seed:
        Seed for the run's random initial partition.
    balance:
        Balance constraint, or ``None`` for the partitioner's default.
    tag:
        Free-form grouping key for the caller (e.g. ``"balu/FM100"``);
        the engine reports it back but never interprets it.
    audit:
        Optional invariant-audit configuration (see :mod:`repro.audit`).
        Auditing is observational — audited runs produce bit-identical
        results — so it deliberately does **not** participate in the
        cache key; whether a stored record was audited is recorded in
        ``result.stats["audited"]`` and checked at cache-serve time.
    """

    graph: Hypergraph
    partitioner: Partitioner
    seed: int
    balance: Optional[BalanceConstraint] = None
    tag: str = ""
    audit: Optional[AuditConfig] = None

    def cache_key(self, version: str) -> str:
        """Content-addressed identity of this unit under code ``version``."""
        return unit_key(self, version)


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------
def hypergraph_fingerprint(graph: Hypergraph) -> str:
    """Content hash of a netlist (nets, costs, weights — not names)."""
    h = hashlib.sha256()
    h.update(str(graph.num_nodes).encode())
    for pins in graph.nets:
        h.update(b"|")
        h.update(",".join(map(str, pins)).encode())
    h.update(b"#c")
    h.update(",".join(repr(c) for c in graph.net_costs).encode())
    h.update(b"#w")
    h.update(",".join(repr(w) for w in graph.node_weights).encode())
    return h.hexdigest()


def _canonical_value(value: Any) -> Any:
    """Reduce a config attribute to a stable, repr-able structure.

    Dataclass configs may declare a ``_RESULT_NEUTRAL_FIELDS`` frozenset
    of field names that cannot affect results (e.g. ``PropConfig.kernel``,
    a pure runtime-backend switch); those are excluded so switching them
    does not invalidate cached results — the same policy as the audit
    config, which never enters the key at all.

    A config may additionally define a ``fingerprint_extra()`` method
    returning key material that is *conditionally* result-relevant —
    e.g. ``PropConfig`` re-inserts the neutral-by-default batch fraction
    exactly when the result-changing subround kernel is selected.  The
    extra entries are merged under ``~``-prefixed keys (field names
    never start with ``~``, so they cannot collide or spoof a field).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        neutral = getattr(type(value), "_RESULT_NEUTRAL_FIELDS", frozenset())
        out = {
            f.name: _canonical_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.name not in neutral
        }
        extra = getattr(value, "fingerprint_extra", None)
        if callable(extra):
            for key, val in sorted(extra().items()):
                out[f"~{key}"] = _canonical_value(val)
        return out
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical_value(v) for k, v in sorted(value.items())}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if callable(getattr(value, "partition", None)) and not isinstance(
        value, type
    ):
        # Nested partitioner (e.g. a multilevel engine's ``refiner``).
        # The generic repr fallback below would embed the object's memory
        # address, giving every process a fresh fingerprint for the same
        # configuration — cached results could never be served.  Expand
        # it structurally instead, the same way the top-level
        # partitioner_fingerprint does.
        return {
            "~class": (
                f"{type(value).__module__}.{type(value).__qualname__}"
            ),
            **{
                str(k): _canonical_value(v)
                for k, v in sorted(_public_state(value).items())
            },
        }
    return repr(value)


def _public_state(obj: Any) -> dict:
    """Public attributes of a partitioner, from __dict__ or __slots__."""
    state = {}
    if hasattr(obj, "__dict__"):
        state.update(obj.__dict__)
    for klass in type(obj).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if hasattr(obj, slot):
                state.setdefault(slot, getattr(obj, slot))
    return {k: v for k, v in state.items() if not k.startswith("_")}


def partitioner_fingerprint(partitioner: Partitioner) -> str:
    """Content hash of a partitioner's class + configuration.

    Covers the class name and every public attribute (dataclass configs
    are expanded field by field), so ``PropPartitioner(PropConfig(pinit=.8))``
    and the default ``PropPartitioner()`` hash differently, while two
    freshly constructed default instances hash identically.
    """
    state = _canonical_value(_public_state(partitioner))
    payload = f"{type(partitioner).__module__}.{type(partitioner).__qualname__}|{state!r}"
    return hashlib.sha256(payload.encode()).hexdigest()


def balance_fingerprint(balance: Optional[BalanceConstraint]) -> str:
    """Content hash of a balance constraint (``'none'`` when absent)."""
    if balance is None:
        return "none"
    state = _canonical_value(_public_state(balance))
    payload = f"{type(balance).__qualname__}|{state!r}"
    return hashlib.sha256(payload.encode()).hexdigest()


def unit_key(unit: WorkUnit, version: str) -> str:
    """Cache key of one work unit: version + all four unit inputs."""
    payload = "|".join(
        (
            version,
            hypergraph_fingerprint(unit.graph),
            partitioner_fingerprint(unit.partitioner),
            balance_fingerprint(unit.balance),
            str(unit.seed),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()
