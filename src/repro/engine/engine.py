"""The execution engine: scheduler + cache + journal + fault handling.

:class:`Engine` turns a batch of :class:`~repro.engine.units.WorkUnit`
into :class:`UnitResult` records, in input order, using

* a ``ProcessPoolExecutor`` sized by :class:`EngineConfig` (env override
  ``REPRO_ENGINE_WORKERS``; ``0``/``1`` means in-process execution),
* the content-addressed :class:`~repro.engine.cache.ResultCache` (keys
  include ``repro.__version__``, so version bumps invalidate),
* per-unit deadlines measured from submission, retry with deterministic
  exponential backoff + jitter for transient failures, degrading
  gracefully to in-process execution whenever the pool cannot be
  created or breaks mid-run,
* per-unit error capture (``on_error='collect'``) so one poisoned unit
  cannot abort a 10k-unit sweep,
* an optional per-run journal (``run_id=``) enabling ``resume=True`` to
  skip completed units after a crash or interrupt, and
* SIGINT/SIGTERM drain handling: first signal finishes in-flight work,
  flushes the journal and returns partial results
  (:attr:`Engine.interrupted`); a second signal hard-stops.

Determinism: every unit carries its own seed and results are folded back
by input index, so a batch produces bit-identical cuts whether it runs
sequentially, on 4 workers, half-and-half after a pool failure, or
across an interrupt-and-resume — the invariant the chaos suite
(``pytest -m chaos``) proves under injected faults.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..faults import current_injector, deterministic_fraction, is_transient
from ..partition import BipartitionResult
from .cache import ResultCache, default_cache_dir
from .journal import RunJournal, journal_path
from .records import decode_result, encode_result
from .signals import INERT_GUARD, CancelToken, GuardWithCancel, SignalGuard
from .units import WorkUnit, unit_key
from .workers import execute_unit, pool_worker_init

#: Environment variable overriding the default worker count.
WORKERS_ENV = "REPRO_ENGINE_WORKERS"


def backoff_delay(
    attempt: int, key: str, base: float = 0.05, maximum: float = 2.0
) -> float:
    """Deterministic exponential-backoff delay for retry attempt ``k``.

    ``min(maximum, base * 2**k)`` scaled by a jitter in ``[0.5, 1.0)``
    derived from ``(key, attempt)`` — reproducible across processes and
    runs, unlike ``random.random()`` jitter.  Shared by the engine's
    transient-retry loop and the service client's 429 retry path so
    both back off identically.
    """
    if base <= 0:
        return 0.0
    delay = min(maximum, base * (2.0 ** attempt))
    jitter = deterministic_fraction(f"backoff|{key}|{attempt}")
    return delay * (0.5 + 0.5 * jitter)

#: Valid per-unit failure policies.
ON_ERROR_POLICIES = ("raise", "collect")


def default_workers() -> int:
    """Worker count from ``REPRO_ENGINE_WORKERS``, else ``os.cpu_count()``."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV}={raw!r} is not an integer"
            ) from None
    return os.cpu_count() or 1


@dataclass(frozen=True)
class EngineConfig:
    """All engine knobs.

    Attributes
    ----------
    workers:
        Process-pool size; ``None`` defers to ``REPRO_ENGINE_WORKERS``
        (default ``os.cpu_count()``).  ``0`` or ``1`` executes in-process.
    cache_dir:
        Result-cache directory; ``None`` defers to ``REPRO_ENGINE_CACHE``
        (default ``.repro_cache/``).  Run journals live under
        ``<cache_dir>/runs/`` even when the cache itself is disabled.
    use_cache:
        Master switch for the result cache.
    timeout:
        Per-unit wall-clock budget in seconds, measured from submission
        to the pool (all units of a round share one submission instant,
        so budgets never compound across units).  A unit exceeding it is
        retried and ultimately re-run in-process.  ``None`` disables.
    retries:
        Extra pool *rounds* for units whose pool broke or timed out,
        before degrading to in-process execution.
    unit_retries:
        Extra attempts for a unit whose execution raised a *transient*
        exception (see :func:`repro.faults.is_transient`), with
        exponential backoff.  Permanent exceptions are never retried.
    on_error:
        ``'raise'`` (default): a permanently failing unit raises out of
        :meth:`Engine.run`, matching pre-fault-hardening behavior.
        ``'collect'``: the failure is captured on
        :attr:`UnitResult.error` and the batch continues.
    backoff_base / backoff_max:
        Exponential-backoff envelope for transient retries: attempt
        ``k`` sleeps ``min(backoff_max, backoff_base * 2**k)`` scaled by
        a deterministic jitter in ``[0.5, 1.0)`` derived from the unit,
        so parallel and repeated runs back off identically.
    handle_signals:
        SIGINT/SIGTERM drain handling during :meth:`Engine.run`.
        ``None`` (default) enables it exactly when the run is
        journalled (``run_id=``); ``True``/``False`` force it.
    version:
        Code version mixed into cache keys; defaults to
        ``repro.__version__``.  Exposed for tests and cache migration.
    progress:
        Default progress callback (see :class:`ProgressEvent`); the
        per-call argument of :meth:`Engine.run` takes precedence.
    recorder:
        Optional telemetry recorder attached to *in-process* unit
        executions (recorders are not picklable, so pooled workers run
        unrecorded — their phase timings still persist via result
        stats).  This is the hook the service layer uses to feed
        server-sent trace events from single-process jobs.
    """

    workers: Optional[int] = None
    cache_dir: Optional[str] = None
    use_cache: bool = True
    timeout: Optional[float] = None
    retries: int = 1
    unit_retries: int = 2
    on_error: str = "raise"
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    handle_signals: Optional[bool] = None
    version: Optional[str] = None
    progress: Optional[Callable[["ProgressEvent"], None]] = None
    recorder: Optional[object] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.unit_retries < 0:
            raise ValueError(
                f"unit_retries must be >= 0, got {self.unit_retries}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_POLICIES}, "
                f"got {self.on_error!r}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff_base/backoff_max must be >= 0")

    def resolved_workers(self) -> int:
        """The effective pool size after env defaults."""
        return default_workers() if self.workers is None else self.workers


@dataclass(frozen=True)
class UnitError:
    """A captured per-unit failure (``on_error='collect'``)."""

    exc_type: str
    message: str
    transient: bool
    attempts: int
    traceback: str = ""

    @classmethod
    def from_exception(
        cls, exc: BaseException, attempts: int
    ) -> "UnitError":
        return cls(
            exc_type=type(exc).__name__,
            message=str(exc),
            transient=is_transient(exc),
            attempts=attempts,
            traceback="".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
        )


@dataclass(frozen=True)
class UnitResult:
    """One executed (or cache/journal-served, or failed) work unit.

    ``result`` is ``None`` exactly when ``error`` is set — only possible
    under ``on_error='collect'``; check :attr:`ok` before using it.
    """

    unit: WorkUnit
    index: int
    result: Optional[BipartitionResult]
    seconds: float
    cached: bool = False
    source: str = "inline"  # "pool" | "inline" | "cache" | "journal" | "error"
    error: Optional[UnitError] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class ProgressEvent:
    """Fired after every unit completes (in completion order).

    The timing fields default to zero for hand-constructed events (tests,
    replay); :meth:`Engine.run` always fills them in.
    """

    done: int
    total: int
    latest: UnitResult
    #: Wall-clock seconds since the batch started.
    elapsed_seconds: float = 0.0
    #: Completed units per second so far (0 until time has elapsed).
    throughput: float = 0.0
    #: Estimated seconds until the batch completes, extrapolating the
    #: current throughput over the remaining units (0 when unknowable).
    eta_seconds: float = 0.0


@dataclass
class EngineStats:
    """Counters accumulated over an engine's lifetime."""

    executed: int = 0
    pool_executed: int = 0
    cache_hits: int = 0
    journal_hits: int = 0
    timeouts: int = 0
    pool_failures: int = 0
    inline_fallbacks: int = 0
    retried: int = 0
    unit_errors: int = 0

    def reset(self) -> None:
        """Zero every counter (e.g. between measurement windows)."""
        self.executed = self.pool_executed = self.cache_hits = 0
        self.journal_hits = self.timeouts = self.pool_failures = 0
        self.inline_fallbacks = self.retried = self.unit_errors = 0


class Engine:
    """Parallel work-unit executor with cache, journal and fault handling.

    Usage::

        engine = Engine(EngineConfig(workers=4))
        results = engine.run(units)           # List[UnitResult], unit order

        # journalled + resumable
        engine.run(units, run_id="sweep-7")
        engine.run(units, run_id="sweep-7", resume=True)  # skips completed

    The engine is stateless between :meth:`run` calls apart from
    :attr:`stats`, :attr:`interrupted`, :attr:`stopped_early` and the
    on-disk cache/journal;
    pools are created per call and torn down afterwards, so an Engine
    can be kept around for the whole life of a program (or a test
    session) without leaking processes.
    """

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()
        self.stats = EngineStats()
        self.interrupted = False
        self.stopped_early = False
        if self.config.version is not None:
            self._version = self.config.version
        else:
            from .. import __version__

            self._version = __version__
        self.cache: Optional[ResultCache] = None
        if self.config.use_cache:
            root = self.config.cache_dir or default_cache_dir()
            self.cache = ResultCache(root=root, version=self._version)

    # ------------------------------------------------------------------
    # Journalling
    # ------------------------------------------------------------------
    def journal_root(self) -> Path:
        """Directory holding run journals (exists even with cache off)."""
        return Path(self.config.cache_dir or default_cache_dir())

    def open_journal(self, run_id: str) -> RunJournal:
        """The journal for ``run_id`` under this engine's cache root."""
        return RunJournal(
            journal_path(self.journal_root(), run_id),
            run_id=run_id,
            version=self._version,
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        units: Sequence[WorkUnit],
        progress: Optional[Callable[[ProgressEvent], None]] = None,
        run_id: Optional[str] = None,
        resume: bool = False,
        cancel: Optional[CancelToken] = None,
        stop_check: Optional[Callable[[UnitResult], bool]] = None,
    ) -> List[UnitResult]:
        """Execute every unit; results come back in input order.

        Journal hits (``resume=True``) and cache hits are served first
        and never scheduled; misses go to the process pool when more
        than one worker is configured, else they run in-process.  Pool
        faults (creation failure, broken pool, per-unit timeout after
        retries) degrade to in-process execution; transient unit
        failures retry with deterministic backoff; permanent ones
        follow ``on_error``.  Absent an interrupt, the batch always
        completes with exactly one result per unit.  After a drain
        (first SIGINT/SIGTERM, or ``cancel.cancel()`` from any thread),
        :attr:`interrupted` is ``True`` and the returned list covers
        only the completed prefix of work — all of it journalled when
        ``run_id`` was given, ready for resume.

        ``stop_check`` is the streaming early-stop hook (the adaptive
        restart policies of :mod:`repro.analysis.ensembles` ride on
        it).  It is called once per completed unit *in unit order* —
        regardless of completion order, worker count, or whether the
        unit came from the pool, the cache or a resume journal — so a
        decision function of the result prefix sees exactly the same
        sequence on every execution strategy.  Returning ``True``
        drains the batch like a cancel (in-flight work finishes and is
        journalled, queued work is shed) except that
        :attr:`stopped_early` is set instead of :attr:`interrupted`:
        an early-stopped batch is a *decision*, not an interruption.
        Completed units past the stopping prefix (pool stragglers) are
        still returned and journalled; callers enforcing a
        deterministic stop fold only the prefix.
        """
        units = list(units)
        total = len(units)
        callback = progress or self.config.progress
        done = 0
        self.interrupted = False
        self.stopped_early = False
        stop_token = CancelToken() if stop_check is not None else None

        journal: Optional[RunJournal] = None
        journal_records: Dict[str, dict] = {}
        if run_id is not None:
            journal = self.open_journal(run_id)
            if resume:
                journal_records = journal.load()
            journal.ensure_header(total)

        run_started = time.monotonic()

        def emit(unit_result: UnitResult) -> None:
            nonlocal done
            done += 1
            if callback is not None:
                elapsed = time.monotonic() - run_started
                throughput = done / elapsed if elapsed > 0 else 0.0
                eta = (total - done) / throughput if throughput > 0 else 0.0
                callback(
                    ProgressEvent(
                        done=done,
                        total=total,
                        latest=unit_result,
                        elapsed_seconds=elapsed,
                        throughput=throughput,
                        eta_seconds=eta,
                    )
                )

        need_keys = self.cache is not None or journal is not None
        results: List[Optional[UnitResult]] = [None] * total
        keys: List[Optional[str]] = [None] * total
        pending: List[int] = []
        prefix_next = 0  # first unit index not yet shown to stop_check

        def deliver_prefix() -> None:
            # Feed ``stop_check`` the contiguous completed prefix, one
            # unit at a time in unit order — completion order (pool
            # races, cache hits) never leaks into the decision sequence.
            nonlocal prefix_next
            if stop_check is None or stop_token is None:
                return
            while (
                not stop_token.cancelled
                and prefix_next < total
                and results[prefix_next] is not None
            ):
                delivered = results[prefix_next]
                prefix_next += 1
                if stop_check(delivered):
                    self.stopped_early = True
                    stop_token.cancel()

        try:
            for i, unit in enumerate(units):
                if need_keys:
                    keys[i] = unit_key(unit, self._version)
                served = self._serve_completed(
                    unit, i, keys[i], journal_records
                )
                if served is not None:
                    results[i] = served
                    emit(served)
                    deliver_prefix()
                    continue
                pending.append(i)

            handle_signals = self.config.handle_signals
            if handle_signals is None:
                handle_signals = journal is not None
            guard = SignalGuard() if handle_signals else INERT_GUARD
            if cancel is not None:
                guard = GuardWithCancel(guard, cancel)
            external_guard = guard  # signal/cancel drains only
            if stop_token is not None:
                guard = GuardWithCancel(guard, stop_token)

            with guard:
                for i, outcome_result, seconds, source, error in self._execute(
                    units, pending, guard
                ):
                    if error is not None:
                        self.stats.unit_errors += 1
                        results[i] = UnitResult(
                            unit=units[i], index=i, result=None,
                            seconds=seconds, cached=False, source="error",
                            error=error,
                        )
                        emit(results[i])
                        deliver_prefix()
                        continue
                    self.stats.executed += 1
                    if source == "pool":
                        self.stats.pool_executed += 1
                    if self.cache is not None and keys[i] is not None:
                        self.cache.put(keys[i], outcome_result)
                    if journal is not None and keys[i] is not None:
                        journal.append_unit(
                            keys[i], units[i], encode_result(outcome_result),
                            seconds, source,
                        )
                    results[i] = UnitResult(
                        unit=units[i], index=i, result=outcome_result,
                        seconds=seconds, cached=False, source=source,
                    )
                    emit(results[i])
                    deliver_prefix()
                # A drain caused only by the early-stop token is a
                # successful policy decision, not an interruption.
                if external_guard.draining:
                    self.interrupted = True
        finally:
            if journal is not None:
                journal.close()

        return [r for r in results if r is not None]

    def _serve_completed(
        self,
        unit: WorkUnit,
        index: int,
        key: Optional[str],
        journal_records: Dict[str, dict],
    ) -> Optional[UnitResult]:
        """Serve ``unit`` from the resume journal or the cache, if possible.

        Audit does not change results, so audited and unaudited runs
        share a record — but a unit *requesting* an audit wants the
        invariants actually checked, so an unaudited record is not good
        enough and the unit re-executes (overwriting the record with an
        audited one).
        """
        if key is None:
            return None
        record = journal_records.get(key)
        if record is not None:
            try:
                hit = decode_result(record)
            except (ValueError, KeyError, TypeError):
                hit = None
            if hit is not None and not (
                unit.audit is not None and not hit.stats.get("audited")
            ):
                self.stats.journal_hits += 1
                return UnitResult(
                    unit=unit, index=index, result=hit,
                    seconds=hit.runtime_seconds, cached=True, source="journal",
                )
        if self.cache is not None:
            hit = self.cache.get(key)
            if (
                hit is not None
                and unit.audit is not None
                and not hit.stats.get("audited")
            ):
                hit = None
            if hit is not None:
                self.stats.cache_hits += 1
                return UnitResult(
                    unit=unit, index=index, result=hit,
                    seconds=hit.runtime_seconds, cached=True, source="cache",
                )
        return None

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    #: Items yielded by :meth:`_execute`:
    #: ``(index, result | None, seconds, source, error | None)``.
    _Item = Tuple[int, Optional[BipartitionResult], float, str,
                  Optional[UnitError]]

    def _execute(
        self, units: Sequence[WorkUnit], pending: List[int], guard
    ) -> Iterator["Engine._Item"]:
        """Yield one item for every pending unit (unless draining)."""
        if not pending:
            return
        attempts: Dict[int, int] = {}
        remaining = list(pending)
        workers = self.config.resolved_workers()
        if workers > 1 and len(remaining) > 1:
            for round_no in range(1 + self.config.retries):
                if not remaining or guard.draining:
                    break
                if round_no > 0:
                    self._backoff_sleep(round_no - 1, "pool-round")
                # _pool_round streams completed items as futures finish
                # (so each is journalled immediately) and returns the
                # indices needing another attempt plus permanent failures.
                retry, errors = yield from self._pool_round(
                    units, remaining, workers, attempts, guard
                )
                for i, exc in errors:
                    yield self._fail(i, exc, attempts)
                remaining = retry
            if guard.draining:
                return
            if remaining:
                self.stats.inline_fallbacks += len(remaining)
        for i in remaining:
            if guard.draining:
                return
            yield self._run_inline(i, units[i], attempts, guard)

    def _fail(
        self, index: int, exc: BaseException, attempts: Dict[int, int]
    ) -> "Engine._Item":
        """Apply the ``on_error`` policy to a permanently failed unit."""
        if self.config.on_error == "raise":
            raise exc
        error = UnitError.from_exception(exc, attempts.get(index, 1))
        return (index, None, 0.0, "error", error)

    def _run_inline(
        self, index: int, unit: WorkUnit, attempts: Dict[int, int], guard
    ) -> "Engine._Item":
        """Execute one unit in-process, retrying transient failures."""
        while True:
            attempt = attempts.get(index, 0)
            try:
                outcome = execute_unit(
                    index, unit, attempt, recorder=self.config.recorder
                )
            except Exception as exc:
                attempts[index] = attempt + 1
                if (
                    is_transient(exc)
                    and attempts[index] <= self.config.unit_retries
                    and not guard.draining
                ):
                    self.stats.retried += 1
                    self._backoff_sleep(attempt, f"unit-{unit.seed}")
                    continue
                return self._fail(index, exc, attempts)
            return (index, outcome.result, outcome.seconds, "inline", None)

    def _backoff_sleep(self, attempt: int, key: str) -> None:
        """Deterministic exponential backoff with jitter.

        Attempt ``k`` sleeps ``min(backoff_max, backoff_base * 2**k)``
        scaled by a jitter in ``[0.5, 1.0)`` derived from ``(key,
        attempt)`` — reproducible across processes and runs, unlike
        ``random.random()`` jitter.
        """
        delay = backoff_delay(
            attempt,
            key,
            base=self.config.backoff_base,
            maximum=self.config.backoff_max,
        )
        if delay > 0:
            time.sleep(delay)

    def _pool_round(
        self,
        units: Sequence[WorkUnit],
        pending: List[int],
        workers: int,
        attempts: Dict[int, int],
        guard,
    ) -> Iterator["Engine._Item"]:
        """One process-pool attempt over ``pending``.

        A *generator*: completed items are yielded as their futures
        finish — not collected until the round ends — so the caller
        journals each unit the moment it completes (the crash-safety
        contract of :mod:`repro.engine.journal`).  The return value
        (via ``yield from``) is ``(indices needing another attempt,
        permanent failures)``.  A pool that cannot even be created
        returns everything as needing another attempt — the caller's
        retry loop ends with in-process execution, so no unit is ever
        dropped.

        Every unit's deadline is measured from submission: the whole
        round is submitted at one instant and collected with
        :func:`concurrent.futures.wait`, so unit N's budget no longer
        compounds behind units 1..N-1 the way sequential
        ``future.result(timeout=...)`` calls did.
        """
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
        from concurrent.futures.process import BrokenProcessPool

        retry: List[int] = []
        errors: List[Tuple[int, BaseException]] = []
        injector = current_injector()
        try:
            if injector is not None:
                injector.on_pool_create()
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                initializer=pool_worker_init,
            )
        except (OSError, ValueError, ImportError):
            self.stats.pool_failures += 1
            return list(pending), errors
        broken = False
        abandoned = False  # timed-out/unfinished futures may still run
        try:
            try:
                futures = {
                    pool.submit(execute_unit, i, units[i], attempts.get(i, 0)): i
                    for i in pending
                }
            except BrokenProcessPool:
                self.stats.pool_failures += 1
                return list(pending), errors
            deadline = (
                None if self.config.timeout is None
                else time.monotonic() + self.config.timeout
            )
            not_done = set(futures)
            drain_cancelled = False
            while not_done and not broken:
                if guard.draining and not drain_cancelled:
                    # Drain: shed queued futures, keep in-flight ones.
                    still_running = set()
                    for future in not_done:
                        if future.cancel():
                            retry.append(futures[future])
                        else:
                            still_running.add(future)
                    not_done = still_running
                    drain_cancelled = True
                    continue
                slice_seconds = 0.2  # poll so drain signals are noticed
                if deadline is not None:
                    time_left = deadline - time.monotonic()
                    if time_left <= 0:
                        break
                    slice_seconds = min(slice_seconds, time_left)
                done, not_done = wait(
                    not_done, timeout=slice_seconds,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    i = futures[future]
                    if broken:
                        retry.append(i)
                        continue
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        self.stats.pool_failures += 1
                        broken = True
                        retry.append(i)
                    except Exception as exc:
                        attempts[i] = attempts.get(i, 0) + 1
                        if (
                            is_transient(exc)
                            and attempts[i] <= self.config.unit_retries
                        ):
                            self.stats.retried += 1
                            retry.append(i)
                        else:
                            errors.append((i, exc))
                    else:
                        yield (i, outcome.result, outcome.seconds, "pool", None)
            # Leftovers: deadline expired (timeout per unit, measured
            # from submission) or the pool broke under them.
            for future in not_done:
                i = futures[future]
                cancelled = future.cancel()
                if not broken and not guard.draining:
                    self.stats.timeouts += 1
                if not cancelled:
                    abandoned = True
                retry.append(i)
        finally:
            # A broken pool or a still-running abandoned unit must not
            # block shutdown; leave those processes to die on their own.
            wait_for_workers = not (broken or abandoned)
            try:
                pool.shutdown(wait=wait_for_workers, cancel_futures=True)
            except TypeError:  # pragma: no cover - Python < 3.9
                pool.shutdown(wait=wait_for_workers)
        return retry, errors
