"""The execution engine: scheduler + cache + fault handling.

:class:`Engine` turns a batch of :class:`~repro.engine.units.WorkUnit`
into :class:`UnitResult` records, in input order, using

* a ``ProcessPoolExecutor`` sized by :class:`EngineConfig` (env override
  ``REPRO_ENGINE_WORKERS``; ``0``/``1`` means in-process execution),
* the content-addressed :class:`~repro.engine.cache.ResultCache` (keys
  include ``repro.__version__``, so version bumps invalidate),
* per-unit timeout and retry, degrading gracefully to in-process
  execution whenever the pool cannot be created or breaks mid-run.

Determinism: every unit carries its own seed and results are folded back
by input index, so a batch produces bit-identical cuts whether it runs
sequentially, on 4 workers, or half-and-half after a pool failure.
"""

from __future__ import annotations

import os
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..partition import BipartitionResult
from .cache import ResultCache, default_cache_dir
from .units import WorkUnit, unit_key
from .workers import execute_unit

#: Environment variable overriding the default worker count.
WORKERS_ENV = "REPRO_ENGINE_WORKERS"


def default_workers() -> int:
    """Worker count from ``REPRO_ENGINE_WORKERS``, else ``os.cpu_count()``."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV}={raw!r} is not an integer"
            ) from None
    return os.cpu_count() or 1


@dataclass(frozen=True)
class EngineConfig:
    """All engine knobs.

    Attributes
    ----------
    workers:
        Process-pool size; ``None`` defers to ``REPRO_ENGINE_WORKERS``
        (default ``os.cpu_count()``).  ``0`` or ``1`` executes in-process.
    cache_dir:
        Result-cache directory; ``None`` defers to ``REPRO_ENGINE_CACHE``
        (default ``.repro_cache/``).
    use_cache:
        Master switch for the result cache.
    timeout:
        Per-unit wall-clock budget in seconds for pool execution; a unit
        exceeding it is retried and ultimately re-run in-process.
        ``None`` disables the budget.
    retries:
        Extra pool attempts for a unit that timed out or whose pool
        broke, before degrading to in-process execution.
    version:
        Code version mixed into cache keys; defaults to
        ``repro.__version__``.  Exposed for tests and cache migration.
    progress:
        Default progress callback (see :class:`ProgressEvent`); the
        per-call argument of :meth:`Engine.run` takes precedence.
    """

    workers: Optional[int] = None
    cache_dir: Optional[str] = None
    use_cache: bool = True
    timeout: Optional[float] = None
    retries: int = 1
    version: Optional[str] = None
    progress: Optional[Callable[["ProgressEvent"], None]] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")

    def resolved_workers(self) -> int:
        """The effective pool size after env defaults."""
        return default_workers() if self.workers is None else self.workers


@dataclass(frozen=True)
class UnitResult:
    """One executed (or cache-served) work unit."""

    unit: WorkUnit
    index: int
    result: BipartitionResult
    seconds: float
    cached: bool = False
    source: str = "inline"  # "pool" | "inline" | "cache"


@dataclass(frozen=True)
class ProgressEvent:
    """Fired after every unit completes (in completion order)."""

    done: int
    total: int
    latest: UnitResult


@dataclass
class EngineStats:
    """Counters accumulated over an engine's lifetime."""

    executed: int = 0
    pool_executed: int = 0
    cache_hits: int = 0
    timeouts: int = 0
    pool_failures: int = 0
    inline_fallbacks: int = 0

    def reset(self) -> None:
        """Zero every counter (e.g. between measurement windows)."""
        self.executed = self.pool_executed = self.cache_hits = 0
        self.timeouts = self.pool_failures = self.inline_fallbacks = 0


class Engine:
    """Parallel work-unit executor with result cache and fault handling.

    Usage::

        engine = Engine(EngineConfig(workers=4))
        results = engine.run(units)           # List[UnitResult], unit order

    The engine is stateless between :meth:`run` calls apart from
    :attr:`stats` and the on-disk cache; pools are created per call and
    torn down afterwards, so an Engine can be kept around for the whole
    life of a program (or a test session) without leaking processes.
    """

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()
        self.stats = EngineStats()
        if self.config.version is not None:
            self._version = self.config.version
        else:
            from .. import __version__

            self._version = __version__
        self.cache: Optional[ResultCache] = None
        if self.config.use_cache:
            root = self.config.cache_dir or default_cache_dir()
            self.cache = ResultCache(root=root, version=self._version)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        units: Sequence[WorkUnit],
        progress: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> List[UnitResult]:
        """Execute every unit; results come back in input order.

        Cache hits are served first (and never scheduled); misses go to
        the process pool when more than one worker is configured, else
        they run in-process.  Pool faults (creation failure, broken pool,
        per-unit timeout after retries) degrade to in-process execution —
        the batch always completes with exactly one result per unit.
        """
        units = list(units)
        total = len(units)
        callback = progress or self.config.progress
        done = 0

        def emit(unit_result: UnitResult) -> None:
            nonlocal done
            done += 1
            if callback is not None:
                callback(ProgressEvent(done=done, total=total, latest=unit_result))

        results: List[Optional[UnitResult]] = [None] * total
        keys: List[Optional[str]] = [None] * total
        pending: List[int] = []
        for i, unit in enumerate(units):
            if self.cache is not None:
                keys[i] = unit_key(unit, self._version)
                hit = self.cache.get(keys[i])
                # Audit does not change results, so audited and unaudited
                # runs share a cache key — but a unit *requesting* an audit
                # wants the invariants actually checked, so an unaudited
                # record is not good enough and the unit re-executes
                # (overwriting the record with an audited one).
                if (
                    hit is not None
                    and unit.audit is not None
                    and not hit.stats.get("audited")
                ):
                    hit = None
                if hit is not None:
                    self.stats.cache_hits += 1
                    results[i] = UnitResult(
                        unit=unit,
                        index=i,
                        result=hit,
                        seconds=hit.runtime_seconds,
                        cached=True,
                        source="cache",
                    )
                    emit(results[i])
                    continue
            pending.append(i)

        for i, outcome_result, seconds, source in self._execute(units, pending):
            self.stats.executed += 1
            if source == "pool":
                self.stats.pool_executed += 1
            if self.cache is not None and keys[i] is not None:
                self.cache.put(keys[i], outcome_result)
            results[i] = UnitResult(
                unit=units[i],
                index=i,
                result=outcome_result,
                seconds=seconds,
                cached=False,
                source=source,
            )
            emit(results[i])

        return [r for r in results if r is not None]

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _execute(
        self, units: Sequence[WorkUnit], pending: List[int]
    ) -> Iterator[Tuple[int, BipartitionResult, float, str]]:
        """Yield ``(index, result, seconds, source)`` for every pending unit."""
        if not pending:
            return
        workers = self.config.resolved_workers()
        if workers > 1 and len(pending) > 1:
            remaining = pending
            for _ in range(1 + self.config.retries):
                if not remaining:
                    break
                executed, remaining = self._pool_round(units, remaining, workers)
                for item in executed:
                    yield item
            if not remaining:
                return
            self.stats.inline_fallbacks += len(remaining)
            pending = remaining
        for i in pending:
            outcome = execute_unit(i, units[i])
            yield i, outcome.result, outcome.seconds, "inline"

    def _pool_round(
        self, units: Sequence[WorkUnit], pending: List[int], workers: int
    ) -> Tuple[List[Tuple[int, BipartitionResult, float, str]], List[int]]:
        """One process-pool attempt over ``pending``.

        Returns (completed items, indices needing another attempt).  A
        pool that cannot even be created returns everything as needing
        another attempt — the caller's retry loop ends with in-process
        execution, so no unit is ever dropped.
        """
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        completed: List[Tuple[int, BipartitionResult, float, str]] = []
        failed: List[int] = []
        try:
            pool = ProcessPoolExecutor(max_workers=min(workers, len(pending)))
        except (OSError, ValueError, ImportError):
            self.stats.pool_failures += 1
            return completed, list(pending)
        broken = False
        timed_out = False
        try:
            try:
                futures = {
                    i: pool.submit(execute_unit, i, units[i]) for i in pending
                }
            except BrokenProcessPool:
                self.stats.pool_failures += 1
                return completed, list(pending)
            for i, future in futures.items():
                if broken:
                    future.cancel()
                    failed.append(i)
                    continue
                try:
                    outcome = future.result(timeout=self.config.timeout)
                except FutureTimeoutError:
                    self.stats.timeouts += 1
                    timed_out = True
                    future.cancel()
                    failed.append(i)
                except BrokenProcessPool:
                    self.stats.pool_failures += 1
                    broken = True
                    failed.append(i)
                else:
                    completed.append(
                        (i, outcome.result, outcome.seconds, "pool")
                    )
        finally:
            # A broken pool or a still-running timed-out unit must not
            # block shutdown; leave those processes to die on their own.
            wait = not (broken or timed_out)
            try:
                pool.shutdown(wait=wait, cancel_futures=True)
            except TypeError:  # pragma: no cover - Python < 3.9
                pool.shutdown(wait=wait)
        return completed, failed
