"""``repro.engine`` — parallel experiment-execution engine.

The paper's evaluation protocol (Sec. 4: best cut over N runs from random
initial partitions, for every circuit × algorithm pair) is embarrassingly
parallel: each run is an independent, independently-seeded
:class:`WorkUnit`.  This package schedules those units onto a process
pool, memoizes finished runs in a content-addressed on-disk cache, and
degrades gracefully to in-process execution when a pool is unavailable —
while guaranteeing bit-identical results to the sequential harness.

Robustness (see ``docs/robustness.md``): transient failures retry with
deterministic backoff, permanent ones can be collected per unit instead
of aborting the batch (``on_error='collect'``), cache records carry
integrity checksums, journalled runs (``run_id=``) survive crashes and
signals and resume without recomputing completed units, and the whole
failure surface is exercised by the seeded fault injector of
:mod:`repro.faults`.

Quick start::

    from repro.engine import Engine, EngineConfig, WorkUnit

    engine = Engine(EngineConfig(workers=4))
    units = [WorkUnit(graph, PropPartitioner(), seed=s) for s in range(20)]
    best = min(engine.run(units), key=lambda r: r.result.cut)

Higher layers rarely touch units directly: ``run_many(..., engine=engine)``
(or ``parallel=True``), ``run_table2(..., engine=engine)`` and
``sweep_prop_config(..., engine=engine)`` fan their grids through an
engine for you.  See ``docs/engine.md`` for architecture, cache layout,
and determinism guarantees.
"""

from .cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultCache,
    VerifyReport,
    default_cache_dir,
)
from .engine import (
    ON_ERROR_POLICIES,
    WORKERS_ENV,
    Engine,
    EngineConfig,
    EngineStats,
    ProgressEvent,
    UnitError,
    UnitResult,
    backoff_delay,
    default_workers,
)
from .journal import RunJournal, journal_path, list_runs, validate_run_id
from .records import (
    RECORD_FORMAT,
    checksum_ok,
    decode_result,
    encode_result,
    record_checksum,
)
from .signals import CancelToken, SignalGuard
from .units import (
    WorkUnit,
    balance_fingerprint,
    hypergraph_fingerprint,
    partitioner_fingerprint,
    seed_stream,
    unit_key,
)
from .workers import WorkerOutcome, execute_unit, pool_worker_init

__all__ = [
    "Engine",
    "EngineConfig",
    "EngineStats",
    "ProgressEvent",
    "UnitResult",
    "UnitError",
    "ON_ERROR_POLICIES",
    "WorkUnit",
    "WorkerOutcome",
    "execute_unit",
    "pool_worker_init",
    "backoff_delay",
    "seed_stream",
    "unit_key",
    "hypergraph_fingerprint",
    "partitioner_fingerprint",
    "balance_fingerprint",
    "ResultCache",
    "CacheStats",
    "VerifyReport",
    "default_cache_dir",
    "default_workers",
    "RunJournal",
    "journal_path",
    "list_runs",
    "validate_run_id",
    "SignalGuard",
    "CancelToken",
    "RECORD_FORMAT",
    "encode_result",
    "decode_result",
    "record_checksum",
    "checksum_ok",
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "WORKERS_ENV",
]
