"""Content-addressed on-disk result cache.

Layout: one JSON record per completed work unit under

    <cache_dir>/<key[:2]>/<key>.json

where ``key`` is :func:`repro.engine.units.unit_key` — a sha256 over the
code version and the unit's four inputs (hypergraph, partitioner config,
balance, seed).  Because the version participates in the key, bumping
``repro.__version__`` invalidates every existing record without any
explicit cleanup; stale records are simply never addressed again (use
:meth:`ResultCache.clear` to reclaim the disk space).

Integrity: records are written atomically (tmp file + rename) and carry
an embedded sha256 over their own canonical JSON (see
:mod:`repro.engine.records`).  Reads verify the checksum, so a torn
write, bit rot, truncation or a hostile edit reads as a clean miss —
the record is deleted and the unit recomputes, never silently serving a
wrong cut.  ``repro cache verify`` runs the same check over the whole
store.  The cache is best-effort by contract: no I/O failure (unwritable
directory, full disk, non-serializable stats) ever aborts the run; it
is counted in :attr:`CacheStats.errors` and the run continues uncached.

Fault sites for :mod:`repro.faults`: reads and writes consult the
active injector (``slow_io``, ``unwritable``, ``corrupt``/``truncate``),
which is how the chaos suite proves the guarantees above actually hold.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..faults import current_injector
from ..partition import BipartitionResult
from .records import (
    RECORD_FORMAT,
    checksum_ok,
    decode_result,
    encode_result,
    seal,
)

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_ENGINE_CACHE"

#: Default cache directory (relative to the working directory; gitignored).
DEFAULT_CACHE_DIR = ".repro_cache"


def default_cache_dir() -> str:
    """The cache directory honoring the ``REPRO_ENGINE_CACHE`` override."""
    return os.environ.get(CACHE_DIR_ENV, "").strip() or DEFAULT_CACHE_DIR


@dataclass
class CacheStats:
    """Hit/miss/write counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0

    def reset(self) -> None:
        """Zero every counter (e.g. between measurement windows)."""
        self.hits = self.misses = self.writes = self.errors = 0


@dataclass
class VerifyReport:
    """Outcome of a whole-store integrity scan (:meth:`ResultCache.verify`)."""

    scanned: int = 0
    ok: int = 0
    corrupt: int = 0
    removed: int = 0

    def summary(self) -> str:
        """One-line human-readable verdict (used by ``repro cache verify``)."""
        verdict = "all records verified" if self.corrupt == 0 else (
            f"{self.corrupt} corrupt record(s), {self.removed} removed"
        )
        return f"scanned {self.scanned} record(s): {self.ok} ok — {verdict}"


@dataclass
class ResultCache:
    """JSON result store addressed by work-unit content keys.

    Parameters
    ----------
    root:
        Cache directory; created lazily on first write.
    version:
        Code version mixed into every key by the caller (kept here only
        for record metadata / debugging — the key already encodes it).
    """

    root: Union[str, Path] = field(default_factory=default_cache_dir)
    version: str = ""
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if not self.version:
            from .. import __version__

            self.version = __version__

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """On-disk location of the record for ``key``."""
        return Path(self.root) / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[BipartitionResult]:
        """The cached result for ``key``, or ``None`` on a miss.

        Corrupt, truncated, checksum-mismatching or otherwise unreadable
        records count as misses and are deleted so they cannot shadow a
        future write.
        """
        injector = current_injector()
        if injector is not None:
            injector.on_cache_read(key)
        path = self.path_for(key)
        try:
            with open(path) as fh:
                record = json.load(fh)
            if not checksum_ok(record):
                raise ValueError(f"checksum mismatch for record {key}")
            result = decode_result(record)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            self.stats.errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: BipartitionResult) -> None:
        """Atomically persist ``result`` under ``key``.

        Best effort by contract: an unwritable cache directory, a full
        disk or a non-JSON-serializable ``result.stats`` disables
        persistence for this record — counted in :attr:`CacheStats.errors`
        — never the run.
        """
        path = self.path_for(key)
        try:
            # seal() serializes the record to checksum it, so it raises
            # on non-serializable stats too — keep it inside the guard.
            record = seal({
                "format": RECORD_FORMAT,
                "version": self.version,
                "key": key,
                **encode_result(result),
            })
            injector = current_injector()
            if injector is not None:
                injector.on_cache_write(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=str(path.parent)
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(record, fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, TypeError, ValueError):
            # OSError: unwritable/full disk.  TypeError/ValueError:
            # json.dump on non-serializable or circular result.stats.
            self.stats.errors += 1
            return
        self.stats.writes += 1
        if injector is not None:
            mode = injector.corruption_mode(key)
            if mode is not None:
                _damage_record(path, mode)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def _record_paths(self):
        root = Path(self.root)
        if not root.is_dir():
            return
        for shard in sorted(root.iterdir()):
            if not shard.is_dir() or shard.name == "runs":
                continue
            yield from sorted(shard.glob("*.json"))

    def verify(self, remove: bool = True) -> VerifyReport:
        """Integrity-scan every record; optionally delete corrupt ones.

        A record is corrupt when it fails to parse, fails its embedded
        checksum, or cannot be decoded into a result.  The scan is the
        same check :meth:`get` applies per key, run store-wide — the
        backing for the ``repro cache verify`` CLI.
        """
        report = VerifyReport()
        for path in self._record_paths():
            report.scanned += 1
            try:
                with open(path) as fh:
                    record = json.load(fh)
                if not checksum_ok(record):
                    raise ValueError("checksum mismatch")
                decode_result(record)
            except (OSError, ValueError, KeyError, TypeError):
                report.corrupt += 1
                if remove:
                    try:
                        path.unlink()
                        report.removed += 1
                    except OSError:
                        pass
            else:
                report.ok += 1
        return report

    def clear(self) -> int:
        """Delete every record; returns the number of files removed."""
        removed = 0
        root = Path(self.root)
        if not root.is_dir():
            return 0
        for shard in root.iterdir():
            if not shard.is_dir() or shard.name == "runs":
                continue
            for record in shard.glob("*.json"):
                try:
                    record.unlink()
                    removed += 1
                except OSError:
                    pass
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed


def _damage_record(path: Path, mode: str) -> None:
    """Damage a just-written record in place (fault injection only).

    ``truncate`` keeps the first half of the bytes (a torn write);
    ``corrupt`` overwrites a slice in the middle (bit rot).  Either way
    the record must later read as a miss — that is what the chaos suite
    asserts.
    """
    try:
        data = path.read_bytes()
        if mode == "truncate":
            path.write_bytes(data[: len(data) // 2])
        else:
            middle = max(1, len(data) // 2)
            garbled = data[:middle] + b"\x00#corrupt#\x00" + data[middle + 12:]
            path.write_bytes(garbled)
    except OSError:  # pragma: no cover - damage is itself best-effort
        pass
