"""Content-addressed on-disk result cache.

Layout: one JSON record per completed work unit under

    <cache_dir>/<key[:2]>/<key>.json

where ``key`` is :func:`repro.engine.units.unit_key` — a sha256 over the
code version and the unit's four inputs (hypergraph, partitioner config,
balance, seed).  Because the version participates in the key, bumping
``repro.__version__`` invalidates every existing record without any
explicit cleanup; stale records are simply never addressed again (use
:meth:`ResultCache.clear` to reclaim the disk space).

Records are written atomically (tmp file + rename) so a crashed or
interrupted run can never leave a half-written record that would poison
later reads; unreadable records are treated as misses and removed.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..partition import BipartitionResult

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_ENGINE_CACHE"

#: Default cache directory (relative to the working directory; gitignored).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Record format version, bumped if the JSON layout itself ever changes.
RECORD_FORMAT = 1


def default_cache_dir() -> str:
    """The cache directory honoring the ``REPRO_ENGINE_CACHE`` override."""
    return os.environ.get(CACHE_DIR_ENV, "").strip() or DEFAULT_CACHE_DIR


@dataclass
class CacheStats:
    """Hit/miss/write counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0

    def reset(self) -> None:
        """Zero every counter (e.g. between measurement windows)."""
        self.hits = self.misses = self.writes = self.errors = 0


@dataclass
class ResultCache:
    """JSON result store addressed by work-unit content keys.

    Parameters
    ----------
    root:
        Cache directory; created lazily on first write.
    version:
        Code version mixed into every key by the caller (kept here only
        for record metadata / debugging — the key already encodes it).
    """

    root: Union[str, Path] = field(default_factory=default_cache_dir)
    version: str = ""
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if not self.version:
            from .. import __version__

            self.version = __version__

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """On-disk location of the record for ``key``."""
        return Path(self.root) / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[BipartitionResult]:
        """The cached result for ``key``, or ``None`` on a miss.

        Corrupt or unreadable records count as misses and are deleted so
        they cannot shadow a future write.
        """
        path = self.path_for(key)
        try:
            with open(path) as fh:
                record = json.load(fh)
            result = BipartitionResult(
                sides=list(record["sides"]),
                cut=float(record["cut"]),
                algorithm=record.get("algorithm", ""),
                seed=record.get("seed"),
                passes=int(record.get("passes", 0)),
                runtime_seconds=float(record.get("runtime_seconds", 0.0)),
                stats=dict(record.get("stats", {})),
                pass_cuts=list(record.get("pass_cuts", [])),
            )
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            self.stats.errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: BipartitionResult) -> None:
        """Atomically persist ``result`` under ``key`` (best effort:
        an unwritable cache directory disables persistence, not the run)."""
        path = self.path_for(key)
        record = {
            "format": RECORD_FORMAT,
            "version": self.version,
            "key": key,
            "algorithm": result.algorithm,
            "seed": result.seed,
            "cut": result.cut,
            "sides": list(result.sides),
            "passes": result.passes,
            "runtime_seconds": result.runtime_seconds,
            "stats": result.stats,
            "pass_cuts": list(result.pass_cuts),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=str(path.parent)
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(record, fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            self.stats.errors += 1
            return
        self.stats.writes += 1

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def clear(self) -> int:
        """Delete every record; returns the number of files removed."""
        removed = 0
        root = Path(self.root)
        if not root.is_dir():
            return 0
        for shard in root.iterdir():
            if not shard.is_dir():
                continue
            for record in shard.glob("*.json"):
                try:
                    record.unlink()
                    removed += 1
                except OSError:
                    pass
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed
