"""Intra-instance parallelism over ``multiprocessing.shared_memory``.

The experiment engine (:mod:`repro.engine.engine`) parallelizes *across*
work units; this module parallelizes *within* one instance: the
sub-round kernels of :mod:`repro.kernels.subround` are pure functions
over contiguous ranges, so N workers each computing a fixed net-range
(side products) and node-range (gains) produce bit-identical results to
one inline sweep — the coordinator only chooses how the ranges are cut,
never what they contain.

One :class:`SubroundPool` owns exactly one shared segment holding the
static CSR arrays (written once — workers attach instead of unpickling a
hypergraph per command) plus the mutable per-round inputs
(probabilities, sides, locks, pin counts) and the outputs (products,
gains).  Commands travel over per-worker pipes in two phases per PROP
round — ``prods`` (all net products) then, after every worker has
acknowledged, ``gains`` — because the gain of a node reads the products
of *other* workers' nets; FM needs a single ``fm`` phase.

Failure model: any worker death, pipe error or command timeout raises
:class:`PoolError`; the engine responds by closing the pool (terminate,
join, **unlink**) and continuing inline — results are unaffected because
inline and pooled sweeps are bit-identical.  :meth:`SubroundPool.close`
is idempotent and always unlinks the segment, also via ``atexit`` as a
last resort, so ``/dev/shm`` never leaks (chaos-tested in
``tests/faults/test_shm.py``).  Workers re-attaching a named segment
must unregister it from their ``resource_tracker`` — the creator owns
cleanup; without this, each worker's tracker would unlink the segment on
exit and spam leak warnings (Python < 3.13 has no ``track=False``).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "PoolError",
    "SubroundPool",
    "attach_arrays",
    "pool_supported",
    "segment_layout",
]

#: Seconds the coordinator waits for a worker acknowledgement before
#: declaring the pool dead (an injected ``hang`` lands here).
COMMAND_TIMEOUT_ENV = "REPRO_SUBROUND_TIMEOUT"
DEFAULT_COMMAND_TIMEOUT = 30.0

_ALIGN = 64


class PoolError(RuntimeError):
    """A worker died, hung past the timeout, or the pipe broke."""


def pool_supported() -> bool:
    """Whether a worker pool can exist in this process.

    Daemonic processes (e.g. experiment-engine pool workers) cannot fork
    children; platforms without the ``fork`` start method would re-import
    and re-execute on spawn, which the pipe protocol does not support.
    """
    if multiprocessing.current_process().daemon:
        return False
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


def segment_layout(
    num_nodes: int, num_nets: int, num_pins: int
) -> Tuple[List[Tuple[str, str, int, int]], int]:
    """``([(name, dtype, length, byte_offset), ...], total_bytes)``.

    Field order is static CSR first (written once), then per-round
    inputs, then outputs; every field is 64-byte aligned so no two
    workers' output ranges share a cache line boundary mid-element.
    """
    n, e, m = num_nodes, num_nets, num_pins
    fields = [
        # -- static CSR (see repro.kernels.csr.CsrView) --
        ("pin_node", np.dtype(np.intp), m),
        ("pin_net", np.dtype(np.intp), m),
        ("net_offset", np.dtype(np.intp), e + 1),
        ("net_size", np.dtype(np.float64), e),
        ("nm_net", np.dtype(np.intp), m),
        ("nm_owner", np.dtype(np.intp), m),
        ("nm_cost", np.dtype(np.float64), m),
        ("node_offset", np.dtype(np.intp), n + 1),
        # -- per-round inputs (coordinator writes, workers read) --
        ("p", np.dtype(np.float64), n),
        ("sides", np.dtype(np.int8), n),
        ("locked", np.dtype(np.bool_), n),
        ("counts0", np.dtype(np.int64), e),
        ("counts1", np.dtype(np.int64), e),
        # -- outputs (each worker writes only its own range) --
        ("prod0", np.dtype(np.float64), e),
        ("prod1", np.dtype(np.float64), e),
        ("count1", np.dtype(np.float64), e),
        ("gains", np.dtype(np.float64), n),
    ]
    layout = []
    offset = 0
    for name, dtype, length in fields:
        layout.append((name, dtype.str, length, offset))
        nbytes = dtype.itemsize * length
        offset += (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
    return layout, max(offset, 1)


def attach_arrays(buf, layout) -> Dict[str, np.ndarray]:
    """ndarray views over one shared buffer, per :func:`segment_layout`."""
    return {
        name: np.ndarray(
            (length,), dtype=np.dtype(dtype), buffer=buf, offset=offset
        )
        for name, dtype, length, offset in layout
    }


def _worker_main(conn, shm_name, layout, worker_id, net_range, node_range):
    """Worker loop: attach the segment, serve commands until ``exit``.

    Runs in a forked child.  The fault-injection site fires before each
    command is executed (crash/hang chaos — see
    :meth:`repro.faults.FaultInjector.on_subround_worker`).
    """
    t0 = time.perf_counter()
    try:
        from .workers import pool_worker_init

        pool_worker_init()
    except Exception:
        pass  # resource governance is best-effort; serve commands anyway
    try:
        shm = shared_memory.SharedMemory(name=shm_name)
    except Exception as exc:  # segment vanished before we attached
        try:
            conn.send(("fail", repr(exc)))
        except Exception:
            pass
        return
    # Fork children share the parent's resource-tracker process, and its
    # name cache is a set — our attach's re-register of the same name is
    # a no-op, and the creator's unlink() performs the one unregister.
    # (Do NOT unregister here: that would remove the parent's entry from
    # the shared tracker and break its cleanup accounting.)
    arr = attach_arrays(shm.buf, layout)
    elo, ehi = net_range
    vlo, vhi = node_range
    from ..faults import current_injector
    from ..kernels.subround import (
        fm_gains_range,
        prop_gains_range,
        prop_products_range,
    )

    try:
        conn.send(("ready", time.perf_counter() - t0))
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "exit":
                break
            round_id = msg[1]
            injector = current_injector()
            if injector is not None:
                injector.on_subround_worker(worker_id, round_id)
            if cmd == "prods":
                prop_products_range(
                    elo, ehi, arr["p"], arr["sides"],
                    arr["pin_node"], arr["pin_net"], arr["net_offset"],
                    arr["net_size"], arr["prod0"], arr["prod1"],
                    arr["count1"],
                )
                conn.send(("ok", 0))
            elif cmd == "gains":
                underflows = prop_gains_range(
                    vlo, vhi, arr["p"], arr["sides"], arr["locked"],
                    arr["prod0"], arr["prod1"], arr["count1"],
                    arr["net_size"], arr["nm_net"], arr["nm_owner"],
                    arr["nm_cost"], arr["node_offset"], arr["pin_node"],
                    arr["net_offset"], arr["gains"],
                )
                conn.send(("ok", underflows))
            elif cmd == "fm":
                fm_gains_range(
                    vlo, vhi, arr["sides"], arr["counts0"], arr["counts1"],
                    arr["nm_net"], arr["nm_owner"], arr["nm_cost"],
                    arr["node_offset"], arr["gains"],
                )
                conn.send(("ok", 0))
            else:
                conn.send(("fail", f"unknown command {cmd!r}"))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass
    finally:
        del arr  # release buffer views before closing the segment
        shm.close()
        conn.close()


class SubroundPool:
    """N forked workers attached read-write to one shared segment.

    The coordinator (the sub-round engine) writes the per-round inputs,
    broadcasts phase commands, and reads the outputs back; each worker
    writes only its own disjoint net/node output ranges, so no
    synchronization beyond the per-phase barrier is needed.
    """

    def __init__(self, csr, workers: int, timeout: Optional[float] = None):
        if workers < 1:
            raise ValueError(f"need at least 1 worker, got {workers}")
        if timeout is None:
            env = os.environ.get(COMMAND_TIMEOUT_ENV, "").strip()
            timeout = float(env) if env else DEFAULT_COMMAND_TIMEOUT
        self.workers = workers
        self.timeout = timeout
        self.attach_seconds = 0.0
        self._round = 0
        self._closed = False
        self._procs: List[multiprocessing.Process] = []
        self._conns = []

        from ..kernels.subround import split_ranges

        layout, size = segment_layout(
            csr.num_nodes, csr.num_nets, csr.num_pins
        )
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        atexit.register(self._atexit_close)
        self.arr = attach_arrays(self._shm.buf, layout)
        for name in (
            "pin_node", "pin_net", "net_offset", "net_size",
            "nm_net", "nm_owner", "nm_cost", "node_offset",
        ):
            np.copyto(self.arr[name], getattr(csr, name))

        ctx = multiprocessing.get_context("fork")
        net_ranges = split_ranges(csr.num_nets, workers)
        node_ranges = split_ranges(csr.num_nodes, workers)
        try:
            for wid in range(workers):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        child, self._shm.name, layout, wid,
                        net_ranges[wid], node_ranges[wid],
                    ),
                    name=f"subround-{wid}",
                    daemon=True,
                )
                proc.start()
                child.close()
                self._procs.append(proc)
                self._conns.append(parent)
            for wid, conn in enumerate(self._conns):
                kind, value = self._recv(wid, conn)
                if kind != "ready":
                    raise PoolError(f"worker {wid} failed to attach: {value}")
                self.attach_seconds += value
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Command protocol
    # ------------------------------------------------------------------
    def _recv(self, wid: int, conn):
        if not conn.poll(self.timeout):
            raise PoolError(f"worker {wid} timed out after {self.timeout}s")
        try:
            msg = conn.recv()
        except (EOFError, OSError) as exc:
            raise PoolError(f"worker {wid} pipe broke: {exc!r}") from exc
        if msg[0] == "fail":
            raise PoolError(f"worker {wid} reported: {msg[1]}")
        return msg

    def _broadcast(self, cmd: str) -> int:
        """Send ``cmd`` to every worker, await all acks; sum their returns."""
        if self._closed:
            raise PoolError("pool is closed")
        self._round += 1
        payload = (cmd, self._round)
        for wid, conn in enumerate(self._conns):
            try:
                conn.send(payload)
            except (BrokenPipeError, OSError) as exc:
                raise PoolError(f"worker {wid} pipe broke: {exc!r}") from exc
        total = 0
        for wid, conn in enumerate(self._conns):
            total += self._recv(wid, conn)[1]
        return total

    def prop_gains(self, p, sides, locked, prod0, prod1, count1, gains) -> int:
        """One PROP round: products then gains; returns underflow count.

        Copies the inputs in, runs both barrier phases, copies the
        outputs back out into the caller's arrays.
        """
        np.copyto(self.arr["p"], p)
        np.copyto(self.arr["sides"], sides)
        np.copyto(self.arr["locked"], locked)
        self._broadcast("prods")
        underflows = self._broadcast("gains")
        np.copyto(prod0, self.arr["prod0"])
        np.copyto(prod1, self.arr["prod1"])
        np.copyto(count1, self.arr["count1"])
        np.copyto(gains, self.arr["gains"])
        return underflows

    def fm_gains(self, sides, locked, counts0, counts1, gains) -> int:
        """One FM gain sweep across all workers."""
        np.copyto(self.arr["sides"], sides)
        np.copyto(self.arr["locked"], locked)
        np.copyto(self.arr["counts0"], counts0)
        np.copyto(self.arr["counts1"], counts1)
        self._broadcast("fm")
        np.copyto(gains, self.arr["gains"])
        return 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop workers and unlink the segment.  Idempotent; never raises."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():  # terminate ignored (e.g. injected hang)
                proc.kill()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._conns = []
        self._procs = []
        self.arr = {}  # release buffer views before close()
        try:
            self._shm.close()
        except Exception:
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass
        atexit.unregister(self._atexit_close)

    def _atexit_close(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "SubroundPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        self._atexit_close()
