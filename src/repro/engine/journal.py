"""Per-batch run journal: crash-safe progress log enabling resume.

One append-only JSONL file per run at

    <cache_dir>/runs/<run_id>.jsonl

First line is a header (run id, code version, unit count); every
subsequent line is one *completed* work unit — its cache key, seed/tag,
execution source and the full encoded result, sealed with the same
embedded sha256 as cache records (:mod:`repro.engine.records`).

Crash safety is append discipline: each unit is written as exactly one
``write()`` of one newline-terminated line, flushed and fsynced before
the engine moves on.  A run killed at any instant therefore leaves a
journal whose lines are all valid except possibly the torn last one,
which :meth:`RunJournal.load` skips (as it does any line failing its
checksum).  Resume reads the journal, serves every recorded unit
without recomputing it, and appends only the newly completed ones — so
``--resume`` after a SIGTERM, a crash or a power cut recomputes zero
finished units and yields bit-identical cuts to an uninterrupted run.

The journal is deliberately independent of the result cache: it works
with caching disabled, and unlike the content-addressed cache it scopes
completion to *this run*, which is what "skip what this batch already
did" needs.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import IO, Dict, Iterator, List, Optional

from .records import checksum_ok, seal

#: Subdirectory of the cache root holding run journals.
RUNS_SUBDIR = "runs"

#: Valid run identifiers: filesystem-safe, no path separators.
_RUN_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,128}\Z")  # \Z: '$' allows '\n'


def validate_run_id(run_id: str) -> str:
    """Reject run ids that would escape the runs directory."""
    if not _RUN_ID_RE.match(run_id):
        raise ValueError(
            f"bad run id {run_id!r} (letters, digits, '.', '_', '-' only)"
        )
    return run_id


def journal_path(cache_root: Path, run_id: str) -> Path:
    """Journal location for ``run_id`` under ``cache_root``."""
    return Path(cache_root) / RUNS_SUBDIR / f"{validate_run_id(run_id)}.jsonl"


class RunJournal:
    """Append-only completion log of one engine batch.

    Opened lazily on first append; writes are line-atomic (single
    ``write`` + flush + fsync).  All I/O errors are swallowed into
    :attr:`errors` — journalling, like caching, is best-effort and must
    never abort the batch it protects.
    """

    def __init__(self, path: Path, run_id: str, version: str = "") -> None:
        self.path = Path(path)
        self.run_id = run_id
        self.version = version
        self.errors = 0
        self.appended = 0
        self._fh: Optional[IO[str]] = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _write_line(self, record: dict) -> None:
        try:
            # seal() serializes the record to checksum it, so it raises
            # on non-serializable payloads too — keep it inside the guard.
            line = json.dumps(seal(record)) + "\n"
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "a")
            self._fh.write(line)
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except (OSError, TypeError, ValueError):
            self.errors += 1

    def ensure_header(self, total_units: int) -> None:
        """Write the header line when starting a fresh journal file."""
        try:
            exists = self.path.exists() and self.path.stat().st_size > 0
        except OSError:
            exists = False
        if exists:
            return
        self._write_line({
            "type": "header",
            "run_id": self.run_id,
            "version": self.version,
            "units": total_units,
        })

    def append_unit(self, key: str, unit, result_record: dict,
                    seconds: float, source: str) -> None:
        """Record one completed unit (call only after success)."""
        self._write_line({
            "type": "unit",
            "key": key,
            "seed": unit.seed,
            "tag": unit.tag,
            "seconds": seconds,
            "source": source,
            **result_record,
        })
        self.appended += 1

    def close(self) -> None:
        """Release the underlying file handle (appending may reopen it)."""
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                self.errors += 1
            self._fh = None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> Dict[str, dict]:
        """Completed-unit records by cache key.

        Tolerates a missing file (fresh run), torn trailing lines
        (killed mid-append) and checksum-failing lines (disk damage) —
        those units simply recompute.  Later lines win on duplicate
        keys, matching append order.
        """
        records: Dict[str, dict] = {}
        for record in iter_journal_records(self.path):
            if record.get("type") == "unit" and isinstance(
                record.get("key"), str
            ):
                records[record["key"]] = record
        return records


def iter_journal_records(path) -> Iterator[dict]:
    """Yield the checksum-valid records of a journal file, in order.

    The single journal-reading primitive, shared by resume
    (:meth:`RunJournal.load`) and by the trace summarizer
    (:mod:`repro.telemetry.summary`).  A missing file yields nothing;
    torn, garbled or checksum-failing lines are skipped silently —
    exactly the tolerance resume relies on after a crash.
    """
    try:
        with open(path) as fh:
            lines = fh.readlines()
    except OSError:
        return
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn or garbled line
        if isinstance(record, dict) and checksum_ok(record):
            yield record


def list_runs(cache_root: Path) -> List[str]:
    """Run ids with a journal under ``cache_root`` (newest last)."""
    runs_dir = Path(cache_root) / RUNS_SUBDIR
    if not runs_dir.is_dir():
        return []
    paths = sorted(
        runs_dir.glob("*.jsonl"), key=lambda p: (p.stat().st_mtime, p.name)
    )
    return [p.stem for p in paths]
