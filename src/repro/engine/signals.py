"""Graceful-shutdown signal handling for engine batches.

Contract (see ``docs/robustness.md``):

* **First** SIGINT/SIGTERM: the guard flips :attr:`SignalGuard.draining`.
  The engine stops scheduling new work, lets in-flight pool futures
  finish, journals everything completed, and returns partial results
  with :attr:`Engine.interrupted` set — nothing computed is lost, and
  a journalled run resumes with ``--resume``.
* **Second** signal: hard stop.  The guard restores the previous
  handlers and raises :class:`KeyboardInterrupt` out of whatever the
  engine was doing.

Handlers can only be installed from the main thread of the main
interpreter; anywhere else the guard degrades to inert (``draining``
stays ``False``) rather than failing, so library callers on worker
threads keep the old semantics.  Previous handlers are always restored
on exit, making the guard safe to nest around user code that installs
its own.
"""

from __future__ import annotations

import signal
import threading
from typing import Dict, Optional

#: Signals that trigger a graceful drain.
DRAIN_SIGNALS = (signal.SIGINT, signal.SIGTERM)


class _InertGuard:
    """Placeholder guard when signal handling is off: never draining."""

    draining = False
    signals_seen = 0

    def __enter__(self) -> "_InertGuard":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


#: Shared inert instance (stateless, safe to reuse).
INERT_GUARD = _InertGuard()


class CancelToken:
    """Thread-safe cooperative cancellation of one :meth:`Engine.run`.

    The programmatic twin of the first SIGINT/SIGTERM: flipping the
    token drains the batch — in-flight work finishes and is journalled,
    queued work is shed, :attr:`Engine.interrupted` is set — so a
    cancelled journalled run resumes later with zero recomputation.
    Built for callers driving the engine from another thread (the
    service layer cancels jobs this way); ``cancel()`` may be called
    from any thread, any number of times.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request a drain; idempotent and thread-safe."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()


class GuardWithCancel:
    """Compose a signal guard with a :class:`CancelToken`.

    Presents the guard interface the engine loops poll (``draining``)
    while delegating handler installation to the wrapped guard — the
    engine drains when *either* a signal or the token fires.
    """

    def __init__(self, inner, token: CancelToken) -> None:
        self._inner = inner
        self._token = token

    @property
    def draining(self) -> bool:
        return self._inner.draining or self._token.cancelled

    @property
    def signals_seen(self) -> int:
        return self._inner.signals_seen

    def __enter__(self) -> "GuardWithCancel":
        self._inner.__enter__()
        return self

    def __exit__(self, *exc_info) -> None:
        return self._inner.__exit__(*exc_info)


class SignalGuard:
    """Install drain-then-stop handlers for the duration of a batch."""

    def __init__(self) -> None:
        self.draining = False
        self.signals_seen = 0
        self._previous: Dict[int, object] = {}
        self._installed = False

    # ------------------------------------------------------------------
    def _handle(self, signum: int, frame: Optional[object]) -> None:
        self.signals_seen += 1
        if self.signals_seen == 1:
            self.draining = True
            return
        self._restore()
        raise KeyboardInterrupt(
            f"second signal ({signal.Signals(signum).name}): hard stop"
        )

    def _restore(self) -> None:
        if not self._installed:
            return
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (OSError, ValueError):  # pragma: no cover
                pass
        self._previous.clear()
        self._installed = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "SignalGuard":
        if threading.current_thread() is not threading.main_thread():
            return self  # inert off the main thread
        try:
            for signum in DRAIN_SIGNALS:
                self._previous[signum] = signal.signal(signum, self._handle)
            self._installed = True
        except (OSError, ValueError, RuntimeError):
            self._restore()
        return self

    def __exit__(self, *exc_info) -> None:
        self._restore()
