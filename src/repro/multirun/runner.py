"""Multi-start harness — the paper's Sec. 4 evaluation protocol.

Every table entry of the paper is "best cut over N runs from random initial
partitions": FM20/FM40/FM100, LA-2 with 20 or 40 runs, LA-3 with 20, PROP
with 20.  :func:`run_many` reproduces that protocol for any partitioner
object exposing ``partition(graph, balance=..., seed=...)`` and a ``name``.

Seeds are ``base_seed, base_seed+1, ...`` so any individual run can be
replayed in isolation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence

from ..hypergraph import Hypergraph
from ..partition import BalanceConstraint, BipartitionResult


class Partitioner(Protocol):
    """Anything the harness can drive (PROP, every baseline, ...)."""

    name: str

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,
        initial_sides: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> BipartitionResult:
        """Produce one bipartition of ``graph`` (see concrete classes)."""
        ...


@dataclass
class MultiRunResult:
    """Aggregate of N runs of one algorithm on one circuit."""

    algorithm: str
    circuit: str
    runs: int
    cuts: List[float] = field(default_factory=list)
    best: Optional[BipartitionResult] = None
    total_seconds: float = 0.0

    @property
    def best_cut(self) -> float:
        if self.best is None:
            raise ValueError("no runs recorded")
        return self.best.cut

    @property
    def mean_cut(self) -> float:
        if not self.cuts:
            raise ValueError("no runs recorded")
        return sum(self.cuts) / len(self.cuts)

    @property
    def worst_cut(self) -> float:
        if not self.cuts:
            raise ValueError("no runs recorded")
        return max(self.cuts)

    @property
    def seconds_per_run(self) -> float:
        if not self.cuts:
            raise ValueError("no runs recorded")
        return self.total_seconds / len(self.cuts)


def run_many(
    partitioner: Partitioner,
    graph: Hypergraph,
    runs: int,
    balance: Optional[BalanceConstraint] = None,
    base_seed: int = 0,
    circuit_name: str = "",
) -> MultiRunResult:
    """Run ``partitioner`` ``runs`` times with seeds base_seed..base_seed+runs-1.

    Deterministic algorithms (EIG1, MELO, PARABOLI) should be called with
    ``runs=1``; extra runs would only repeat the identical answer.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    result = MultiRunResult(
        algorithm=getattr(partitioner, "name", type(partitioner).__name__),
        circuit=circuit_name,
        runs=runs,
    )
    start = time.perf_counter()
    for i in range(runs):
        one = partitioner.partition(graph, balance=balance, seed=base_seed + i)
        result.cuts.append(one.cut)
        if result.best is None or one.cut < result.best.cut:
            result.best = one
    result.total_seconds = time.perf_counter() - start
    return result


#: Run counts used by the paper's tables, keyed by the table row label.
PAPER_RUN_COUNTS = {
    "FM100": 100,
    "FM40": 40,
    "FM20": 20,
    "LA-2": 20,
    "LA-2x40": 40,
    "LA-3": 20,
    "PROP": 20,
    "WINDOW": 1,  # WINDOW runs FM20 internally
    "EIG1": 1,
    "MELO": 1,
    "PARABOLI": 1,
}
