"""Multi-start harness — the paper's Sec. 4 evaluation protocol.

Every table entry of the paper is "best cut over N runs from random initial
partitions": FM20/FM40/FM100, LA-2 with 20 or 40 runs, LA-3 with 20, PROP
with 20.  :func:`run_many` reproduces that protocol for any partitioner
object exposing ``partition(graph, balance=..., seed=...)`` and a ``name``.

Seeds are ``base_seed, base_seed+1, ...`` so any individual run can be
replayed in isolation (:meth:`MultiRunResult.replay`).  The runs are
independent, so ``run_many(..., parallel=True)`` — or passing an explicit
:class:`repro.engine.Engine` — fans them across a process pool with
bit-identical results (see ``docs/engine.md``); the sequential loop
remains the default code path, which is the right choice for tiny runs
where pool startup would dominate.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Sequence

from ..hypergraph import Hypergraph
from ..partition import BalanceConstraint, BipartitionResult
from ..telemetry import collect_phase_seconds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine uses us)
    from ..analysis.ensembles import RestartPolicy
    from ..audit import AuditConfig
    from ..engine import Engine
    from ..telemetry import Recorder


class Partitioner(Protocol):
    """Anything the harness can drive (PROP, every baseline, ...)."""

    name: str

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,
        initial_sides: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> BipartitionResult:
        """Produce one bipartition of ``graph`` (see concrete classes)."""
        ...


@dataclass
class MultiRunResult:
    """Aggregate of N runs of one algorithm on one circuit.

    ``seeds[i]``, ``cuts[i]`` and ``run_seconds[i]`` describe run ``i``;
    ``total_seconds`` is the harness wall clock for the whole batch
    (including scheduling overhead), while ``run_seconds`` times only the
    partitioning calls themselves — so ``seconds_per_run`` is no longer
    skewed by harness overhead.  The source ``partitioner``/``graph``/
    ``balance`` are retained (when known) so :meth:`replay` can re-run a
    single seed for debugging or cache-key verification.

    Under an error-collecting engine (``EngineConfig(on_error='collect')``)
    failed runs land in ``errors`` (their ``UnitResult`` records, error
    attached) instead of aborting the batch; ``interrupted`` is set when
    a signal drained the batch early, in which case ``cuts`` covers only
    the completed runs (journalled runs resume via ``run_id``/``resume``).
    """

    algorithm: str
    circuit: str
    runs: int
    cuts: List[float] = field(default_factory=list)
    best: Optional[BipartitionResult] = None
    total_seconds: float = 0.0
    seeds: List[int] = field(default_factory=list)
    run_seconds: List[float] = field(default_factory=list)
    errors: List[object] = field(default_factory=list)
    interrupted: bool = False
    #: Why an adaptive restart policy ended the batch (``"converged"``,
    #: ``"target_reached"``, ``"budget_exhausted"``, ``"time_exhausted"``);
    #: ``None`` when no policy was attached or it never fired.
    stop_reason: Optional[str] = None
    #: Per-phase seconds summed over all runs (see
    #: :data:`repro.telemetry.PHASE_STAT_KEYS`); empty for results that
    #: predate phase timing.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    partitioner: Optional[Partitioner] = field(
        default=None, repr=False, compare=False
    )
    graph: Optional[Hypergraph] = field(default=None, repr=False, compare=False)
    balance: Optional[BalanceConstraint] = field(
        default=None, repr=False, compare=False
    )

    @property
    def best_cut(self) -> float:
        if self.best is None:
            raise ValueError("no runs recorded")
        return self.best.cut

    @property
    def mean_cut(self) -> float:
        if not self.cuts:
            raise ValueError("no runs recorded")
        return sum(self.cuts) / len(self.cuts)

    @property
    def worst_cut(self) -> float:
        if not self.cuts:
            raise ValueError("no runs recorded")
        return max(self.cuts)

    @property
    def completed_attempts(self) -> int:
        """Runs that ran to completion, successfully or not.

        Successful runs contribute a cut; failed runs (error-collecting
        engine) contribute an ``errors`` entry.  Both consumed wall
        clock, so this is the denominator for timing fallbacks.
        """
        return len(self.cuts) + len(self.errors)

    @property
    def seconds_per_run(self) -> float:
        """Mean seconds of one partitioning run.

        Prefers the per-run timings (pure partitioner compute); falls
        back to ``total_seconds / completed_attempts`` for results built
        before per-run timing existed (e.g. deserialized records).  The
        fallback divides by *all* completed attempts — ``total_seconds``
        includes the time spent in failed, error-collected runs, so
        dividing by successful runs alone would overstate per-run cost
        exactly when the engine collected errors.
        """
        if not self.cuts:
            raise ValueError("no runs recorded")
        if self.run_seconds:
            return sum(self.run_seconds) / len(self.run_seconds)
        return self.total_seconds / self.completed_attempts

    def replay(self, i: int) -> BipartitionResult:
        """Re-run run ``i`` (same seed, graph, balance) in isolation.

        The deterministic per-seed contract of every partitioner makes
        this reproduce ``cuts[i]`` exactly — the debugging workflow for
        "which run produced this outlier?", and the ground truth the
        engine's cache keys rely on.
        """
        if not self.seeds:
            raise ValueError("no seeds recorded (result predates seed tracking)")
        if not 0 <= i < len(self.seeds):
            raise IndexError(f"run index {i} out of range 0..{len(self.seeds) - 1}")
        if self.partitioner is None or self.graph is None:
            raise ValueError("source partitioner/graph not retained; cannot replay")
        return self.partitioner.partition(
            self.graph, balance=self.balance, seed=self.seeds[i]
        )


def effective_runs(partitioner: Partitioner, runs: int) -> int:
    """Clamp ``runs`` to 1 for deterministic partitioners (with a warning).

    EIG1, MELO and PARABOLI advertise ``deterministic = True``: they
    ignore the seed, so extra runs would only repeat the identical
    answer.  Callers that pass ``runs > 1`` anyway get one run and a
    ``UserWarning`` instead of silently wasted compute.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if runs > 1 and getattr(partitioner, "deterministic", False):
        name = getattr(partitioner, "name", type(partitioner).__name__)
        warnings.warn(
            f"{name} is deterministic: {runs} requested runs would produce "
            f"identical results; running once",
            UserWarning,
            stacklevel=3,
        )
        return 1
    return runs


def run_many(
    partitioner: Partitioner,
    graph: Hypergraph,
    runs: int,
    balance: Optional[BalanceConstraint] = None,
    base_seed: int = 0,
    circuit_name: str = "",
    parallel: bool = False,
    engine: Optional["Engine"] = None,
    audit: Optional["AuditConfig"] = None,
    run_id: Optional[str] = None,
    resume: bool = False,
    recorder: Optional["Recorder"] = None,
    policy: Optional["RestartPolicy"] = None,
) -> MultiRunResult:
    """Run ``partitioner`` ``runs`` times with seeds base_seed..base_seed+runs-1.

    ``parallel=True`` fans the runs across a process pool via an
    ephemeral :class:`repro.engine.Engine` (caching disabled — pass an
    explicit ``engine`` to control workers, cache and fault handling).
    Either way the cuts are bit-identical to the sequential path: the
    same seed stream is used and results are folded in seed order.

    ``audit`` attaches the invariant auditor of :mod:`repro.audit` to
    every run (partitioners without audit support get a warning and run
    unaudited).  Auditing never changes cuts; a violated invariant
    raises :class:`repro.audit.InvariantViolation` out of the batch.

    ``run_id`` journals the batch under ``<cache_dir>/runs/<run_id>.jsonl``
    (engine path only); ``resume=True`` serves units already recorded in
    that journal without recomputing them — the crash/interrupt recovery
    path (see ``docs/robustness.md``).  Runs that failed permanently
    under an error-collecting engine are folded into ``result.errors``
    rather than ``cuts``.

    Deterministic partitioners (``deterministic = True``: EIG1, MELO,
    PARABOLI) are short-circuited to a single run with a warning when
    ``runs > 1``.

    ``recorder`` attaches a :class:`repro.telemetry.Recorder` to every
    run — sequential path only, since recorders are not picklable
    (engine-path runs persist their phase timings through the result
    stats instead; a warning is issued and the recorder dropped).
    Partitioners without telemetry support likewise warn and run
    unrecorded.  Either way :attr:`MultiRunResult.phase_seconds`
    aggregates per-phase timings across the batch.

    ``policy`` attaches an adaptive restart policy (anything with a
    ``decide(cuts, elapsed_seconds)`` method returning a decision with
    ``stop``/``reason`` attributes — see
    :class:`repro.analysis.ensembles.RestartPolicy`).  The policy is
    consulted after every successful run on the cut prefix *in seed
    order*; when it says stop, no further runs are folded and
    :attr:`MultiRunResult.stop_reason` records why.  On the engine path
    the policy doubles as the engine's streaming ``stop_check`` (so
    unscheduled runs are actually shed), but the returned cuts are
    re-folded seed-by-seed with the policy re-evaluated on each prefix —
    pool stragglers that completed past the stopping point are
    discarded, making the incumbent and the stop decision bit-identical
    across worker counts, cache states and ``resume``.
    """
    runs = effective_runs(partitioner, runs)
    if audit is not None and not getattr(partitioner, "supports_audit", False):
        name = getattr(partitioner, "name", type(partitioner).__name__)
        warnings.warn(
            f"{name} does not support invariant auditing; running unaudited",
            UserWarning,
            stacklevel=2,
        )
        audit = None
    if recorder is not None and (engine is not None or parallel):
        warnings.warn(
            "telemetry recorders are not picklable; ignoring recorder for "
            "engine-path runs (phase timings still aggregate via stats)",
            UserWarning,
            stacklevel=2,
        )
        recorder = None
    if recorder is not None and not getattr(
        partitioner, "supports_telemetry", False
    ):
        name = getattr(partitioner, "name", type(partitioner).__name__)
        warnings.warn(
            f"{name} does not support telemetry; running unrecorded",
            UserWarning,
            stacklevel=2,
        )
        recorder = None
    result = MultiRunResult(
        algorithm=getattr(partitioner, "name", type(partitioner).__name__),
        circuit=circuit_name,
        runs=runs,
        partitioner=partitioner,
        graph=graph,
        balance=balance,
    )

    if engine is None and parallel:
        from ..engine import Engine, EngineConfig

        engine = Engine(EngineConfig(use_cache=False))

    start = time.perf_counter()
    if engine is not None:
        from ..engine import WorkUnit, seed_stream

        units = [
            WorkUnit(
                graph=graph,
                partitioner=partitioner,
                seed=seed,
                balance=balance,
                tag=circuit_name,
                audit=audit,
            )
            for seed in seed_stream(base_seed, runs)
        ]
        stop_check = None
        if policy is not None:
            # Streaming hint for the engine: stop scheduling once the
            # policy would stop on the in-order prefix.  This only sheds
            # compute — the authoritative decision is re-derived below.
            seen_cuts: List[float] = []
            seen_seconds = [0.0]

            def stop_check(unit_result: object) -> bool:
                if unit_result.error is not None:
                    return False
                seen_cuts.append(unit_result.result.cut)
                seen_seconds[0] += unit_result.seconds
                return policy.decide(seen_cuts, seen_seconds[0]).stop

        unit_results = engine.run(
            units, run_id=run_id, resume=resume, stop_check=stop_check
        )
        if policy is None:
            for unit_result in unit_results:
                if unit_result.error is not None:
                    result.errors.append(unit_result)
                    continue
                _record(result, unit_result.unit.seed, unit_result.result,
                        unit_result.seconds)
        else:
            # Authoritative fold: walk the contiguous completed prefix
            # in seed order, re-evaluating the policy after every
            # successful run.  Stragglers past the stopping point (or
            # past a drain gap) never enter the aggregate, so the
            # incumbent and stop decision are independent of completion
            # order.
            by_index = {u.index: u for u in unit_results}
            for idx in range(len(units)):
                unit_result = by_index.get(idx)
                if unit_result is None:
                    break  # drained before this unit completed
                if unit_result.error is not None:
                    result.errors.append(unit_result)
                    continue
                _record(result, unit_result.unit.seed, unit_result.result,
                        unit_result.seconds)
                decision = policy.decide(
                    result.cuts, sum(result.run_seconds)
                )
                if decision.stop:
                    result.stop_reason = decision.reason
                    break
        result.interrupted = engine.interrupted
    else:
        kwargs = {} if audit is None else {"audit": audit}
        if recorder is not None:
            kwargs["recorder"] = recorder
        for i in range(runs):
            seed = base_seed + i
            run_start = time.perf_counter()
            one = partitioner.partition(
                graph, balance=balance, seed=seed, **kwargs
            )
            _record(result, seed, one, time.perf_counter() - run_start)
            if policy is not None:
                decision = policy.decide(
                    result.cuts, sum(result.run_seconds)
                )
                if decision.stop:
                    result.stop_reason = decision.reason
                    break
    result.total_seconds = time.perf_counter() - start
    return result


def _record(
    result: MultiRunResult,
    seed: int,
    one: BipartitionResult,
    seconds: float,
) -> None:
    """Fold one run into the aggregate (keeps best-of-N invariants)."""
    result.seeds.append(seed)
    result.cuts.append(one.cut)
    result.run_seconds.append(seconds)
    for key, value in collect_phase_seconds(one.stats).items():
        result.phase_seconds[key] = result.phase_seconds.get(key, 0.0) + value
    if result.best is None or one.cut < result.best.cut:
        result.best = one


#: Run counts used by the paper's tables, keyed by the table row label.
PAPER_RUN_COUNTS = {
    "FM100": 100,
    "FM40": 40,
    "FM20": 20,
    "LA-2": 20,
    "LA-2x40": 40,
    "LA-3": 20,
    "PROP": 20,
    "WINDOW": 1,  # WINDOW runs FM20 internally
    "EIG1": 1,
    "MELO": 1,
    "PARABOLI": 1,
}
