"""Multi-start run protocol (best-of-N with sequential seeds)."""

from .runner import (
    PAPER_RUN_COUNTS,
    MultiRunResult,
    Partitioner,
    effective_runs,
    run_many,
)

__all__ = [
    "run_many",
    "MultiRunResult",
    "Partitioner",
    "PAPER_RUN_COUNTS",
    "effective_runs",
]
