"""Min-cut placement by recursive bisection.

The paper's introduction motivates 2-way min-cut partitioning as "a
fundamental tool for obtaining good VLSI cell placement"; this module is
that consumer: the classic Breuer-style min-cut placer.  The chip is a
rectangle; the netlist is recursively bisected (PROP by default), each
half assigned to a half-region, alternating cut direction with region
aspect ratio, until regions hold at most ``leaf_cells`` nodes, which are
then spread on a grid inside their region.

Quality is measured with the standard half-perimeter wirelength (HPWL);
``examples/placement_flow.py`` demonstrates that better partitioners
(PROP vs FM vs random) produce measurably shorter wirelength through this
flow — the indirect benefit the paper's Sec. 1 promises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core import PropPartitioner
from ..hypergraph import Hypergraph, induced_subhypergraph
from ..multirun.runner import Partitioner
from ..partition import BalanceConstraint, random_balanced_sides


@dataclass(frozen=True)
class Region:
    """An axis-aligned placement region (unit-square coordinates)."""

    x0: float
    y0: float
    x1: float
    y1: float

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    def split(self, vertical: bool) -> Tuple["Region", "Region"]:
        """Halve the region; vertical=True cuts with a vertical line."""
        if vertical:
            mid = (self.x0 + self.x1) / 2
            return (
                Region(self.x0, self.y0, mid, self.y1),
                Region(mid, self.y0, self.x1, self.y1),
            )
        mid = (self.y0 + self.y1) / 2
        return (
            Region(self.x0, self.y0, self.x1, mid),
            Region(self.x0, mid, self.x1, self.y1),
        )


@dataclass
class Placement:
    """Node coordinates inside the unit square, plus the source netlist."""

    graph: Hypergraph
    x: List[float]
    y: List[float]

    def position(self, node: int) -> Tuple[float, float]:
        """(x, y) coordinates of ``node``."""
        return self.x[node], self.y[node]

    def hpwl(self) -> float:
        """Total half-perimeter wirelength over all nets."""
        total = 0.0
        for net_id, pins in enumerate(self.graph.nets):
            if len(pins) < 2:
                continue
            xs = [self.x[v] for v in pins]
            ys = [self.y[v] for v in pins]
            total += self.graph.net_cost(net_id) * (
                (max(xs) - min(xs)) + (max(ys) - min(ys))
            )
        return total

    def net_hpwl(self, net_id: int) -> float:
        """Half-perimeter wirelength of one net."""
        pins = self.graph.net(net_id)
        xs = [self.x[v] for v in pins]
        ys = [self.y[v] for v in pins]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def check_in_bounds(self) -> None:
        """Assert all coordinates lie in the unit square (test helper)."""
        for v in range(self.graph.num_nodes):
            assert -1e-9 <= self.x[v] <= 1 + 1e-9, f"node {v} x out of square"
            assert -1e-9 <= self.y[v] <= 1 + 1e-9, f"node {v} y out of square"


def _spread_in_region(nodes: Sequence[int], region: Region, placement: Placement) -> None:
    """Grid-place leaf nodes inside their region (row-major)."""
    count = len(nodes)
    if count == 0:
        return
    cols = max(1, math.ceil(math.sqrt(count)))
    rows = max(1, math.ceil(count / cols))
    for idx, node in enumerate(nodes):
        r, c = divmod(idx, cols)
        placement.x[node] = region.x0 + region.width * (c + 0.5) / cols
        placement.y[node] = region.y0 + region.height * (r + 0.5) / rows


def mincut_placement(
    graph: Hypergraph,
    partitioner: Optional[Partitioner] = None,
    leaf_cells: int = 4,
    balance_tolerance: float = 0.1,
    seed: int = 0,
    terminal_propagation: bool = False,
) -> Placement:
    """Place ``graph`` in the unit square by recursive min-cut bisection.

    Parameters
    ----------
    partitioner:
        Inner 2-way engine (PROP by default); any library partitioner works.
    leaf_cells:
        Regions with at most this many nodes are grid-placed directly.
    balance_tolerance:
        Per-split fractional imbalance allowed (tighter -> squarer
        distribution, looser -> smaller cuts).
    terminal_propagation:
        Dunlop–Kernighan terminal propagation: nets crossing out of the
        current region pull their local pins toward the half-region
        nearest the external pins' current position estimates, so each
        bisection minimizes *wirelength*, not just the local cut.
    """
    if leaf_cells < 1:
        raise ValueError("leaf_cells must be >= 1")
    if not 0.0 < balance_tolerance < 1.0:
        raise ValueError("balance_tolerance must be in (0, 1)")
    if partitioner is None:
        partitioner = PropPartitioner()

    placement = Placement(
        graph=graph,
        x=[0.5] * graph.num_nodes,
        y=[0.5] * graph.num_nodes,
    )
    _place(
        graph,
        list(range(graph.num_nodes)),
        Region(0.0, 0.0, 1.0, 1.0),
        placement,
        partitioner,
        leaf_cells,
        balance_tolerance,
        seed,
        terminal_propagation,
    )
    return placement


def _place(
    graph: Hypergraph,
    nodes: List[int],
    region: Region,
    placement: Placement,
    partitioner: Partitioner,
    leaf_cells: int,
    tolerance: float,
    seed: int,
    terminals: bool = False,
) -> None:
    # Coarse position estimate for every node in this region (outside
    # observers — terminal propagation at sibling regions — read these).
    cx = (region.x0 + region.x1) / 2
    cy = (region.y0 + region.y1) / 2
    for v in nodes:
        placement.x[v] = cx
        placement.y[v] = cy

    if len(nodes) <= leaf_cells:
        _spread_in_region(nodes, region, placement)
        return

    vertical = region.width >= region.height
    left_region, right_region = region.split(vertical)

    if terminals:
        sides = _bisect_with_terminals(
            graph, nodes, placement, partitioner, tolerance, seed,
            left_region, right_region,
        )
    else:
        sides = _bisect_plain(graph, nodes, partitioner, tolerance, seed)

    left = [nodes[i] for i, s in enumerate(sides) if s == 0]
    right = [nodes[i] for i, s in enumerate(sides) if s == 1]
    _place(graph, left, left_region, placement, partitioner,
           leaf_cells, tolerance, seed * 2 + 1, terminals)
    _place(graph, right, right_region, placement, partitioner,
           leaf_cells, tolerance, seed * 2 + 2, terminals)


def _bisect_plain(
    graph: Hypergraph,
    nodes: List[int],
    partitioner: Partitioner,
    tolerance: float,
    seed: int,
) -> List[int]:
    """Local min-cut bisection, blind to the rest of the chip."""
    sub = induced_subhypergraph(graph, nodes)
    if sub.graph.num_nets == 0:
        # Degenerate pocket with no internal connectivity: any split works.
        return random_balanced_sides(sub.graph, seed)
    balance = BalanceConstraint.from_fractions(
        sub.graph, 0.5 - tolerance / 2, 0.5 + tolerance / 2
    )
    return partitioner.partition(sub.graph, balance=balance, seed=seed).sides


def _bisect_with_terminals(
    graph: Hypergraph,
    nodes: List[int],
    placement: Placement,
    partitioner: Partitioner,
    tolerance: float,
    seed: int,
    left_region: Region,
    right_region: Region,
) -> List[int]:
    """Bisection with Dunlop–Kernighan terminal propagation.

    Two immovable *anchor* nodes represent the two half-regions; every net
    crossing out of the region gains a pin on the anchor whose half-region
    center is nearer the external pins' current position estimate.
    Anchors are pinned by weight: heavier than the balance window, so no
    feasible move can relocate them.
    """
    sub = induced_subhypergraph(graph, nodes, keep_dangling=True)
    node_set = set(nodes)
    n_real = sub.graph.num_nodes

    real_total = sum(graph.node_weight(v) for v in nodes)
    tol_abs = max(
        tolerance * real_total / 2.0,
        max(graph.node_weight(v) for v in nodes),
    )
    anchor_weight = 2.0 * tol_abs + 1.0

    centers = (
        ((left_region.x0 + left_region.x1) / 2,
         (left_region.y0 + left_region.y1) / 2),
        ((right_region.x0 + right_region.x1) / 2,
         (right_region.y0 + right_region.y1) / 2),
    )

    nets: List[List[int]] = []
    costs: List[float] = []
    anchor0, anchor1 = n_real, n_real + 1
    for sub_net_id, pins in enumerate(sub.graph.nets):
        parent_id = sub.net_to_parent[sub_net_id]
        parent_pins = graph.net(parent_id)
        outside = [v for v in parent_pins if v not in node_set]
        new_pins = list(pins)
        if outside:
            ox = sum(placement.x[v] for v in outside) / len(outside)
            oy = sum(placement.y[v] for v in outside) / len(outside)
            dist0 = (ox - centers[0][0]) ** 2 + (oy - centers[0][1]) ** 2
            dist1 = (ox - centers[1][0]) ** 2 + (oy - centers[1][1]) ** 2
            new_pins.append(anchor0 if dist0 <= dist1 else anchor1)
        if len(new_pins) >= 2:
            nets.append(new_pins)
            costs.append(sub.graph.net_cost(sub_net_id))

    anchored = Hypergraph(
        nets,
        num_nodes=n_real + 2,
        net_costs=costs,
        node_weights=list(sub.graph.node_weights)
        + [anchor_weight, anchor_weight],
    )
    if anchored.num_nets == 0:
        return random_balanced_sides(sub.graph, seed)

    # Each side holds one anchor plus half the real weight (± tolerance).
    balance = BalanceConstraint(
        lo=anchor_weight + real_total / 2.0 - tol_abs,
        hi=anchor_weight + real_total / 2.0 + tol_abs,
        total=anchored.total_node_weight,
    )
    initial = random_balanced_sides(sub.graph, seed) + [0, 1]
    result = partitioner.partition(
        anchored, balance=balance, initial_sides=initial, seed=seed
    )
    # Anchors cannot have moved (their weight exceeds the window)...
    assert result.sides[anchor0] == 0 and result.sides[anchor1] == 1
    return result.sides[:n_real]


def random_placement(graph: Hypergraph, seed: int = 0) -> Placement:
    """Uniform-random placement — the wirelength baseline."""
    import random as _random

    rng = _random.Random(seed)
    return Placement(
        graph=graph,
        x=[rng.random() for _ in range(graph.num_nodes)],
        y=[rng.random() for _ in range(graph.num_nodes)],
    )
