"""Min-cut placement — the paper's Sec. 1 motivating application."""

from .mincut import (
    Placement,
    Region,
    mincut_placement,
    random_placement,
)

__all__ = ["mincut_placement", "random_placement", "Placement", "Region"]
