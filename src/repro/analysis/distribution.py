"""Run-distribution statistics and convergence analysis.

The paper's protocol (Sec. 4) reports only the best cut of N runs, but
two distributional facts drive its conclusions: FM has high run-to-run
variance (hence FM100 vs FM20 matters), while PROP's runs concentrate
near its best (diminishing returns beyond 20 runs).  This module makes
those properties measurable:

* :func:`cut_distribution` — summary statistics of a run population;
* :func:`convergence_trace` — best-so-far after each additional run (the
  "how many runs do I need" curve);
* :func:`ascii_histogram` — terminal-friendly visualization used by the
  examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class CutDistribution:
    """Summary of the cuts produced by N runs of one algorithm."""

    count: int
    best: float
    worst: float
    mean: float
    stddev: float
    median: float

    @property
    def spread(self) -> float:
        """(worst - best) / best — the run-to-run variance signature."""
        if self.best == 0:
            return 0.0
        return (self.worst - self.best) / self.best


def cut_distribution(cuts: Sequence[float]) -> CutDistribution:
    """Summarize a population of per-run cut values.

    ``stddev`` is the sample estimator (÷ n−1): run populations are
    samples of the heuristic's cut distribution, not the distribution
    itself, and at the paper's N=20 the population estimator (÷ n)
    biases the spread low by ~2.5%.  A single run has ``stddev == 0.0``
    (no spread information, rather than a division by zero).
    """
    if not cuts:
        raise ValueError("no cuts to summarize")
    ordered = sorted(cuts)
    n = len(ordered)
    mean = sum(ordered) / n
    if n == 1:
        variance = 0.0
    else:
        variance = sum((c - mean) ** 2 for c in ordered) / (n - 1)
    mid = n // 2
    if n % 2:
        median = ordered[mid]
    else:
        median = (ordered[mid - 1] + ordered[mid]) / 2
    return CutDistribution(
        count=n,
        best=ordered[0],
        worst=ordered[-1],
        mean=mean,
        stddev=math.sqrt(variance),
        median=median,
    )


def convergence_trace(cuts: Sequence[float]) -> List[float]:
    """Best-so-far after each run, in run order.

    ``trace[k-1]`` is the result the paper's protocol would have reported
    with a budget of k runs; the curve's flattening point estimates the
    useful number of restarts (the paper's "diminishing returns" remark
    about FM beyond 100 runs).
    """
    if not cuts:
        raise ValueError("no cuts to trace")
    trace: List[float] = []
    best = float("inf")
    for c in cuts:
        best = min(best, c)
        trace.append(best)
    return trace


def runs_to_reach(cuts: Sequence[float], target: float) -> Optional[int]:
    """Number of runs until the best-so-far first reaches ``target``.

    Returns ``None`` when the target is never reached within the given
    runs ("budget exhausted").  The smallest real answer is ``1``, so a
    falsy sentinel like ``0`` would make ``if runs_to_reach(...)``
    silently conflate "reached immediately" with "never reached".
    """
    for k, best in enumerate(convergence_trace(cuts), start=1):
        if best <= target:
            return k
    return None


def ascii_histogram(
    cuts: Sequence[float], bins: int = 8, width: int = 40
) -> str:
    """Fixed-width text histogram of a cut population."""
    if not cuts:
        raise ValueError("no cuts to plot")
    if bins < 1 or width < 1:
        raise ValueError("bins and width must be >= 1")
    lo, hi = min(cuts), max(cuts)
    if lo == hi:
        return f"{lo:>10.0f} | {'#' * width} ({len(cuts)} runs, all equal)"
    span = (hi - lo) / bins
    counts = [0] * bins
    for c in cuts:
        idx = min(int((c - lo) / span), bins - 1)
        counts[idx] += 1
    peak = max(counts)
    lines = []
    for b, count in enumerate(counts):
        label = lo + b * span
        bar = "#" * round(width * count / peak) if count else ""
        lines.append(f"{label:>10.1f} | {bar} {count if count else ''}")
    return "\n".join(lines)
