"""Statistical head-to-head comparison of partitioners.

The paper compares total cuts across 16 circuits; with a synthetic suite
and scaled runs it is worth asking whether a measured difference is
signal.  This module provides paired-comparison machinery:

* :func:`head_to_head` — wins/losses/ties over paired per-circuit cuts,
  with a sign-test p-value (and Wilcoxon signed-rank where applicable);
* :func:`comparison_matrix` — all-pairs summary over a results table such
  as :class:`repro.experiments.tables.ComparisonTable` totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from scipy import stats


@dataclass(frozen=True)
class HeadToHead:
    """Paired comparison of algorithm A vs algorithm B."""

    wins: int          # circuits where A cut < B cut
    losses: int        # circuits where A cut > B cut
    ties: int
    mean_improvement_percent: float  # paper metric, averaged over pairs
    sign_test_p: float               # P(this win/loss split | no difference)
    wilcoxon_p: Optional[float]      # None when undefined (all ties / tiny n)

    @property
    def decisive(self) -> bool:
        """True when the sign test rejects 'no difference' at 5%."""
        return self.sign_test_p < 0.05


def head_to_head(
    cuts_a: Sequence[float], cuts_b: Sequence[float]
) -> HeadToHead:
    """Compare paired per-circuit cuts of two algorithms (A vs B)."""
    if len(cuts_a) != len(cuts_b):
        raise ValueError(
            f"paired comparison needs equal lengths, got "
            f"{len(cuts_a)} vs {len(cuts_b)}"
        )
    if not cuts_a:
        raise ValueError("no pairs to compare")

    wins = sum(1 for a, b in zip(cuts_a, cuts_b) if a < b)
    losses = sum(1 for a, b in zip(cuts_a, cuts_b) if a > b)
    ties = len(cuts_a) - wins - losses

    improvements = []
    for a, b in zip(cuts_a, cuts_b):
        larger = max(a, b)
        improvements.append(0.0 if larger == 0 else (b - a) / larger * 100.0)
    mean_improvement = sum(improvements) / len(improvements)

    decisive_pairs = wins + losses
    if decisive_pairs == 0:
        sign_p = 1.0
    else:
        sign_p = stats.binomtest(
            wins, decisive_pairs, 0.5, alternative="two-sided"
        ).pvalue

    wilcoxon_p: Optional[float] = None
    diffs = [a - b for a, b in zip(cuts_a, cuts_b) if a != b]
    if len(diffs) >= 5:
        try:
            wilcoxon_p = float(stats.wilcoxon(diffs).pvalue)
        except ValueError:  # pragma: no cover - degenerate inputs
            wilcoxon_p = None

    return HeadToHead(
        wins=wins,
        losses=losses,
        ties=ties,
        mean_improvement_percent=mean_improvement,
        sign_test_p=float(sign_p),
        wilcoxon_p=wilcoxon_p,
    )


def comparison_matrix(
    cuts_by_algorithm: Mapping[str, Sequence[float]],
) -> Dict[str, Dict[str, HeadToHead]]:
    """All-pairs head-to-head over a {algorithm: per-circuit cuts} table."""
    algorithms = list(cuts_by_algorithm)
    lengths = {len(cuts_by_algorithm[a]) for a in algorithms}
    if len(lengths) > 1:
        raise ValueError("all algorithms need the same circuit list")
    out: Dict[str, Dict[str, HeadToHead]] = {}
    for a in algorithms:
        out[a] = {}
        for b in algorithms:
            if a != b:
                out[a][b] = head_to_head(
                    cuts_by_algorithm[a], cuts_by_algorithm[b]
                )
    return out


def format_head_to_head(name_a: str, name_b: str, result: HeadToHead) -> str:
    """One-line human-readable rendering."""
    wilcoxon = (
        f", wilcoxon p={result.wilcoxon_p:.3f}"
        if result.wilcoxon_p is not None
        else ""
    )
    return (
        f"{name_a} vs {name_b}: {result.wins}W/{result.losses}L/"
        f"{result.ties}T, mean improvement "
        f"{result.mean_improvement_percent:+.1f}%, sign p="
        f"{result.sign_test_p:.3f}{wilcoxon}"
    )
