"""Empirical complexity fitting.

The paper's Sec. 3.5 derives Θ(m log n) per PROP pass; the scaling bench
verifies the *measured* growth.  This module holds the fitting utilities:
a log-log least-squares power-law fit with goodness-of-fit, so benches
and users can state "time grows as m^1.2 (R² = 0.99)" instead of eyeballs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PowerLawFit:
    """``y ≈ coefficient * x^exponent`` fitted in log-log space."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Value of the fitted law at ``x`` (x must be positive)."""
        if x <= 0:
            raise ValueError("power law defined for x > 0")
        return self.coefficient * x ** self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``y = c * x^a`` on positive data.

    Requires at least two distinct x values; all xs and ys must be
    positive (they are sizes and times).
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ValueError("need at least 2 points")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit needs positive data")

    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((x - mean_x) ** 2 for x in lx)
    if sxx == 0:
        raise ValueError("need at least two distinct x values")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    exponent = sxy / sxx
    intercept = mean_y - exponent * mean_x

    ss_tot = sum((y - mean_y) ** 2 for y in ly)
    ss_res = sum(
        (y - (exponent * x + intercept)) ** 2 for x, y in zip(lx, ly)
    )
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(
        exponent=exponent,
        coefficient=math.exp(intercept),
        r_squared=r_squared,
    )
