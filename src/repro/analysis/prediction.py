"""Gain-prediction quality: does PROP's probabilistic gain predict value?

The paper's thesis is that the probabilistic gain is a better *predictor*
of a move's ultimate worth than the deterministic immediate gain.  This
module measures that directly: instrument a PROP run, collect
(selection gain, realized immediate gain) pairs per move, and report how
selection gains relate to what the moves actually delivered — including
the fraction of selected moves whose immediate gain was negative but that
PROP chose anyway for their future value (Sec. 3's "the immediate gain of
that move might be small or even negative").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from scipy import stats

from ..core import PropConfig
from ..core.engine import run_prop
from ..hypergraph import Hypergraph
from ..partition import BalanceConstraint, random_balanced_sides
from ..telemetry import MemoryRecorder


@dataclass(frozen=True)
class MoveSample:
    """One observed move."""

    pass_index: int
    node: int
    selection_gain: float    # probabilistic gain at selection time
    immediate_gain: float    # realized cut delta


@dataclass
class PredictionReport:
    """Summary of gain-prediction quality over one PROP run."""

    samples: List[MoveSample]
    spearman_rho: Optional[float]   # rank correlation, first-pass moves
    negative_immediate_fraction: float
    mean_selection_gain: float
    mean_immediate_gain: float

    @property
    def num_moves(self) -> int:
        return len(self.samples)


def collect_move_samples(
    graph: Hypergraph,
    balance: Optional[BalanceConstraint] = None,
    config: Optional[PropConfig] = None,
    seed: int = 0,
) -> List[MoveSample]:
    """Run PROP once, capturing every tentative move.

    Uses the telemetry event stream (:class:`repro.telemetry.MemoryRecorder`)
    rather than the legacy per-move observer; the returned samples are
    identical — recording never changes moves or cuts.
    """
    if balance is None:
        balance = BalanceConstraint.fifty_fifty(graph)
    recorder = MemoryRecorder()
    run_prop(
        graph,
        random_balanced_sides(graph, seed),
        balance,
        config=config,
        seed=seed,
        recorder=recorder,
    )
    return [
        MoveSample(m.pass_index, m.node, m.selection_key, m.immediate_gain)
        for m in recorder.moves
    ]


def analyze_prediction(
    samples: Sequence[MoveSample],
) -> PredictionReport:
    """Summarize a sample set (see module docstring)."""
    if not samples:
        raise ValueError("no move samples")
    first_pass = [s for s in samples if s.pass_index == 0]
    rho: Optional[float] = None
    if len(first_pass) >= 8:
        sel = [s.selection_gain for s in first_pass]
        imm = [s.immediate_gain for s in first_pass]
        if len(set(sel)) > 1 and len(set(imm)) > 1:
            rho = float(stats.spearmanr(sel, imm).statistic)
    negative = sum(1 for s in samples if s.immediate_gain < 0)
    return PredictionReport(
        samples=list(samples),
        spearman_rho=rho,
        negative_immediate_fraction=negative / len(samples),
        mean_selection_gain=(
            sum(s.selection_gain for s in samples) / len(samples)
        ),
        mean_immediate_gain=(
            sum(s.immediate_gain for s in samples) / len(samples)
        ),
    )


def gain_prediction_report(
    graph: Hypergraph,
    balance: Optional[BalanceConstraint] = None,
    config: Optional[PropConfig] = None,
    seed: int = 0,
) -> PredictionReport:
    """Convenience: run + analyze in one call."""
    return analyze_prediction(
        collect_move_samples(graph, balance=balance, config=config, seed=seed)
    )
