"""Prediction: gain-prediction quality and per-instance algorithm choice.

Two prediction problems live here.

**Move-level** (the paper's thesis): the probabilistic gain is a better
*predictor* of a move's ultimate worth than the deterministic immediate
gain.  :func:`gain_prediction_report` measures that directly: instrument
a PROP run, collect (selection gain, realized immediate gain) pairs per
move, and report how selection gains relate to what the moves actually
delivered — including the fraction of selected moves whose immediate
gain was negative but that PROP chose anyway for their future value
(Sec. 3's "the immediate gain of that move might be small or even
negative").

**Instance-level** (the portfolio selector): which algorithm should a
budget be spent on for *this* netlist?  :class:`PortfolioModel` is a
nearest-neighbour regressor over cheap structural features
(:func:`instance_features`: size, pin density, net-size and degree
shape) trained on corpus sweeps (:func:`train_portfolio`), predicting a
normalized cut per algorithm and ranking them.  Deterministic end to
end: features, distances and tie-breaks involve no randomness, so the
same model file always picks the same algorithm for the same graph.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from scipy import stats

from ..core import PropConfig
from ..core.engine import run_prop
from ..hypergraph import Hypergraph
from ..partition import BalanceConstraint, random_balanced_sides
from ..telemetry import MemoryRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import Engine


@dataclass(frozen=True)
class MoveSample:
    """One observed move."""

    pass_index: int
    node: int
    selection_gain: float    # probabilistic gain at selection time
    immediate_gain: float    # realized cut delta


@dataclass
class PredictionReport:
    """Summary of gain-prediction quality over one PROP run."""

    samples: List[MoveSample]
    spearman_rho: Optional[float]   # rank correlation, first-pass moves
    negative_immediate_fraction: float
    mean_selection_gain: float
    mean_immediate_gain: float

    @property
    def num_moves(self) -> int:
        return len(self.samples)


def collect_move_samples(
    graph: Hypergraph,
    balance: Optional[BalanceConstraint] = None,
    config: Optional[PropConfig] = None,
    seed: int = 0,
) -> List[MoveSample]:
    """Run PROP once, capturing every tentative move.

    Uses the telemetry event stream (:class:`repro.telemetry.MemoryRecorder`)
    rather than the legacy per-move observer; the returned samples are
    identical — recording never changes moves or cuts.
    """
    if balance is None:
        balance = BalanceConstraint.fifty_fifty(graph)
    recorder = MemoryRecorder()
    run_prop(
        graph,
        random_balanced_sides(graph, seed),
        balance,
        config=config,
        seed=seed,
        recorder=recorder,
    )
    return [
        MoveSample(m.pass_index, m.node, m.selection_key, m.immediate_gain)
        for m in recorder.moves
    ]


def analyze_prediction(
    samples: Sequence[MoveSample],
) -> PredictionReport:
    """Summarize a sample set (see module docstring)."""
    if not samples:
        raise ValueError("no move samples")
    first_pass = [s for s in samples if s.pass_index == 0]
    rho: Optional[float] = None
    if len(first_pass) >= 8:
        sel = [s.selection_gain for s in first_pass]
        imm = [s.immediate_gain for s in first_pass]
        if len(set(sel)) > 1 and len(set(imm)) > 1:
            # ``.correlation`` exists on every scipy this package declares
            # (>= 1.7); ``.statistic`` only arrived in scipy 1.9.
            rho = float(stats.spearmanr(sel, imm).correlation)
    negative = sum(1 for s in samples if s.immediate_gain < 0)
    return PredictionReport(
        samples=list(samples),
        spearman_rho=rho,
        negative_immediate_fraction=negative / len(samples),
        mean_selection_gain=(
            sum(s.selection_gain for s in samples) / len(samples)
        ),
        mean_immediate_gain=(
            sum(s.immediate_gain for s in samples) / len(samples)
        ),
    )


def gain_prediction_report(
    graph: Hypergraph,
    balance: Optional[BalanceConstraint] = None,
    config: Optional[PropConfig] = None,
    seed: int = 0,
) -> PredictionReport:
    """Convenience: run + analyze in one call."""
    return analyze_prediction(
        collect_move_samples(graph, balance=balance, config=config, seed=seed)
    )


# ----------------------------------------------------------------------
# Portfolio selection: which algorithm for this instance?
# ----------------------------------------------------------------------
#: Algorithm names (CLI spelling) a default portfolio ranges over — one
#: representative per family: flat move-based (FM), lookahead (LA-2),
#: probabilistic (PROP), multilevel and spectral.
PORTFOLIO_ALGORITHMS = ("fm", "la-2", "prop", "ml-prop", "eig1")


@dataclass(frozen=True)
class InstanceFeatures:
    """Cheap structural features of one netlist.

    Everything is O(pins) to compute and scale-free enough for
    nearest-neighbour matching: raw sizes enter the feature vector
    log-scaled, shape statistics (mean net size, mean degree, degree
    variance) enter raw.
    """

    nodes: int
    nets: int
    pins: int
    mean_net_size: float
    mean_degree: float
    degree_variance: float

    def vector(self) -> Tuple[float, ...]:
        """The matching-space embedding (log-scaled sizes + shape)."""
        return (
            math.log(max(1, self.nodes)),
            math.log(max(1, self.nets)),
            math.log(max(1, self.pins)),
            self.mean_net_size,
            self.mean_degree,
            self.degree_variance,
        )


def instance_features(graph: Hypergraph) -> InstanceFeatures:
    """Extract :class:`InstanceFeatures` from a hypergraph."""
    n, e, p = graph.num_nodes, graph.num_nets, graph.num_pins
    degrees = [graph.node_degree(v) for v in range(n)]
    mean_degree = sum(degrees) / n if n else 0.0
    degree_variance = (
        sum((d - mean_degree) ** 2 for d in degrees) / n if n else 0.0
    )
    return InstanceFeatures(
        nodes=n,
        nets=e,
        pins=p,
        mean_net_size=p / e if e else 0.0,
        mean_degree=mean_degree,
        degree_variance=degree_variance,
    )


@dataclass(frozen=True)
class PortfolioObservation:
    """One training point: an algorithm's performance on one instance.

    ``normalized_cut`` is ``best_cut / max(1, nets)`` — the fraction of
    nets cut, comparable across instance sizes.
    """

    circuit: str
    algorithm: str
    features: InstanceFeatures
    normalized_cut: float
    seconds_per_run: float = 0.0


@dataclass
class PortfolioModel:
    """Distance-weighted k-NN predictor of per-algorithm performance.

    Prediction: z-score the query features against the training
    population, find the ``k`` nearest training circuits, and average
    each algorithm's normalized cut over them with ``1 / (1 + distance)``
    weights.  :meth:`rank` orders algorithms by that prediction
    (ascending — smaller predicted cut first) with the algorithm name as
    a deterministic tie-break; :meth:`select` returns the winner.

    k-NN is the right size of hammer here: the corpus is tens of
    circuits, the features are six-dimensional, and the model must be
    exactly reproducible from its JSON serialization — no iterative
    fitting, no randomness.
    """

    observations: List[PortfolioObservation]
    k: int = 3

    def __post_init__(self) -> None:
        if not self.observations:
            raise ValueError("portfolio model needs training observations")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")

    # -- training-population geometry ----------------------------------
    def _feature_stats(self) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """Per-dimension mean and stddev over distinct training circuits."""
        vectors = [
            feats.vector() for _, feats in sorted(self._circuits().items())
        ]
        dims = len(vectors[0])
        means = tuple(
            sum(v[d] for v in vectors) / len(vectors) for d in range(dims)
        )
        stds = tuple(
            math.sqrt(
                sum((v[d] - means[d]) ** 2 for v in vectors) / len(vectors)
            )
            or 1.0  # constant dimension: don't divide by zero
            for d in range(dims)
        )
        return means, stds

    def _circuits(self) -> Dict[str, InstanceFeatures]:
        circuits: Dict[str, InstanceFeatures] = {}
        for obs in self.observations:
            circuits[obs.circuit] = obs.features
        return circuits

    def _neighbors(
        self, features: InstanceFeatures
    ) -> List[Tuple[float, str]]:
        """The k nearest training circuits as ``(distance, name)``."""
        means, stds = self._feature_stats()
        query = [
            (x - m) / s for x, m, s in zip(features.vector(), means, stds)
        ]
        ranked = sorted(
            (
                (
                    math.sqrt(sum(
                        ((x - m) / s - q) ** 2
                        for x, m, s, q in zip(
                            feats.vector(), means, stds, query
                        )
                    )),
                    name,
                )
                for name, feats in self._circuits().items()
            ),
        )
        return ranked[: min(self.k, len(ranked))]

    # -- prediction ----------------------------------------------------
    def predict(self, features: InstanceFeatures) -> Dict[str, float]:
        """Predicted normalized cut per algorithm (lower is better)."""
        neighbors = self._neighbors(features)
        by_circuit: Dict[str, Dict[str, float]] = {}
        for obs in self.observations:
            by_circuit.setdefault(obs.circuit, {})[obs.algorithm] = (
                obs.normalized_cut
            )
        scores: Dict[str, float] = {}
        algorithms = sorted({obs.algorithm for obs in self.observations})
        for algorithm in algorithms:
            weighted = total = 0.0
            for distance, circuit in neighbors:
                cut = by_circuit[circuit].get(algorithm)
                if cut is None:
                    continue  # algorithm unmeasured on this neighbor
                weight = 1.0 / (1.0 + distance)
                weighted += weight * cut
                total += weight
            if total > 0:
                scores[algorithm] = weighted / total
        return scores

    def rank(self, graph: Hypergraph) -> List[Tuple[str, float]]:
        """Algorithms ordered best-first for ``graph``."""
        scores = self.predict(instance_features(graph))
        return sorted(scores.items(), key=lambda kv: (kv[1], kv[0]))

    def select(self, graph: Hypergraph) -> str:
        """The predicted-best algorithm name for ``graph``."""
        ranked = self.rank(graph)
        if not ranked:
            raise ValueError("no algorithm has predictions for this graph")
        return ranked[0][0]

    # -- serialization -------------------------------------------------
    def to_json(self) -> str:
        """Serialize (sorted keys — byte-stable for identical models)."""
        return json.dumps(
            {
                "k": self.k,
                "observations": [
                    {
                        "circuit": o.circuit,
                        "algorithm": o.algorithm,
                        "features": {
                            "nodes": o.features.nodes,
                            "nets": o.features.nets,
                            "pins": o.features.pins,
                            "mean_net_size": o.features.mean_net_size,
                            "mean_degree": o.features.mean_degree,
                            "degree_variance": o.features.degree_variance,
                        },
                        "normalized_cut": o.normalized_cut,
                        "seconds_per_run": o.seconds_per_run,
                    }
                    for o in self.observations
                ],
            },
            sort_keys=True,
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "PortfolioModel":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        observations = [
            PortfolioObservation(
                circuit=o["circuit"],
                algorithm=o["algorithm"],
                features=InstanceFeatures(**o["features"]),
                normalized_cut=o["normalized_cut"],
                seconds_per_run=o.get("seconds_per_run", 0.0),
            )
            for o in payload["observations"]
        ]
        return cls(observations=observations, k=payload.get("k", 3))

    def save(self, path: str) -> None:
        """Write the model to ``path`` as JSON."""
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "PortfolioModel":
        """Read a model previously written by :meth:`save`."""
        with open(path) as fh:
            return cls.from_json(fh.read())


def train_portfolio(
    circuits: Mapping[str, Hypergraph],
    algorithms: Sequence[str] = PORTFOLIO_ALGORITHMS,
    runs: int = 8,
    base_seed: int = 0,
    balance: Optional[BalanceConstraint] = None,
    engine: Optional["Engine"] = None,
    k: int = 3,
) -> PortfolioModel:
    """Sweep ``algorithms`` over ``circuits`` and fit a portfolio model.

    Each (circuit, algorithm) cell is a ``runs``-restart best-of-N via
    :func:`repro.multirun.run_many` (deterministic partitioners
    short-circuit to one run as usual), recorded as its normalized best
    cut.  Pass an :class:`repro.engine.Engine` to parallelize and cache
    the sweep; results are identical either way.
    """
    import warnings

    from ..cli import _make_partitioner
    from ..multirun import run_many

    observations: List[PortfolioObservation] = []
    for name in sorted(circuits):
        graph = circuits[name]
        features = instance_features(graph)
        for algorithm in algorithms:
            partitioner = _make_partitioner(algorithm)
            try:
                with warnings.catch_warnings():
                    # Deterministic algorithms clamp runs>1 with a
                    # warning; in a sweep that is expected, not
                    # actionable.
                    warnings.simplefilter("ignore", UserWarning)
                    outcome = run_many(
                        partitioner,
                        graph,
                        runs=runs,
                        balance=balance,
                        base_seed=base_seed,
                        circuit_name=name,
                        engine=engine,
                    )
            except Exception:
                # An algorithm that cannot handle this instance (e.g. a
                # spectral ordering with no balanced split point) is a
                # missing cell, not a failed sweep: the model simply
                # never recommends it for similar instances.
                continue
            if outcome.best is None:
                continue  # every run failed; nothing to learn here
            observations.append(
                PortfolioObservation(
                    circuit=name,
                    algorithm=algorithm,
                    features=features,
                    normalized_cut=(
                        outcome.best_cut / max(1, graph.num_nets)
                    ),
                    seconds_per_run=outcome.seconds_per_run,
                )
            )
    return PortfolioModel(
        observations=observations, k=min(k, len(circuits))
    )
