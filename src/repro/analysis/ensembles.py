"""Ensemble solving: cut-distribution fits and adaptive restart policies.

The paper's protocol (Sec. 4) spends a *fixed* restart budget — FM100,
PROP20 — chosen once, offline.  But the per-run cut distributions the
protocol samples are themselves informative: following Schreiber &
Martin's observation that bisection heuristics produce analyzable
(Weibull-type) minima distributions, the cuts seen so far predict how
much a further restart is worth.  This module turns that prediction into
a stopping rule:

* :func:`empirical_cdf` / :class:`EmpiricalCDF` — the raw sample law of
  a run population;
* :func:`fit_weibull_tail` — a three-parameter Weibull fit of the lower
  tail, whose location parameter estimates the best *achievable* cut
  (with :meth:`WeibullTailFit.confidence_band` bracketing it);
* :func:`probability_of_improvement` — P(one more restart beats the
  incumbent), the rank-statistics bound refined by the tail fit;
* :class:`RestartPolicy` — stop when ``P(improve) x remaining-budget``
  drops below a threshold; plugs into :func:`repro.multirun.run_many`
  (``policy=``) and the engine's streaming ``stop_check`` hook;
* :func:`ensemble_solve` — the budgeted best-of-N driver built on both,
  reporting runs used/saved and the tail fit alongside the result.

Determinism contract: every decision is a pure function of the cut
prefix in seed order (wall-clock enters only through the optional
``max_seconds`` budget, documented best-effort).  Same instance + budget
+ seed => identical stop decision and identical incumbent, sequential or
pooled, fresh or resumed — enforced by ``tests/analysis/test_ensembles``.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import Engine
    from ..hypergraph import Hypergraph
    from ..multirun import MultiRunResult, Partitioner
    from ..partition import BalanceConstraint
    from ..telemetry import Recorder

#: Minimum sample size for a meaningful tail fit (three parameters plus
#: slack; below this the fit is refused rather than over-trusted).
MIN_FIT_SAMPLES = 5

#: Candidate location-parameter grid resolution for the tail fit.
_THETA_GRID = 24

#: Reasons a :class:`RestartPolicy` may stop a batch.
STOP_REASONS = (
    "target_reached",
    "budget_exhausted",
    "time_exhausted",
    "converged",
)


# ----------------------------------------------------------------------
# Empirical distribution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EmpiricalCDF:
    """The sample distribution function of a cut population.

    ``cdf(x)`` is the fraction of observed runs with cut <= ``x``;
    ``quantile(q)`` inverts it (lower empirical quantile).  Values are
    stored sorted, so both are O(log n) lookups.
    """

    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("empirical CDF needs at least one observation")

    def __call__(self, x: float) -> float:
        """P(cut <= x) under the empirical law."""
        return bisect_right(self.values, x) / len(self.values)

    def quantile(self, q: float) -> float:
        """Smallest observed value with at least mass ``q`` below it."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile level must be in [0, 1], got {q}")
        n = len(self.values)
        idx = min(n - 1, max(0, math.ceil(q * n) - 1))
        return self.values[idx]

    @property
    def resolution(self) -> float:
        """Smallest positive gap between distinct observations.

        The natural unit of "strictly better than the incumbent" for
        integral-weight cut values; ``1.0`` when all observations tie
        (no gap information).
        """
        gaps = [
            b - a
            for a, b in zip(self.values, self.values[1:])
            if b > a
        ]
        return min(gaps) if gaps else 1.0


def empirical_cdf(cuts: Sequence[float]) -> EmpiricalCDF:
    """Build the :class:`EmpiricalCDF` of a run population."""
    return EmpiricalCDF(values=tuple(sorted(cuts)))


# ----------------------------------------------------------------------
# Extreme-value tail fit
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WeibullTailFit:
    """Three-parameter Weibull fit of a cut population's lower tail.

    Models ``P(cut <= x) = 1 - exp(-((x - location) / scale)^shape)``
    for ``x >= location`` — the limiting law for minima of bounded-below
    distributions (Fisher–Tippett–Gnedenko), which is why it appears in
    cut-size statistics of bisection heuristics.  ``location`` is the
    fit's estimate of the best *achievable* cut: the distribution
    assigns zero mass below it.
    """

    location: float
    scale: float
    shape: float
    r_squared: float
    sample_size: int

    def cdf(self, x: float) -> float:
        """P(cut <= x) under the fitted law (0 below ``location``)."""
        if x <= self.location:
            return 0.0
        z = (x - self.location) / self.scale
        return 1.0 - math.exp(-(z ** self.shape))

    def confidence_band(self, incumbent: float) -> Tuple[float, float]:
        """Bracket on the best-achievable cut: ``(location, incumbent)``.

        The fitted location can only underestimate what is reachable
        (mass is assigned arbitrarily close to it), while the incumbent
        is an upper bound by construction.
        """
        return (self.location, min(incumbent, self.location + self.scale))


def _linear_fit(
    xs: Sequence[float], ys: Sequence[float]
) -> Optional[Tuple[float, float, float]]:
    """Least-squares ``y = a + b*x``; returns ``(a, b, r_squared)``."""
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        return None
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    syy = sum((y - mean_y) ** 2 for y in ys)
    b = sxy / sxx
    a = mean_y - b * mean_x
    if syy == 0:
        return None
    residual = sum(
        (y - (a + b * x)) ** 2 for x, y in zip(xs, ys)
    )
    r_squared = max(0.0, 1.0 - residual / syy)
    return a, b, r_squared


def fit_weibull_tail(cuts: Sequence[float]) -> Optional[WeibullTailFit]:
    """Fit a three-parameter Weibull to a cut population's lower tail.

    Deterministic pure-Python estimation: the location parameter is
    chosen from a fixed grid below the observed minimum (maximizing
    linearity of the Weibull plot), then shape and scale come from
    least-squares regression of ``log(-log(1 - F))`` on
    ``log(x - location)`` with median-rank plotting positions
    ``F_i = (i - 0.3) / (n + 0.4)``.

    Returns ``None`` for populations the fit cannot support: fewer than
    :data:`MIN_FIT_SAMPLES` observations, all observations equal, or a
    degenerate regression.  Callers fall back to rank statistics.
    """
    ordered = sorted(float(c) for c in cuts)
    n = len(ordered)
    if n < MIN_FIT_SAMPLES:
        return None
    best, worst = ordered[0], ordered[-1]
    spread = worst - best
    if spread <= 0 or not math.isfinite(spread):
        return None
    # Median-rank plotting positions for the order statistics.
    ys = [
        math.log(-math.log(1.0 - (i - 0.3) / (n + 0.4)))
        for i in range(1, n + 1)
    ]
    best_fit: Optional[WeibullTailFit] = None
    for j in range(1, _THETA_GRID + 1):
        theta = best - spread * j / _THETA_GRID
        xs = [math.log(c - theta) for c in ordered]
        fitted = _linear_fit(xs, ys)
        if fitted is None:
            continue
        a, b, r_squared = fitted
        if b <= 0:  # shape must be positive for a valid Weibull
            continue
        if best_fit is None or r_squared > best_fit.r_squared:
            best_fit = WeibullTailFit(
                location=theta,
                scale=math.exp(-a / b),
                shape=b,
                r_squared=r_squared,
                sample_size=n,
            )
    return best_fit


# ----------------------------------------------------------------------
# Probability of improvement
# ----------------------------------------------------------------------
def probability_of_improvement(
    cuts: Sequence[float],
    fit: Optional[WeibullTailFit] = None,
) -> float:
    """P(one more independent restart strictly beats the incumbent).

    The distribution-free bound is the rank statistic ``1 / (n + 1)``:
    for exchangeable continuous draws, a new sample is the strict
    minimum of ``n + 1`` with exactly that probability.  When a tail fit
    is available (passed in, or fitted here), the estimate is refined
    with the fitted mass strictly below the incumbent — heuristics whose
    runs concentrate near their best (PROP) get a sharply smaller
    probability than the rank bound, which is what lets the stopping
    rule fire early for them.  Without a fit, ties pull the estimate
    below the rank bound (a tied "new minimum" is not an improvement).

    Returns 1.0 for an empty population (the first run always improves).
    """
    n = len(cuts)
    if n == 0:
        return 1.0
    incumbent = min(cuts)
    p_rank = 1.0 / (n + 1)
    if fit is None:
        fit = fit_weibull_tail(cuts)
    if fit is None:
        # Concentration-aware fallback: scale the rank bound by the
        # fraction of runs that even cleared the incumbent.  An all-tie
        # population (every run found the same cut) yields the square of
        # the rank bound — improvement is doubly unlikely.
        above = sum(1 for c in cuts if c > incumbent)
        return p_rank * (above + 1) / (n + 1)
    resolution = empirical_cdf(cuts).resolution
    p_tail = fit.cdf(incumbent - resolution)
    return min(p_rank, p_tail)


# ----------------------------------------------------------------------
# Restart policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StopDecision:
    """One :meth:`RestartPolicy.decide` verdict.

    ``expected_better_runs`` is ``P(improve) x remaining budget`` — the
    expected number of strictly-improving runs left in the budget, the
    quantity the convergence test thresholds.
    """

    stop: bool
    reason: str  # one of STOP_REASONS, or "continue"
    p_beat: float
    expected_better_runs: float


@dataclass(frozen=True)
class RestartPolicy:
    """Adaptive stopping rule for best-of-N restart batches.

    Decision order (first match wins):

    1. ``target_reached`` — the incumbent meets an explicit ``target``;
    2. ``budget_exhausted`` — ``budget`` runs have completed;
    3. ``time_exhausted`` — ``max_seconds`` of run time spent
       (best-effort: wall clock is not part of the determinism
       contract, leave it ``None`` for bit-reproducible stops);
    4. continue unconditionally below ``min_runs`` (the tail fit needs
       a sample to stand on);
    5. ``converged`` — ``P(improve) x remaining budget < threshold``:
       the budget no longer contains even ``threshold`` expected
       improving runs.

    With ``threshold <= 0`` the policy never converges early and
    reproduces the paper's fixed-budget protocol exactly.  Decisions are
    pure functions of the cut prefix (plus elapsed seconds for rule 3),
    which is what makes engine-parallel ensembles bit-deterministic.
    """

    budget: int
    threshold: float = 0.5
    min_runs: int = 4
    target: Optional[float] = None
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if self.min_runs < 1:
            raise ValueError(f"min_runs must be >= 1, got {self.min_runs}")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError(
                f"max_seconds must be > 0, got {self.max_seconds}"
            )

    def decide(
        self, cuts: Sequence[float], elapsed_seconds: float = 0.0
    ) -> StopDecision:
        """Stop or continue, given the cuts completed so far (seed order)."""
        n = len(cuts)
        if n == 0:
            return StopDecision(
                stop=False, reason="continue", p_beat=1.0,
                expected_better_runs=float(self.budget),
            )
        p_beat = probability_of_improvement(cuts)
        remaining = max(0, self.budget - n)
        expected = p_beat * remaining
        if self.target is not None and min(cuts) <= self.target:
            return StopDecision(True, "target_reached", p_beat, expected)
        if n >= self.budget:
            return StopDecision(True, "budget_exhausted", p_beat, expected)
        if (
            self.max_seconds is not None
            and elapsed_seconds >= self.max_seconds
        ):
            return StopDecision(True, "time_exhausted", p_beat, expected)
        if n < self.min_runs:
            return StopDecision(False, "continue", p_beat, expected)
        if expected < self.threshold:
            return StopDecision(True, "converged", p_beat, expected)
        return StopDecision(False, "continue", p_beat, expected)


# ----------------------------------------------------------------------
# Ensemble driver
# ----------------------------------------------------------------------
@dataclass
class EnsembleResult:
    """Outcome of one :func:`ensemble_solve` batch."""

    outcome: "MultiRunResult"
    decision: StopDecision
    budget: int
    fit: Optional[WeibullTailFit] = None

    @property
    def best_cut(self) -> float:
        """The incumbent cut."""
        return self.outcome.best_cut

    @property
    def stop_reason(self) -> str:
        """Why the batch ended (``"interrupted"`` on a signal drain)."""
        if self.outcome.stop_reason is not None:
            return self.outcome.stop_reason
        return "interrupted" if self.outcome.interrupted else "incomplete"

    @property
    def runs_used(self) -> int:
        """Runs actually attempted (successes + collected failures)."""
        return self.outcome.completed_attempts

    @property
    def runs_saved(self) -> int:
        """Budgeted runs the stopping rule avoided."""
        return max(0, self.budget - self.runs_used)

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        lines = [
            f"{self.outcome.algorithm} on "
            f"{self.outcome.circuit or '<unnamed>'}: "
            f"best cut {self.best_cut:g} after {self.runs_used} of "
            f"{self.budget} budgeted runs ({self.runs_saved} saved)",
            f"  stop: {self.stop_reason}  "
            f"P(improve)={self.decision.p_beat:.4f}  "
            f"E[better runs left]={self.decision.expected_better_runs:.3f}",
        ]
        if self.fit is not None:
            lo, hi = self.fit.confidence_band(self.best_cut)
            lines.append(
                f"  tail fit: best-achievable ~ {self.fit.location:.1f} "
                f"(band {lo:.1f}..{hi:.1f}, shape {self.fit.shape:.2f}, "
                f"R^2 {self.fit.r_squared:.3f})"
            )
        return "\n".join(lines)


def ensemble_solve(
    partitioner: "Partitioner",
    graph: "Hypergraph",
    policy: RestartPolicy,
    balance: Optional["BalanceConstraint"] = None,
    base_seed: int = 0,
    circuit_name: str = "",
    parallel: bool = False,
    engine: Optional["Engine"] = None,
    run_id: Optional[str] = None,
    resume: bool = False,
    recorder: Optional["Recorder"] = None,
) -> EnsembleResult:
    """Best-of-N under an adaptive restart policy.

    Drives :func:`repro.multirun.run_many` with ``runs = policy.budget``
    and the policy attached; the policy decides after every completed
    run (in seed order) whether the remaining budget is still worth
    spending.  Engine-path batches additionally shed unscheduled runs
    the moment the streaming prefix says stop.

    ``recorder`` (when enabled) receives ensemble telemetry counters —
    ``ensemble_runs_used``, ``ensemble_runs_saved`` and one
    ``ensemble_stop_<reason>`` increment — via the standard
    :meth:`repro.telemetry.Recorder.counters` hook with pass index
    ``-1`` (batch scope, not a real pass).  It is *not* forwarded as a
    per-run recorder; attach one through ``run_many`` directly for
    move-level telemetry.
    """
    from ..multirun import run_many

    outcome = run_many(
        partitioner,
        graph,
        runs=policy.budget,
        balance=balance,
        base_seed=base_seed,
        circuit_name=circuit_name,
        parallel=parallel,
        engine=engine,
        run_id=run_id,
        resume=resume,
        policy=policy,
    )
    decision = policy.decide(outcome.cuts, sum(outcome.run_seconds))
    result = EnsembleResult(
        outcome=outcome,
        decision=decision,
        budget=policy.budget,
        fit=fit_weibull_tail(outcome.cuts),
    )
    if recorder is not None and getattr(recorder, "enabled", False):
        recorder.counters(-1, {
            "ensemble_runs_used": result.runs_used,
            "ensemble_runs_saved": result.runs_saved,
            f"ensemble_stop_{result.stop_reason}": 1,
        })
    return result
