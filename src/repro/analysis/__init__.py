"""Run-population analysis: distributions, convergence, comparisons."""

from .comparison import (
    HeadToHead,
    comparison_matrix,
    format_head_to_head,
    head_to_head,
)
from .scaling import PowerLawFit, fit_power_law
from .prediction import (
    PORTFOLIO_ALGORITHMS,
    InstanceFeatures,
    MoveSample,
    PortfolioModel,
    PortfolioObservation,
    PredictionReport,
    analyze_prediction,
    collect_move_samples,
    gain_prediction_report,
    instance_features,
    train_portfolio,
)
from .distribution import (
    CutDistribution,
    ascii_histogram,
    convergence_trace,
    cut_distribution,
    runs_to_reach,
)
from .ensembles import (
    EmpiricalCDF,
    EnsembleResult,
    RestartPolicy,
    StopDecision,
    WeibullTailFit,
    empirical_cdf,
    ensemble_solve,
    fit_weibull_tail,
    probability_of_improvement,
)

__all__ = [
    "CutDistribution",
    "cut_distribution",
    "convergence_trace",
    "runs_to_reach",
    "ascii_histogram",
    "head_to_head",
    "comparison_matrix",
    "format_head_to_head",
    "HeadToHead",
    "collect_move_samples",
    "analyze_prediction",
    "gain_prediction_report",
    "MoveSample",
    "PredictionReport",
    "fit_power_law",
    "PowerLawFit",
    "EmpiricalCDF",
    "empirical_cdf",
    "WeibullTailFit",
    "fit_weibull_tail",
    "probability_of_improvement",
    "RestartPolicy",
    "StopDecision",
    "EnsembleResult",
    "ensemble_solve",
    "PORTFOLIO_ALGORITHMS",
    "InstanceFeatures",
    "instance_features",
    "PortfolioObservation",
    "PortfolioModel",
    "train_portfolio",
]
