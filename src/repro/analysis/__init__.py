"""Run-population analysis: distributions, convergence, comparisons."""

from .comparison import (
    HeadToHead,
    comparison_matrix,
    format_head_to_head,
    head_to_head,
)
from .scaling import PowerLawFit, fit_power_law
from .prediction import (
    MoveSample,
    PredictionReport,
    analyze_prediction,
    collect_move_samples,
    gain_prediction_report,
)
from .distribution import (
    CutDistribution,
    ascii_histogram,
    convergence_trace,
    cut_distribution,
    runs_to_reach,
)

__all__ = [
    "CutDistribution",
    "cut_distribution",
    "convergence_trace",
    "runs_to_reach",
    "ascii_histogram",
    "head_to_head",
    "comparison_matrix",
    "format_head_to_head",
    "HeadToHead",
    "collect_move_samples",
    "analyze_prediction",
    "gain_prediction_report",
    "MoveSample",
    "PredictionReport",
    "fit_power_law",
    "PowerLawFit",
]
