"""Bipartition state, balance constraints, initial partitions, metrics."""

from .balance import (
    AsymmetricBalanceConstraint,
    BalanceConstraint,
    split_sizes,
)
from .checker import PartitionCheck, check_partition
from .initial import (
    best_split_of_ordering,
    random_balanced_sides,
    random_fraction_sides,
    random_weight_balanced_sides,
    sides_from_order_prefix,
)
from .metrics import (
    BipartitionResult,
    balance_ratio,
    cut_cost,
    cut_nets,
    improvement_percent,
    ratio_cut,
    side_weights,
)
from .partition import Partition

__all__ = [
    "Partition",
    "BalanceConstraint",
    "AsymmetricBalanceConstraint",
    "split_sizes",
    "random_balanced_sides",
    "random_fraction_sides",
    "random_weight_balanced_sides",
    "sides_from_order_prefix",
    "best_split_of_ordering",
    "cut_cost",
    "cut_nets",
    "ratio_cut",
    "side_weights",
    "balance_ratio",
    "improvement_percent",
    "BipartitionResult",
    "check_partition",
    "PartitionCheck",
]
