"""Mutable bipartition state with incremental cut maintenance.

``Partition`` is the shared substrate of every iterative partitioner in this
package (FM, LA, PROP).  It tracks, for each net, how many of its pins lie
on each side — the quantity every gain formula is written in terms of — and
keeps the cutset cost up to date in O(pins of moved node) per move.

It also tracks per-node *locks* and per-net per-side *locked pin counts*,
because PROP's probabilistic gains (paper Sec. 3.4) and Krishnamurthy's
lookahead vectors both need to know whether a net is "locked in" a side
(has a locked pin there).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..hypergraph import Hypergraph


class Partition:
    """A 2-way partition of a hypergraph's nodes.

    Parameters
    ----------
    graph:
        The (immutable) netlist.
    sides:
        Initial side (0 or 1) of every node.
    """

    __slots__ = (
        "graph",
        "_side",
        "_counts0",
        "_counts1",
        "_locked",
        "_locked0",
        "_locked1",
        "_side_weights",
        "_cut_cost",
        "_num_locked",
    )

    def __init__(self, graph: Hypergraph, sides: Sequence[int]) -> None:
        if len(sides) != graph.num_nodes:
            raise ValueError(
                f"sides has length {len(sides)}, expected {graph.num_nodes}"
            )
        for v, s in enumerate(sides):
            if s not in (0, 1):
                raise ValueError(f"side of node {v} is {s!r}, expected 0 or 1")
        self.graph = graph
        self._side: List[int] = list(sides)
        self._counts0: List[int] = [0] * graph.num_nets
        self._counts1: List[int] = [0] * graph.num_nets
        self._locked: List[bool] = [False] * graph.num_nodes
        self._locked0: List[int] = [0] * graph.num_nets
        self._locked1: List[int] = [0] * graph.num_nets
        self._side_weights: List[float] = [0.0, 0.0]
        self._num_locked = 0

        for v in range(graph.num_nodes):
            self._side_weights[self._side[v]] += graph.node_weight(v)
        cut = 0.0
        for net_id, pins in enumerate(graph.nets):
            c0 = sum(1 for v in pins if self._side[v] == 0)
            self._counts0[net_id] = c0
            self._counts1[net_id] = len(pins) - c0
            if c0 and self._counts1[net_id]:
                cut += graph.net_cost(net_id)
        self._cut_cost = cut

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def side(self, node: int) -> int:
        """Current side (0/1) of ``node``."""
        return self._side[node]

    @property
    def sides(self) -> List[int]:
        """A copy of the node → side assignment."""
        return list(self._side)

    def count(self, net_id: int, side: int) -> int:
        """Number of pins of ``net_id`` on ``side`` (paper's |n ∩ Vr|)."""
        return self._counts0[net_id] if side == 0 else self._counts1[net_id]

    def locked_count(self, net_id: int, side: int) -> int:
        """Number of *locked* pins of ``net_id`` on ``side``."""
        return self._locked0[net_id] if side == 0 else self._locked1[net_id]

    def free_count(self, net_id: int, side: int) -> int:
        """Number of unlocked pins of ``net_id`` on ``side``."""
        return self.count(net_id, side) - self.locked_count(net_id, side)

    def net_is_cut(self, net_id: int) -> bool:
        """True when ``net_id`` has pins on both sides."""
        return bool(self._counts0[net_id]) and bool(self._counts1[net_id])

    def net_locked_in(self, net_id: int, side: int) -> bool:
        """True when ``net_id`` has a locked pin on ``side`` (paper Sec. 3.1)."""
        return self.locked_count(net_id, side) > 0

    @property
    def cut_cost(self) -> float:
        """Current cutset cost (sum of costs of nets with pins on both sides)."""
        return self._cut_cost

    def cut_nets(self) -> List[int]:
        """Ids of all nets currently in the cutset."""
        return [
            i
            for i in range(self.graph.num_nets)
            if self._counts0[i] and self._counts1[i]
        ]

    @property
    def side_weights(self) -> Tuple[float, float]:
        """Total node weight on (side 0, side 1)."""
        return (self._side_weights[0], self._side_weights[1])

    def side_sizes(self) -> Tuple[int, int]:
        """Node counts on (side 0, side 1)."""
        n1 = sum(self._side)
        return len(self._side) - n1, n1

    def nodes_on_side(self, side: int) -> List[int]:
        """All node ids currently on ``side``."""
        return [v for v, s in enumerate(self._side) if s == side]

    # ------------------------------------------------------------------
    # Borrowed views (hot-path accessors)
    # ------------------------------------------------------------------
    # The gain engines and the repro.kernels CSR packer index these arrays
    # millions of times per pass; going through ``side()``/``count()`` per
    # element costs a method call each.  The views return the *internal*
    # lists: treat them as read-only, and do not hold them across moves if
    # element identity matters (they are mutated in place).

    def sides_view(self) -> List[int]:
        """Borrowed read-only view of the node → side list."""
        return self._side

    def counts_view(self, side: int) -> List[int]:
        """Borrowed read-only view of per-net pin counts on ``side``."""
        return self._counts0 if side == 0 else self._counts1

    def locked_view(self) -> List[bool]:
        """Borrowed read-only view of the per-node lock flags."""
        return self._locked

    def locked_counts_view(self, side: int) -> List[int]:
        """Borrowed read-only view of per-net locked-pin counts on ``side``."""
        return self._locked0 if side == 0 else self._locked1

    # ------------------------------------------------------------------
    # Locks
    # ------------------------------------------------------------------
    def is_locked(self, node: int) -> bool:
        """True when ``node`` is locked on its current side."""
        return self._locked[node]

    @property
    def num_locked(self) -> int:
        return self._num_locked

    def lock(self, node: int) -> None:
        """Lock ``node`` on its current side (idempotent errors are real bugs)."""
        if self._locked[node]:
            raise ValueError(f"node {node} already locked")
        self._locked[node] = True
        self._num_locked += 1
        counts = self._locked0 if self._side[node] == 0 else self._locked1
        for net_id in self.graph.node_nets(node):
            counts[net_id] += 1

    def unlock_all(self) -> None:
        """Release every lock (between passes)."""
        self._locked = [False] * self.graph.num_nodes
        self._locked0 = [0] * self.graph.num_nets
        self._locked1 = [0] * self.graph.num_nets
        self._num_locked = 0

    # ------------------------------------------------------------------
    # Moves
    # ------------------------------------------------------------------
    def immediate_gain(self, node: int) -> float:
        """FM's deterministic gain (paper Eqn. 1): cut decrease if moved now.

        ``+c(net)`` for every net where ``node`` is the only pin on its side
        (net leaves the cut), ``-c(net)`` for every net entirely on
        ``node``'s side (net enters the cut).
        """
        s = self._side[node]
        mine = self._counts0 if s == 0 else self._counts1
        theirs = self._counts1 if s == 0 else self._counts0
        graph = self.graph
        gain = 0.0
        for net_id in graph.node_nets(node):
            if theirs[net_id] == 0:
                if mine[net_id] > 1:
                    gain -= graph.net_cost(net_id)
                # else: single-pin net follows the node; cut unchanged
            elif mine[net_id] == 1:
                gain += graph.net_cost(net_id)
        return gain

    def move(self, node: int) -> float:
        """Move ``node`` to the other side; returns the realized cut gain.

        Locked nodes may not move.  The returned value equals
        ``immediate_gain(node)`` evaluated just before the move.
        """
        if self._locked[node]:
            raise ValueError(f"cannot move locked node {node}")
        s = self._side[node]
        graph = self.graph
        mine = self._counts0 if s == 0 else self._counts1
        theirs = self._counts1 if s == 0 else self._counts0
        gain = 0.0
        for net_id in graph.node_nets(node):
            if theirs[net_id] == 0:
                if mine[net_id] > 1:
                    gain -= graph.net_cost(net_id)
                # else: single-pin net follows the node; cut unchanged
            elif mine[net_id] == 1:
                gain += graph.net_cost(net_id)
            mine[net_id] -= 1
            theirs[net_id] += 1
        self._side[node] = 1 - s
        w = graph.node_weight(node)
        self._side_weights[s] -= w
        self._side_weights[1 - s] += w
        self._cut_cost -= gain
        return gain

    def move_and_lock(self, node: int) -> float:
        """The FM pass primitive: move then lock; returns the realized gain."""
        gain = self.move(node)
        self.lock(node)
        return gain

    def apply_batch(
        self, nodes: Sequence[int], gains: Sequence[float]
    ) -> None:
        """Commit one sub-round batch: move and lock every node at once.

        ``gains[i]`` must be the immediate gain of ``nodes[i]`` *at batch
        selection time* — exact for a net-disjoint batch, where no batch
        move touches another batch node's nets (see
        :mod:`repro.kernels.subround`).  The cut is updated per move by
        the caller-supplied gain (same subtraction order a sequential
        replay performs, keeping the float trajectory identical), while
        pin counts, locked counts, weights and locks are maintained
        incrementally exactly as :meth:`move_and_lock` would.
        """
        if len(nodes) != len(gains):
            raise ValueError(
                f"batch has {len(nodes)} nodes but {len(gains)} gains"
            )
        graph = self.graph
        for i, node in enumerate(nodes):
            if self._locked[node]:
                raise ValueError(f"cannot move locked node {node}")
            s = self._side[node]
            mine = self._counts0 if s == 0 else self._counts1
            theirs = self._counts1 if s == 0 else self._counts0
            locked_to = self._locked1 if s == 0 else self._locked0
            for net_id in graph.node_nets(node):
                mine[net_id] -= 1
                theirs[net_id] += 1
                locked_to[net_id] += 1
            self._side[node] = 1 - s
            self._locked[node] = True
            self._num_locked += 1
            w = graph.node_weight(node)
            self._side_weights[s] -= w
            self._side_weights[1 - s] += w
            self._cut_cost -= gains[i]

    def undo_moves(self, nodes: Iterable[int]) -> None:
        """Move each node in ``nodes`` back (they must be unlocked).

        Callers pass the rolled-back suffix of a pass journal *after*
        :meth:`unlock_all`; order does not matter for correctness.
        """
        for node in nodes:
            self.move(node)

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Recompute everything from scratch and compare (test helper)."""
        graph = self.graph
        cut = 0.0
        for net_id, pins in enumerate(graph.nets):
            c0 = sum(1 for v in pins if self._side[v] == 0)
            c1 = len(pins) - c0
            assert c0 == self._counts0[net_id], f"net {net_id} count0 stale"
            assert c1 == self._counts1[net_id], f"net {net_id} count1 stale"
            l0 = sum(
                1 for v in pins if self._side[v] == 0 and self._locked[v]
            )
            l1 = sum(
                1 for v in pins if self._side[v] == 1 and self._locked[v]
            )
            assert l0 == self._locked0[net_id], f"net {net_id} locked0 stale"
            assert l1 == self._locked1[net_id], f"net {net_id} locked1 stale"
            if c0 and c1:
                cut += graph.net_cost(net_id)
        assert abs(cut - self._cut_cost) < 1e-6, "cut cost stale"
        w0 = sum(
            graph.node_weight(v)
            for v in range(graph.num_nodes)
            if self._side[v] == 0
        )
        assert abs(w0 - self._side_weights[0]) < 1e-6, "side weight stale"
        assert self._num_locked == sum(self._locked), "lock count stale"
