"""Initial partitions and ordering-based splits.

The iterative partitioners start from seeded random balanced bisections
("we start with a random 2-way partition of the circuit", paper Sec. 1); the
clustering/spectral baselines produce a 1-D node ordering and then choose
the best balanced split point along it.  Both constructions live here.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple, Union

from ..hypergraph import Hypergraph
from .balance import BalanceConstraint

RandomLike = Union[int, random.Random, None]


def _as_rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_balanced_sides(graph: Hypergraph, seed: RandomLike = None) -> List[int]:
    """Seeded random bisection: ⌊n/2⌋ nodes on side 1, the rest on side 0.

    For weighted nodes this balances *cardinality*, not weight — matching
    the paper's unit-size assumption; callers with heavily skewed weights
    should use :func:`random_weight_balanced_sides`.
    """
    rng = _as_rng(seed)
    n = graph.num_nodes
    order = list(range(n))
    rng.shuffle(order)
    sides = [0] * n
    for v in order[: n // 2]:
        sides[v] = 1
    return sides


def random_weight_balanced_sides(
    graph: Hypergraph, seed: RandomLike = None
) -> List[int]:
    """Greedy weight-balancing random bisection (heaviest-first)."""
    rng = _as_rng(seed)
    order = list(range(graph.num_nodes))
    rng.shuffle(order)
    order.sort(key=graph.node_weight, reverse=True)
    sides = [0] * graph.num_nodes
    weights = [0.0, 0.0]
    for v in order:
        target = 0 if weights[0] <= weights[1] else 1
        sides[v] = target
        weights[target] += graph.node_weight(v)
    return sides


def random_fraction_sides(
    graph: Hypergraph, fraction: float, seed: RandomLike = None
) -> List[int]:
    """Random partition with ~``fraction`` of the nodes on side 0.

    Used by recursive k-way partitioning for unequal splits (e.g. the 2:1
    first cut of a 3-way partition).
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    rng = _as_rng(seed)
    n = graph.num_nodes
    order = list(range(n))
    rng.shuffle(order)
    target = round(n * fraction)
    target = min(max(target, 1), n - 1)
    sides = [1] * n
    for v in order[:target]:
        sides[v] = 0
    return sides


def sides_from_order_prefix(
    graph: Hypergraph, order: Sequence[int], prefix_len: int
) -> List[int]:
    """Partition with ``order[:prefix_len]`` on side 0, the rest on side 1."""
    if len(order) != graph.num_nodes:
        raise ValueError("order must enumerate every node exactly once")
    sides = [1] * graph.num_nodes
    for v in order[:prefix_len]:
        sides[v] = 0
    return sides


def best_split_of_ordering(
    graph: Hypergraph,
    order: Sequence[int],
    balance: BalanceConstraint,
    objective: str = "cut",
) -> Tuple[List[int], float]:
    """Best balanced prefix split of a linear node ordering.

    Sweeps the split point across ``order``, maintaining the cut cost
    incrementally in O(total pins), and returns ``(sides, score)`` for the
    feasible split of minimum objective.  This is the "splitting" back end
    shared by the EIG1 / MELO / PARABOLI-style baselines.

    objective:
        ``"cut"`` — minimize the cutset cost among balance-feasible
        prefixes (the paper's Table-3 protocol); the returned score is the
        cut cost.
        ``"ratio"`` — minimize the Wei–Cheng ratio cut
        ``cut / (w(A) w(B))`` among feasible prefixes (the objective EIG1
        was designed for); the returned score is the *cut cost* of the
        chosen split, for comparability.

    Raises ValueError if no prefix satisfies ``balance`` (cannot happen for
    unit weights and the paper's balance regimes).
    """
    if objective not in ("cut", "ratio"):
        raise ValueError(f"unknown objective {objective!r}")
    n = graph.num_nodes
    if len(order) != n or sorted(order) != list(range(n)):
        raise ValueError("order must be a permutation of all nodes")

    # counts of pins already moved to side 0, per net
    moved = [0] * graph.num_nets
    cut = 0.0
    prefix_weight = 0.0
    total = graph.total_node_weight
    best_score = float("inf")
    best_cut = float("inf")
    best_prefix: Optional[int] = None

    for k, v in enumerate(order[:-1], start=1):
        for net_id in graph.node_nets(v):
            size = graph.net_size(net_id)
            cost = graph.net_cost(net_id)
            if moved[net_id] == 0 and size > 1:
                cut += cost  # net becomes cut (first pin crosses)
            moved[net_id] += 1
            if moved[net_id] == size and size > 1:
                cut -= cost  # net fully on side 0 again
        prefix_weight += graph.node_weight(v)
        weights = (prefix_weight, total - prefix_weight)
        if not balance.is_satisfied(weights):
            continue
        if objective == "ratio" and weights[0] > 0 and weights[1] > 0:
            score = cut / (weights[0] * weights[1])
        else:
            score = cut
        if score < best_score:
            best_score = score
            best_cut = cut
            best_prefix = k

    if best_prefix is None:
        raise ValueError("no balanced split point along the ordering")
    return sides_from_order_prefix(graph, order, best_prefix), best_cut
