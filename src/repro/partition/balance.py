"""(r1, r2) balance constraints — paper Sec. 1.

An ``(r1, r2)``-balanced 2-way partition requires ``r1 <= |Vi|/n <= r2``
for both subsets (weights generalize node counts).  The paper evaluates two
regimes (Sec. 4):

* **50-50%** (``r1 = r2 = 0.5``): exact bisection.  Single-node moves make
  exact bisection momentarily infeasible, so — as in every FM
  implementation — a slack of one (maximum-weight) node is allowed while a
  pass is in flight; :meth:`BalanceConstraint.fifty_fifty` builds this.
* **45-55%** (``r1 = 0.45, r2 = 0.55``): :meth:`BalanceConstraint.from_fractions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..hypergraph import Hypergraph


@dataclass(frozen=True)
class BalanceConstraint:
    """Absolute weight bounds ``lo <= side weight <= hi`` for each side."""

    lo: float
    hi: float
    total: float

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi < self.lo:
            raise ValueError(f"invalid balance bounds [{self.lo}, {self.hi}]")
        if self.total < self.lo + self.lo or self.total > self.hi + self.hi:
            raise ValueError(
                f"no feasible split: total={self.total} "
                f"bounds=[{self.lo}, {self.hi}]"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_fractions(
        cls, graph: Hypergraph, r1: float, r2: float
    ) -> "BalanceConstraint":
        """Bounds ``[r1*W, r2*W]`` on total node weight ``W``."""
        if not 0.0 < r1 <= r2 < 1.0:
            raise ValueError(f"need 0 < r1 <= r2 < 1, got ({r1}, {r2})")
        if r1 > 0.5 or r2 < 0.5:
            raise ValueError(
                f"2-way balance needs r1 <= 0.5 <= r2, got ({r1}, {r2})"
            )
        total = graph.total_node_weight
        return cls(lo=r1 * total, hi=r2 * total, total=total)

    @classmethod
    def fifty_fifty(cls, graph: Hypergraph) -> "BalanceConstraint":
        """Exact bisection with one-node slack (the paper's 50-50% case)."""
        total = graph.total_node_weight
        slack = max(graph.node_weights) if graph.num_nodes else 0.0
        slack = max(slack, 1.0)
        return cls(
            lo=max(0.0, total / 2.0 - slack),
            hi=min(total, total / 2.0 + slack),
            total=total,
        )

    @classmethod
    def forty_five_fifty_five(cls, graph: Hypergraph) -> "BalanceConstraint":
        """The paper's 45-55% criterion."""
        return cls.from_fractions(graph, 0.45, 0.55)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_satisfied(self, side_weights: Sequence[float]) -> bool:
        """True when both side weights lie within the bounds."""
        return all(self.lo - 1e-9 <= w <= self.hi + 1e-9 for w in side_weights)

    def move_allowed(
        self, side_weights: Sequence[float], from_side: int, weight: float
    ) -> bool:
        """May a node of ``weight`` leave ``from_side``?

        The check is one-directional (target must not overflow ``hi``,
        source must not drop below ``lo``) so that an initially unbalanced
        partition can be repaired by moves toward balance.
        """
        to_side = 1 - from_side
        new_from = side_weights[from_side] - weight
        new_to = side_weights[to_side] + weight
        return new_from >= self.lo - 1e-9 and new_to <= self.hi + 1e-9

    def describe(self) -> str:
        """Human-readable bounds as fractions of the total weight."""
        lo_frac = self.lo / self.total if self.total else 0.0
        hi_frac = self.hi / self.total if self.total else 0.0
        return f"balance [{lo_frac:.3f}, {hi_frac:.3f}] of total {self.total:g}"


@dataclass(frozen=True)
class AsymmetricBalanceConstraint:
    """Per-side bounds: side 0 in ``[lo0, hi0]`` (side 1 is implied).

    Needed by recursive k-way partitioning when k is not a power of two —
    e.g. a 3-way split first bisects at a 2:1 ratio, so the two sides have
    *different* target weights.  Duck-type compatible with
    :class:`BalanceConstraint` (same ``move_allowed`` / ``is_satisfied``
    interface), so every partitioner accepts either.
    """

    lo0: float
    hi0: float
    total: float

    def __post_init__(self) -> None:
        if self.lo0 < 0 or self.hi0 < self.lo0:
            raise ValueError(f"invalid bounds [{self.lo0}, {self.hi0}]")
        if self.hi0 > self.total:
            raise ValueError(
                f"hi0={self.hi0} exceeds total weight {self.total}"
            )

    @classmethod
    def from_fraction(
        cls, graph: Hypergraph, fraction: float, tolerance: float
    ) -> "AsymmetricBalanceConstraint":
        """Side 0 gets ``fraction ± tolerance`` of the total weight."""
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        if tolerance < 0.0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        total = graph.total_node_weight
        slack = max(tolerance * total, max(graph.node_weights, default=1.0))
        return cls(
            lo0=max(0.0, fraction * total - slack),
            hi0=min(total, fraction * total + slack),
            total=total,
        )

    def is_satisfied(self, side_weights: Sequence[float]) -> bool:
        """True when side 0's weight lies within [lo0, hi0]."""
        return self.lo0 - 1e-9 <= side_weights[0] <= self.hi0 + 1e-9

    def move_allowed(
        self, side_weights: Sequence[float], from_side: int, weight: float
    ) -> bool:
        """May a node of ``weight`` leave ``from_side`` (side-0 window check)?"""
        new_w0 = side_weights[0] + (weight if from_side == 1 else -weight)
        return self.lo0 - 1e-9 <= new_w0 <= self.hi0 + 1e-9

    def describe(self) -> str:
        """Human-readable side-0 bounds as fractions of the total weight."""
        lo = self.lo0 / self.total if self.total else 0.0
        hi = self.hi0 / self.total if self.total else 0.0
        return f"side-0 balance [{lo:.3f}, {hi:.3f}] of total {self.total:g}"


def split_sizes(total_nodes: int) -> Tuple[int, int]:
    """Exact-bisection side sizes (⌈n/2⌉, ⌊n/2⌋) for unit weights."""
    half = total_nodes // 2
    return total_nodes - half, half
