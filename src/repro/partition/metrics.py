"""Partition quality metrics and the common result record.

Every partitioner in this package returns a :class:`BipartitionResult`; the
multi-run harness and the table benches consume only this type, so all
algorithms are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..hypergraph import Hypergraph


def cut_cost(graph: Hypergraph, sides: Sequence[int]) -> float:
    """Cutset cost of an explicit side assignment (paper Sec. 1)."""
    if len(sides) != graph.num_nodes:
        raise ValueError(
            f"sides has length {len(sides)}, expected {graph.num_nodes}"
        )
    total = 0.0
    for net_id, pins in enumerate(graph.nets):
        first = sides[pins[0]]
        if any(sides[v] != first for v in pins[1:]):
            total += graph.net_cost(net_id)
    return total


def cut_nets(graph: Hypergraph, sides: Sequence[int]) -> List[int]:
    """Ids of nets crossing the partition."""
    out = []
    for net_id, pins in enumerate(graph.nets):
        first = sides[pins[0]]
        if any(sides[v] != first for v in pins[1:]):
            out.append(net_id)
    return out


def side_weights(graph: Hypergraph, sides: Sequence[int]) -> List[float]:
    """Total node weight per side."""
    weights = [0.0, 0.0]
    for v, s in enumerate(sides):
        weights[s] += graph.node_weight(v)
    return weights


def balance_ratio(graph: Hypergraph, sides: Sequence[int]) -> float:
    """Fraction of total weight on the heavier side (0.5 = perfect)."""
    w = side_weights(graph, sides)
    total = w[0] + w[1]
    if total == 0:
        return 0.5
    return max(w) / total


def ratio_cut(graph: Hypergraph, sides: Sequence[int]) -> float:
    """Ratio-cut objective ``cut(A,B) / (w(A) * w(B))`` [Wei & Cheng].

    The objective EIG1 and the WINDOW framework were originally designed
    for (paper refs [7], [1], [13]); it trades cut size against balance
    without a hard constraint.  Returns ``inf`` when either side is empty
    (an empty side is never a meaningful ratio-cut solution).
    """
    w = side_weights(graph, sides)
    if w[0] <= 0 or w[1] <= 0:
        return float("inf")
    return cut_cost(graph, sides) / (w[0] * w[1])


def improvement_percent(ours: float, theirs: float) -> float:
    """The paper's improvement metric: (difference / larger cutset) × 100.

    Positive when ``ours`` is smaller (we win); Sec. 4: "percentage
    improvements are calculated as (cutset improvement/larger cut set)x100".
    """
    larger = max(ours, theirs)
    if larger == 0:
        return 0.0
    return (theirs - ours) / larger * 100.0


@dataclass
class BipartitionResult:
    """Outcome of one partitioning run.

    Attributes
    ----------
    sides:
        Node → side assignment.
    cut:
        Cutset cost of ``sides``.
    algorithm:
        Human-readable algorithm tag ("PROP", "FM-bucket", "LA-3", ...).
    seed:
        Seed of the initial partition / run, when applicable.
    passes:
        Number of improvement passes executed (iterative methods).
    runtime_seconds:
        Wall-clock time of the run when measured by the caller.
    stats:
        Free-form per-algorithm diagnostics (moves made, eigensolve
        iterations, ...).
    pass_cuts:
        Cut cost after each accepted pass (iterative methods only) — the
        within-run convergence trace; empirically 2–4 entries (Sec. 2).
    """

    sides: List[int]
    cut: float
    algorithm: str = ""
    seed: Optional[int] = None
    passes: int = 0
    runtime_seconds: float = 0.0
    stats: Dict[str, float] = field(default_factory=dict)
    pass_cuts: List[float] = field(default_factory=list)

    def verify(self, graph: Hypergraph) -> None:
        """Assert that the recorded cut matches a from-scratch recount."""
        actual = cut_cost(graph, self.sides)
        if abs(actual - self.cut) > 1e-6:
            raise AssertionError(
                f"{self.algorithm}: recorded cut {self.cut} != actual {actual}"
            )
