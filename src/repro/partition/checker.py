"""Stand-alone partition validation.

``check_partition`` audits any node→side assignment against a netlist and
a balance constraint, returning a structured report instead of raising —
the tool a downstream flow runs on partitions loaded from disk (the CLI's
``--verify`` mode uses it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..hypergraph import Hypergraph
from .balance import BalanceConstraint
from .metrics import balance_ratio, cut_cost, cut_nets, side_weights


@dataclass
class PartitionCheck:
    """Outcome of validating a partition."""

    ok: bool
    cut: float = 0.0
    num_cut_nets: int = 0
    side_weights: List[float] = field(default_factory=list)
    balance_ratio: float = 0.0
    errors: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line status plus one line per error."""
        status = "OK" if self.ok else "INVALID"
        lines = [
            f"partition {status}: cut {self.cut:g} "
            f"({self.num_cut_nets} nets), side weights "
            f"{'/'.join(f'{w:g}' for w in self.side_weights)}, "
            f"heavier side {self.balance_ratio:.3f}"
        ]
        lines.extend(f"  error: {e}" for e in self.errors)
        return "\n".join(lines)


def check_partition(
    graph: Hypergraph,
    sides: Sequence[int],
    balance: Optional[BalanceConstraint] = None,
    expected_cut: Optional[float] = None,
) -> PartitionCheck:
    """Validate ``sides`` against ``graph`` (and optionally a balance).

    Checks: assignment length, side values in {0, 1}, both sides
    non-empty, balance satisfaction (when given), and the recorded cut
    (when given).  Never raises for bad partitions — malformed *inputs*
    (length mismatch) are the only errors reported without metrics.
    """
    errors: List[str] = []
    if len(sides) != graph.num_nodes:
        return PartitionCheck(
            ok=False,
            errors=[
                f"assignment length {len(sides)} != {graph.num_nodes} nodes"
            ],
        )
    bad_values = sorted({s for s in sides if s not in (0, 1)})
    if bad_values:
        return PartitionCheck(
            ok=False,
            errors=[f"non-binary side values: {bad_values}"],
        )
    # json round-trips may deliver 0.0/1.0; the values compared equal to
    # 0/1 above, but list indexing below needs true ints.
    sides = [int(s) for s in sides]

    weights = side_weights(graph, sides)
    cut = cut_cost(graph, sides)
    report = PartitionCheck(
        ok=True,
        cut=cut,
        num_cut_nets=len(cut_nets(graph, sides)),
        side_weights=weights,
        balance_ratio=balance_ratio(graph, sides),
    )
    if weights[0] == 0 or weights[1] == 0:
        errors.append("one side is empty")
    if balance is not None and not balance.is_satisfied(weights):
        errors.append(
            f"balance violated: weights {weights[0]:g}/{weights[1]:g} "
            f"outside [{balance.lo:g}, {balance.hi:g}]"
        )
    if expected_cut is not None and abs(cut - expected_cut) > 1e-6:
        errors.append(
            f"recorded cut {expected_cut:g} != actual {cut:g}"
        )
    report.errors = errors
    report.ok = not errors
    return report
