"""Deterministic sub-round parallel refinement on the CSR view.

The sequential pass loops (PROP in :mod:`repro.core.engine`, FM in
:mod:`repro.baselines.fm`) move one node at a time and pay per-move
container maintenance and neighbor-gain updates — the cost that
``BENCH_kernels.json`` shows dominating ``full_pass`` even after the
numpy kernels made ``all_gains`` ~4.6x faster.  The ``"subround"``
kernel restructures a pass along the synchronous sub-round scheme of
*Deterministic Parallel Hypergraph Partitioning* (Gottesbüren et al.):

1. **gains** — all node gains are computed vectorized on the
   :class:`~repro.kernels.csr.CsrView` (probabilistic Eqns. 3/4 for
   PROP, Eqn. 1 for FM);
2. **select** — a batch of best-gain, balance-feasible, **net-disjoint**
   moves is chosen by one deterministic greedy sweep over the candidates
   in ``(-gain, tie_key(seed, node))`` order;
3. **apply** — the whole batch is committed at once:
   :meth:`repro.partition.Partition.apply_batch` flips every node with
   precomputed immediate gains (exact, because net-disjointness means no
   batch move can change another's gain), and the next sub-round's
   vectorized gain sweep doubles as the wholesale side-product /
   contribution refresh that the sequential loop performs move by move.

**Determinism contract.**  Results are a pure function of
``(graph, initial sides, config, seed)`` — *never* of the worker count.
Every kernel here computes per-net products and per-node gains strictly
within range chunks (a net's product never crosses a chunk boundary, a
node's gain sum never crosses one either), so any chunking — one inline
sweep, or N workers over ``multiprocessing.shared_memory`` (see
:mod:`repro.engine.shm`) — produces bit-identical floats.  Tie-breaking
is keyed on a seeded splitmix64 hash of the node id, computed once by
the coordinator.  The worker-count-invariance matrix in
``tests/kernels/test_subround_determinism.py`` enforces this.

**Audit contract.**  Each batch is net-disjoint and sequentially
balance-feasible in journal order, so replaying it one node at a time
with the scalar :meth:`Partition.move_and_lock` reaches the identical
state with identical per-move gains.
:meth:`repro.audit.PassAuditor.check_subround_batch` performs exactly
that replay, and the pass journal feeds the existing
``after_rollback`` full-pass replay unchanged.

Note the sub-round kernel is a **different algorithm** from the
sequential ``python``/``numpy`` backends (same family, different move
interleaving): cuts are comparable but not identical.  It therefore
participates in experiment-cache fingerprints (see
``PropConfig.fingerprint_extra`` / :mod:`repro.engine.units`), unlike
the bit-identical backend switch.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.gains import DIV_SAFE_MIN
from ..datastructures import PassJournal
from ..partition import BalanceConstraint, Partition
from .csr import CsrView

__all__ = [
    "DEFAULT_BATCH_FRACTION",
    "SubroundFMEngine",
    "SubroundPropEngine",
    "batch_immediate_gains",
    "fm_gains_range",
    "fm_gains_subset",
    "gather_segments",
    "prop_gains_range",
    "prop_gains_subset",
    "prop_products_range",
    "prop_products_subset",
    "select_batch",
    "tie_break_keys",
    "vectorized_probability_map",
]

#: Fraction of the remaining free nodes a sub-round may move (at least
#: one).  Smaller fractions track the sequential algorithm more closely
#: (fresher gains per move) at the price of more sub-rounds per pass.
DEFAULT_BATCH_FRACTION = 0.1


# ----------------------------------------------------------------------
# Deterministic tie-breaking
# ----------------------------------------------------------------------
def tie_break_keys(num_nodes: int, seed: int) -> np.ndarray:
    """Seed-keyed splitmix64 hash per node (uint64, collision-free).

    splitmix64 is a bijection on uint64, so distinct nodes always get
    distinct keys — the ``(-gain, key)`` sort order is a strict total
    order, identical for every worker count and platform (numpy uint64
    arithmetic wraps mod 2^64 everywhere).
    """
    with np.errstate(over="ignore"):
        z = np.arange(num_nodes, dtype=np.uint64)
        z = z + np.uint64((seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)
        z = z + np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


# ----------------------------------------------------------------------
# Range kernels — pure functions over plain arrays, shared by the inline
# path and the shared-memory workers (repro.engine.shm).  Every output
# element is computed entirely within its chunk, which is what makes the
# results invariant under chunking (= worker count).
# ----------------------------------------------------------------------
def prop_products_range(
    elo: int,
    ehi: int,
    p: np.ndarray,
    sides: np.ndarray,
    pin_node: np.ndarray,
    pin_net: np.ndarray,
    net_offset: np.ndarray,
    net_size: np.ndarray,
    prod0_out: np.ndarray,
    prod1_out: np.ndarray,
    count1_out: np.ndarray,
) -> None:
    """Per-net side clearing-products and side-1 pin counts for nets
    ``[elo, ehi)``, written into the output arrays' matching slices.

    ``np.multiply.at`` applies factors sequentially in pin order (the
    property the numpy backend's bit-identity rests on), and each net's
    pins lie wholly inside the chunk's pin slice, so the products are
    independent of how nets are split across chunks.
    """
    j0 = int(net_offset[elo])
    j1 = int(net_offset[ehi])
    pn = pin_node[j0:j1]
    ps = sides[pn]
    pp = p[pn]
    f0 = np.where(ps == 0, pp, 1.0)
    f1 = np.where(ps == 1, pp, 1.0)
    idx = pin_net[j0:j1] - elo
    width = ehi - elo
    prod0 = np.ones(width, dtype=np.float64)
    prod1 = np.ones(width, dtype=np.float64)
    np.multiply.at(prod0, idx, f0)
    np.multiply.at(prod1, idx, f1)
    prod0_out[elo:ehi] = prod0
    prod1_out[elo:ehi] = prod1
    count1_out[elo:ehi] = np.bincount(
        idx, weights=ps.astype(np.float64), minlength=width
    )


def prop_gains_range(
    vlo: int,
    vhi: int,
    p: np.ndarray,
    sides: np.ndarray,
    locked: np.ndarray,
    prod0: np.ndarray,
    prod1: np.ndarray,
    count1: np.ndarray,
    net_size: np.ndarray,
    nm_net: np.ndarray,
    nm_owner: np.ndarray,
    nm_cost: np.ndarray,
    node_offset: np.ndarray,
    pin_node: np.ndarray,
    net_offset: np.ndarray,
    gains_out: np.ndarray,
) -> int:
    """Probabilistic gains (Eqns. 3/4) for nodes ``[vlo, vhi)``.

    Writes into ``gains_out[vlo:vhi]`` and returns the number of
    underflow recomputes (side product below :data:`DIV_SAFE_MIN`) —
    a deterministic count, identical under any chunking.  Locked nodes
    get a garbage (finite) value; callers must mask them.
    """
    a = int(node_offset[vlo])
    b = int(node_offset[vhi])
    own = nm_owner[a:b]
    net = nm_net[a:b]
    s = sides[own].astype(np.intp)
    pm = np.where(s == 0, prod0[net], prod1[net])
    po = np.where(s == 0, prod1[net], prod0[net])
    oc = np.where(s == 0, count1[net], net_size[net] - count1[net])
    pu = p[own]
    ok = (pu > 0.0) & (pm >= DIV_SAFE_MIN)
    prod_a = np.zeros(b - a, dtype=np.float64)
    np.divide(pm, pu, out=prod_a, where=ok)
    underflows = 0
    if not ok.all():
        for i in np.nonzero(~ok & ~locked[own])[0]:
            pm_i = float(pm[i])
            if 0.0 < pm_i < DIV_SAFE_MIN:
                underflows += 1
            # Exact recompute of the clearing product excluding the
            # owner — same pin order and early-zero exit as the scalar
            # net_clearing_probability.
            e = int(net[i])
            sv = int(s[i])
            ex = int(own[i])
            prod = 1.0
            for v in pin_node[int(net_offset[e]):int(net_offset[e + 1])]:
                v = int(v)
                if v != ex and sides[v] == sv:
                    prod *= p[v]
                    if prod == 0.0:
                        break
            prod_a[i] = prod
    ot = np.where(oc > 0.0, po, 1.0)
    contrib = nm_cost[a:b] * (prod_a - ot)
    gains_out[vlo:vhi] = np.bincount(
        own - vlo, weights=contrib, minlength=vhi - vlo
    )
    return underflows


def fm_gains_range(
    vlo: int,
    vhi: int,
    sides: np.ndarray,
    counts0: np.ndarray,
    counts1: np.ndarray,
    nm_net: np.ndarray,
    nm_owner: np.ndarray,
    nm_cost: np.ndarray,
    node_offset: np.ndarray,
    gains_out: np.ndarray,
) -> int:
    """FM Eqn. (1) immediate gains for nodes ``[vlo, vhi)``.

    Returns 0 (signature-compatible with the PROP gains kernel so the
    shared-memory workers can dispatch either).
    """
    a = int(node_offset[vlo])
    b = int(node_offset[vhi])
    own = nm_owner[a:b]
    net = nm_net[a:b]
    is0 = sides[own] == 0
    mine = np.where(is0, counts0[net], counts1[net])
    theirs = np.where(is0, counts1[net], counts0[net])
    cost = nm_cost[a:b]
    term = np.where(
        theirs == 0,
        np.where(mine > 1, -cost, 0.0),
        np.where(mine == 1, cost, 0.0),
    )
    gains_out[vlo:vhi] = np.bincount(
        own - vlo, weights=term, minlength=vhi - vlo
    )
    return 0


def gather_segments(
    ids: np.ndarray, offsets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flattened CSR indices for the segments ``ids``, in segment order.

    Returns ``(j, slot)``: ``j`` indexes the CSR value arrays so that
    segment ``ids[k]``'s elements appear contiguously and in their
    original CSR order, and ``slot[i] == k`` names the (compact) segment
    each flattened element belongs to.  This is what lets the subset
    kernels below accumulate per-segment results with ``np.multiply.at``
    / ``np.bincount`` in exactly the element order the full-range
    kernels use — the property their bit-identity rests on.
    """
    ids = np.asarray(ids, dtype=np.intp)
    starts = offsets[ids]
    sizes = offsets[ids + 1] - starts
    total = int(sizes.sum())
    slot = np.repeat(np.arange(ids.size, dtype=np.intp), sizes)
    prev = np.cumsum(sizes) - sizes
    j = (
        np.arange(total, dtype=np.intp)
        + np.repeat(starts - prev, sizes)
    )
    return j, slot


def fm_gains_subset(
    nodes: np.ndarray,
    sides: np.ndarray,
    counts0: np.ndarray,
    counts1: np.ndarray,
    nm_net: np.ndarray,
    nm_owner: np.ndarray,
    nm_cost: np.ndarray,
    node_offset: np.ndarray,
    gains_out: np.ndarray,
) -> int:
    """FM Eqn. (1) immediate gains for an arbitrary node subset.

    The subset analogue of :func:`fm_gains_range`: per-node terms are
    accumulated in the same CSR pin order via the compact ``slot``
    labels, so ``gains_out[v]`` for ``v`` in ``nodes`` is bit-identical
    to a full recompute.  Returns 0 (matching the range kernel).
    """
    if len(nodes) == 0:
        return 0
    j, slot = gather_segments(nodes, node_offset)
    own = nm_owner[j]
    net = nm_net[j]
    is0 = sides[own] == 0
    mine = np.where(is0, counts0[net], counts1[net])
    theirs = np.where(is0, counts1[net], counts0[net])
    cost = nm_cost[j]
    term = np.where(
        theirs == 0,
        np.where(mine > 1, -cost, 0.0),
        np.where(mine == 1, cost, 0.0),
    )
    gains_out[nodes] = np.bincount(
        slot, weights=term, minlength=len(nodes)
    )
    return 0


def prop_products_subset(
    nets: np.ndarray,
    p: np.ndarray,
    sides: np.ndarray,
    pin_node: np.ndarray,
    net_offset: np.ndarray,
    prod0_out: np.ndarray,
    prod1_out: np.ndarray,
    count1_out: np.ndarray,
) -> None:
    """Per-net side clearing-products for an arbitrary net subset.

    Writes the same values :func:`prop_products_range` would write for
    those nets, bit for bit: each net's factors are multiplied in CSR
    pin order into its own compact slot, so the subset shape cannot
    change any product.
    """
    if len(nets) == 0:
        return
    j, slot = gather_segments(nets, net_offset)
    pn = pin_node[j]
    ps = sides[pn]
    pp = p[pn]
    f0 = np.where(ps == 0, pp, 1.0)
    f1 = np.where(ps == 1, pp, 1.0)
    width = len(nets)
    prod0 = np.ones(width, dtype=np.float64)
    prod1 = np.ones(width, dtype=np.float64)
    np.multiply.at(prod0, slot, f0)
    np.multiply.at(prod1, slot, f1)
    prod0_out[nets] = prod0
    prod1_out[nets] = prod1
    count1_out[nets] = np.bincount(
        slot, weights=ps.astype(np.float64), minlength=width
    )


def prop_gains_subset(
    nodes: np.ndarray,
    p: np.ndarray,
    sides: np.ndarray,
    locked: np.ndarray,
    prod0: np.ndarray,
    prod1: np.ndarray,
    count1: np.ndarray,
    net_size: np.ndarray,
    nm_net: np.ndarray,
    nm_owner: np.ndarray,
    nm_cost: np.ndarray,
    node_offset: np.ndarray,
    pin_node: np.ndarray,
    net_offset: np.ndarray,
    gains_out: np.ndarray,
) -> int:
    """Probabilistic gains (Eqns. 3/4) for an arbitrary node subset.

    The subset analogue of :func:`prop_gains_range` — identical pin
    factors, identical underflow handling, per-node sums accumulated in
    the same pin order — so ``gains_out[v]`` for ``v`` in ``nodes`` is
    bit-identical to a full recompute.  Returns the underflow-recompute
    count for these nodes.
    """
    if len(nodes) == 0:
        return 0
    j, slot = gather_segments(nodes, node_offset)
    own = nm_owner[j]
    net = nm_net[j]
    s = sides[own].astype(np.intp)
    pm = np.where(s == 0, prod0[net], prod1[net])
    po = np.where(s == 0, prod1[net], prod0[net])
    oc = np.where(s == 0, count1[net], net_size[net] - count1[net])
    pu = p[own]
    ok = (pu > 0.0) & (pm >= DIV_SAFE_MIN)
    prod_a = np.zeros(j.size, dtype=np.float64)
    np.divide(pm, pu, out=prod_a, where=ok)
    underflows = 0
    if not ok.all():
        for i in np.nonzero(~ok & ~locked[own])[0]:
            pm_i = float(pm[i])
            if 0.0 < pm_i < DIV_SAFE_MIN:
                underflows += 1
            e = int(net[i])
            sv = int(s[i])
            ex = int(own[i])
            prod = 1.0
            for v in pin_node[int(net_offset[e]):int(net_offset[e + 1])]:
                v = int(v)
                if v != ex and sides[v] == sv:
                    prod *= p[v]
                    if prod == 0.0:
                        break
            prod_a[i] = prod
    ot = np.where(oc > 0.0, po, 1.0)
    contrib = nm_cost[j] * (prod_a - ot)
    gains_out[nodes] = np.bincount(
        slot, weights=contrib, minlength=len(nodes)
    )
    return underflows


def split_ranges(total: int, parts: int) -> List[Tuple[int, int]]:
    """``parts`` contiguous ``[lo, hi)`` ranges covering ``[0, total)``.

    Deterministic given ``(total, parts)``; some ranges may be empty
    when ``parts > total``.  Chunk boundaries never affect kernel
    results (see module docstring) — this is a load-split, not a
    semantic split.
    """
    base, extra = divmod(total, parts)
    ranges = []
    lo = 0
    for i in range(parts):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


# ----------------------------------------------------------------------
# Probability maps, vectorized
# ----------------------------------------------------------------------
def vectorized_probability_map(config):
    """Array-in/array-out version of :mod:`repro.core.probability`.

    Elementwise float operations only, so the map is deterministic for
    any input chunking; it is *not* required to match the scalar map
    bit for bit (the sub-round kernel is its own algorithm), only to be
    a clamped monotone map with the same ``pmin/pmax/glo/gup`` shape.
    """
    pmin, pmax = config.pmin, config.pmax
    glo, gup = config.glo, config.gup
    if config.probability_function == "linear":
        slope = (pmax - pmin) / (gup - glo)

        def linear(gains: np.ndarray) -> np.ndarray:
            p = pmin + slope * (gains - glo)
            return np.clip(p, pmin, pmax)

        return linear

    mid = (glo + gup) / 2.0
    scale = 8.0 / (gup - glo)
    lo = 1.0 / (1.0 + np.exp(4.0))
    span = 1.0 / (1.0 + np.exp(-4.0)) - lo

    def sigmoid(gains: np.ndarray) -> np.ndarray:
        sigma = 1.0 / (1.0 + np.exp(-scale * (gains - mid)))
        t = (sigma - lo) / span
        p = pmin + (pmax - pmin) * t
        out = np.clip(p, pmin, pmax)
        out[gains >= gup] = pmax
        out[gains <= glo] = pmin
        return out

    return sigmoid


# ----------------------------------------------------------------------
# Batch selection and application
# ----------------------------------------------------------------------
def select_batch(
    gains: np.ndarray,
    free_idx: np.ndarray,
    tie: np.ndarray,
    csr: CsrView,
    node_weights: Sequence[float],
    sides: Sequence[int],
    side_weights: Tuple[float, float],
    balance: BalanceConstraint,
    claimed: np.ndarray,
    cap: int,
) -> Tuple[List[int], int, int]:
    """One deterministic greedy sweep: best-gain, feasible, net-disjoint.

    Candidates are visited in ``(-gain, tie_key)`` order (a strict total
    order — see :func:`tie_break_keys`); a candidate is rejected when a
    net of an already-accepted move touches it (net conflict) or when
    moving it would violate ``balance`` given the moves accepted so far
    (sequential feasibility — the exact trajectory a one-at-a-time
    replay of the batch sees).  The sweep stops at ``cap`` accepted
    moves or when the candidate list is exhausted, so a feasible move
    anywhere in the order is always found (the FM both-sides rule,
    generalized).

    Returns ``(batch, net_conflicts, balance_rejects)``; ``claimed`` is
    an ``(num_nets,)`` bool scratch, cleared on entry.
    """
    claimed.fill(False)
    order = free_idx[np.lexsort((tie[free_idx], -gains[free_idx]))]
    node_offset = csr.node_offset_list
    nm_net = csr.nm_net
    w0, w1 = side_weights
    batch: List[int] = []
    conflicts = 0
    balance_rejects = 0
    for v in order.tolist():
        nets = nm_net[node_offset[v]:node_offset[v + 1]]
        if claimed[nets].any():
            conflicts += 1
            continue
        s = sides[v]
        w = node_weights[v]
        if not balance.move_allowed((w0, w1), s, w):
            balance_rejects += 1
            continue
        claimed[nets] = True
        batch.append(v)
        if s == 0:
            w0 -= w
            w1 += w
        else:
            w1 -= w
            w0 += w
        if len(batch) >= cap:
            break
    return batch, conflicts, balance_rejects


def batch_immediate_gains(
    batch: Sequence[int],
    csr: CsrView,
    sides: Sequence[int],
    counts0: np.ndarray,
    counts1: np.ndarray,
) -> np.ndarray:
    """Pre-move FM immediate gains for a net-disjoint batch, vectorized.

    Because the batch is net-disjoint, no batch move changes another
    batch node's nets — so these pre-batch values equal what a
    sequential one-at-a-time application would realize move by move,
    bit for bit (the per-node ``±cost`` additions run in the same
    node-major net order as :meth:`Partition.move`, via the sequential
    accumulation of ``np.bincount``).
    """
    node_offset = csr.node_offset_list
    starts = [node_offset[v] for v in batch]
    ends = [node_offset[v + 1] for v in batch]
    lens = np.asarray(ends, dtype=np.intp) - np.asarray(starts, dtype=np.intp)
    inc = np.concatenate(
        [np.arange(s, e, dtype=np.intp) for s, e in zip(starts, ends)]
    ) if batch else np.empty(0, dtype=np.intp)
    pos = np.repeat(np.arange(len(batch), dtype=np.intp), lens)
    net = csr.nm_net[inc]
    cost = csr.nm_cost[inc]
    s = np.repeat(
        np.asarray([sides[v] for v in batch], dtype=np.intp), lens
    )
    is0 = s == 0
    mine = np.where(is0, counts0[net], counts1[net])
    theirs = np.where(is0, counts1[net], counts0[net])
    term = np.where(
        theirs == 0,
        np.where(mine > 1, -cost, 0.0),
        np.where(mine == 1, cost, 0.0),
    )
    return np.bincount(pos, weights=term, minlength=len(batch))


# ----------------------------------------------------------------------
# Pass engines
# ----------------------------------------------------------------------
class _SubroundEngineBase:
    """Shared machinery of the PROP and FM sub-round pass engines.

    One engine instance serves one run (it owns the CSR view, the
    optional shared-memory worker pool, and the run-level telemetry);
    the run loop calls :meth:`run_pass` per pass and :meth:`close` in a
    ``finally``.
    """

    kernel_name = "subround"
    algorithm = "subround"

    def __init__(
        self,
        partition: Partition,
        seed: Optional[int],
        workers: int = 0,
        batch_fraction: float = DEFAULT_BATCH_FRACTION,
    ) -> None:
        if not 0.0 < batch_fraction <= 1.0:
            raise ValueError(
                f"batch_fraction must be in (0, 1], got {batch_fraction}"
            )
        self.partition = partition
        self.csr = CsrView(partition.graph)
        self.seed = seed if seed is not None else 0
        self.requested_workers = max(0, int(workers))
        self.batch_fraction = batch_fraction
        self.tie = tie_break_keys(partition.graph.num_nodes, self.seed)
        # Run-level telemetry (surfaced in BipartitionResult.stats).
        self.subrounds = 0
        self.conflicts = 0
        self.balance_rejects = 0
        self.batch_max = 0
        self.underflow_recomputes = 0
        self.probability_writes = 0
        self.shm_fallbacks = 0
        self.shm_attach_seconds = 0.0
        self.workers_attached = 0
        # Scratch reused across sub-rounds.
        E = self.csr.num_nets
        n = self.csr.num_nodes
        self._claimed = np.zeros(E, dtype=bool)
        self._prod0 = np.empty(E, dtype=np.float64)
        self._prod1 = np.empty(E, dtype=np.float64)
        self._count1 = np.empty(E, dtype=np.float64)
        self._gains = np.zeros(n, dtype=np.float64)
        self._sides = np.empty(n, dtype=np.int8)
        self._locked = np.empty(n, dtype=bool)
        self._pool = None
        self._pool_tried = False

    # -- worker pool --------------------------------------------------
    def _ensure_pool(self):
        """Start the shared-memory pool lazily; inline on any failure."""
        if self._pool is not None or self._pool_tried:
            return self._pool
        self._pool_tried = True
        if self.requested_workers < 2:
            return None
        from ..engine.shm import SubroundPool, pool_supported

        if not pool_supported():
            self.shm_fallbacks += 1
            return None
        try:
            self._pool = SubroundPool(self.csr, self.requested_workers)
            self.shm_attach_seconds += self._pool.attach_seconds
            self.workers_attached = self._pool.workers
        except Exception:
            self.shm_fallbacks += 1
            self._pool = None
        return self._pool

    def _pool_failed(self) -> None:
        """Tear the pool down after a worker failure; inline from here on."""
        self.shm_fallbacks += 1
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def close(self) -> None:
        """Shut the worker pool down and unlink its shared segments."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    @property
    def effective_workers(self) -> int:
        """Workers that attached over the run (0 = ran fully inline)."""
        return self.workers_attached

    # -- state mirrors ------------------------------------------------
    def _refresh_mirrors(self) -> None:
        part = self.partition
        np.copyto(
            self._sides, np.asarray(part.sides_view(), dtype=np.int8)
        )
        np.copyto(
            self._locked, np.asarray(part.locked_view(), dtype=bool)
        )

    # -- the pass -----------------------------------------------------
    def run_pass(
        self,
        balance: BalanceConstraint,
        pass_index: int,
        observer=None,
        auditor=None,
        rec=None,
        phase=None,
        counters=None,
    ) -> PassJournal:
        """One tentative-move pass as a sequence of sub-rounds.

        Mirrors the sequential ``_run_pass`` contract: locks are left
        set, the journal records every tentative move with its realized
        immediate gain, and the caller performs the best-prefix
        rollback.
        """
        part = self.partition
        graph = part.graph
        if auditor is not None:
            auditor.start_pass(part)

        t0 = time.perf_counter()
        self._refresh_mirrors()
        self._bootstrap()
        t1 = time.perf_counter()
        gains = self._refine()
        t2 = time.perf_counter()

        journal = PassJournal()
        node_weights = graph.node_weights
        while True:
            free_idx = np.flatnonzero(~self._locked)
            if free_idx.size == 0:
                break
            cap = max(1, int(free_idx.size * self.batch_fraction))
            batch, conflicts, brejects = select_batch(
                gains, free_idx, self.tie, self.csr, node_weights,
                part.sides_view(), part.side_weights, balance,
                self._claimed, cap,
            )
            self.conflicts += conflicts
            self.balance_rejects += brejects
            if not batch:
                break
            self.subrounds += 1
            self.batch_max = max(self.batch_max, len(batch))
            if counters is not None:
                counters.subrounds += 1
                counters.subround_batch_nodes += len(batch)
                counters.subround_conflicts += conflicts
                counters.subround_balance_rejects += brejects

            counts0 = np.asarray(part.counts_view(0), dtype=np.int64)
            counts1 = np.asarray(part.counts_view(1), dtype=np.int64)
            imm = batch_immediate_gains(
                batch, self.csr, part.sides_view(), counts0, counts1
            ).tolist()
            pre_sides = part.sides if auditor is not None else None
            from_sides = [part.side(v) for v in batch]
            part.apply_batch(batch, imm)
            self._on_batch_applied(batch)

            for j, v in enumerate(batch):
                journal.record(v, from_sides[j], imm[j])
                if rec is not None:
                    rec.move(
                        pass_index, len(journal) - 1, v, from_sides[j],
                        float(gains[v]), imm[j],
                    )
                    counters.moves += 1
                if observer is not None:
                    observer(pass_index, v, float(gains[v]), imm[j])
            if auditor is not None:
                auditor.after_batch(part, batch, imm)
                auditor.check_subround_batch(part, pre_sides, batch, imm)

            gains = self._next_gains(gains)
        t3 = time.perf_counter()
        if phase is not None:
            phase["bootstrap_seconds"] += t1 - t0
            phase["refine_seconds"] += t2 - t1
            phase["move_loop_seconds"] += t3 - t2
        if rec is not None:
            rec.span(pass_index, "bootstrap", t1 - t0)
            rec.span(pass_index, "refine", t2 - t1)
            rec.span(pass_index, "move_loop", t3 - t2)
            rec.counters(pass_index, counters.as_dict())
        return journal

    def run_stats(self) -> dict:
        """Sub-round telemetry for ``BipartitionResult.stats``."""
        return {
            "subrounds": float(self.subrounds),
            "subround_conflicts": float(self.conflicts),
            "subround_balance_rejects": float(self.balance_rejects),
            "subround_batch_max": float(self.batch_max),
            "subround_workers": float(self.effective_workers),
            "subround_shm_fallbacks": float(self.shm_fallbacks),
            "shm_attach_seconds": self.shm_attach_seconds,
        }

    # -- hooks implemented by the PROP / FM specializations -----------
    def _bootstrap(self) -> None:
        raise NotImplementedError

    def _refine(self) -> np.ndarray:
        raise NotImplementedError

    def _next_gains(self, gains: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _on_batch_applied(self, batch: Sequence[int]) -> None:
        for v in batch:
            self._locked[v] = True
            self._sides[v] ^= 1


class SubroundPropEngine(_SubroundEngineBase):
    """PROP pass engine with sub-round batched moves.

    Keeps the paper's probability machinery: bootstrap (``pinit`` or
    deterministic FM gains), ``refinement_iterations`` gain↔probability
    cycles at pass start, and — when
    ``config.update_neighbor_probabilities`` is on — a probability
    refresh for the *neighbors of the applied batch* after every
    sub-round (the batched analogue of the per-move neighbor updates of
    Sec. 3.4).  The locality of that refresh is also what makes the
    inter-sub-round update incremental: only nets whose pins changed
    probability or side need new products, and only nodes on those nets
    need new gains — every other gain is mathematically unchanged, so
    the subset recompute is exact, not approximate.
    """

    algorithm = "PROP"

    def __init__(
        self,
        partition: Partition,
        config,
        seed: Optional[int],
    ) -> None:
        super().__init__(
            partition, seed,
            workers=config.subround_workers,
            batch_fraction=config.subround_batch_fraction,
        )
        self.config = config
        self.prob_map = vectorized_probability_map(config)
        self.p = np.zeros(partition.graph.num_nodes, dtype=np.float64)
        self._last_batch: Optional[np.ndarray] = None

    # -- gains --------------------------------------------------------
    def _compute_gains(self) -> np.ndarray:
        pool = self._ensure_pool()
        if pool is not None:
            try:
                underflows = pool.prop_gains(
                    self.p, self._sides, self._locked,
                    self._prod0, self._prod1, self._count1, self._gains,
                )
                self.underflow_recomputes += underflows
                return self._gains
            except Exception:
                self._pool_failed()
        csr = self.csr
        prop_products_range(
            0, csr.num_nets, self.p, self._sides,
            csr.pin_node, csr.pin_net, csr.net_offset, csr.net_size,
            self._prod0, self._prod1, self._count1,
        )
        self.underflow_recomputes += prop_gains_range(
            0, csr.num_nodes, self.p, self._sides, self._locked,
            self._prod0, self._prod1, self._count1, csr.net_size,
            csr.nm_net, csr.nm_owner, csr.nm_cost, csr.node_offset,
            csr.pin_node, csr.net_offset, self._gains,
        )
        return self._gains

    def _set_free_probabilities(self, values: np.ndarray) -> None:
        free = ~self._locked
        self.p[free] = values[free]
        self.p[self._locked] = 0.0
        self.probability_writes += 1

    def _bootstrap(self) -> None:
        config = self.config
        if config.init_method == "pinit":
            self._set_free_probabilities(
                np.full(self.p.shape, config.pinit)
            )
            return
        csr = self.csr
        part = self.partition
        counts0 = np.asarray(part.counts_view(0), dtype=np.int64)
        counts1 = np.asarray(part.counts_view(1), dtype=np.int64)
        fm_gains_range(
            0, csr.num_nodes, self._sides, counts0, counts1,
            csr.nm_net, csr.nm_owner, csr.nm_cost, csr.node_offset,
            self._gains,
        )
        self._set_free_probabilities(self.prob_map(self._gains))

    def _refine(self) -> np.ndarray:
        gains = self._compute_gains()
        for _ in range(self.config.refinement_iterations):
            self._set_free_probabilities(self.prob_map(gains))
            gains = self._compute_gains()
        return gains.copy()

    def _next_gains(self, gains: np.ndarray) -> np.ndarray:
        csr = self.csr
        batch = self._last_batch
        if batch is None or batch.size == 0:
            return self._compute_gains().copy()
        if self.config.update_neighbor_probabilities:
            bj, _ = gather_segments(batch, csr.node_offset)
            pj, _ = gather_segments(
                np.unique(csr.nm_net[bj]), csr.net_offset
            )
            neighbors = np.unique(csr.pin_node[pj])
            refresh = neighbors[~self._locked[neighbors]]
            if refresh.size:
                self.p[refresh] = self.prob_map(gains[refresh])
                self.probability_writes += 1
            changed = np.union1d(batch, refresh)
        else:
            changed = batch
        cj, _ = gather_segments(changed, csr.node_offset)
        nets = np.unique(csr.nm_net[cj])
        prop_products_subset(
            nets, self.p, self._sides, csr.pin_node, csr.net_offset,
            self._prod0, self._prod1, self._count1,
        )
        uj, _ = gather_segments(nets, csr.net_offset)
        touched = np.unique(csr.pin_node[uj])
        if touched.size >= csr.num_nodes:
            # Everything is affected anyway: take the full sweep, which
            # the worker pool parallelizes.  Same values either way.
            return self._compute_gains().copy()
        self.underflow_recomputes += prop_gains_subset(
            touched, self.p, self._sides, self._locked,
            self._prod0, self._prod1, self._count1, csr.net_size,
            csr.nm_net, csr.nm_owner, csr.nm_cost, csr.node_offset,
            csr.pin_node, csr.net_offset, self._gains,
        )
        return self._gains.copy()

    def _on_batch_applied(self, batch: Sequence[int]) -> None:
        super()._on_batch_applied(batch)
        arr = np.asarray(batch, dtype=np.intp)
        self.p[arr] = 0.0
        self._last_batch = arr


class SubroundFMEngine(_SubroundEngineBase):
    """FM pass engine with sub-round batched moves.

    Selection gains are the exact Eqn. (1) immediate gains; batches are
    net-disjoint so applied gains equal selection gains.  Between
    sub-rounds only the pins of nets attached to the applied batch are
    recomputed (:func:`fm_gains_subset`) — a batch changes pin counts
    only on its own nets and sides only on its own nodes, so every
    other node's Eqn. (1) sum is mathematically unchanged and the
    subset update is exact, not approximate.
    """

    algorithm = "FM"

    def __init__(
        self,
        partition: Partition,
        seed: Optional[int],
        workers: int = 0,
        batch_fraction: float = DEFAULT_BATCH_FRACTION,
    ) -> None:
        super().__init__(
            partition, seed, workers=workers, batch_fraction=batch_fraction
        )
        self._last_batch: Optional[np.ndarray] = None

    def _compute_gains(self) -> np.ndarray:
        part = self.partition
        counts0 = np.asarray(part.counts_view(0), dtype=np.int64)
        counts1 = np.asarray(part.counts_view(1), dtype=np.int64)
        pool = self._ensure_pool()
        if pool is not None:
            try:
                pool.fm_gains(
                    self._sides, self._locked, counts0, counts1, self._gains
                )
                return self._gains
            except Exception:
                self._pool_failed()
        csr = self.csr
        fm_gains_range(
            0, csr.num_nodes, self._sides, counts0, counts1,
            csr.nm_net, csr.nm_owner, csr.nm_cost, csr.node_offset,
            self._gains,
        )
        return self._gains

    def _bootstrap(self) -> None:
        self._last_batch = None

    def _refine(self) -> np.ndarray:
        return self._compute_gains().copy()

    def _next_gains(self, gains: np.ndarray) -> np.ndarray:
        csr = self.csr
        batch = self._last_batch
        if batch is None or batch.size == 0:
            return self._compute_gains().copy()
        bj, _ = gather_segments(batch, csr.node_offset)
        nets = np.unique(csr.nm_net[bj])
        uj, _ = gather_segments(nets, csr.net_offset)
        touched = np.unique(csr.pin_node[uj])
        if touched.size >= csr.num_nodes:
            # Everything is affected anyway: take the full sweep, which
            # the worker pool parallelizes.  Same values either way.
            return self._compute_gains().copy()
        part = self.partition
        counts0 = np.asarray(part.counts_view(0), dtype=np.int64)
        counts1 = np.asarray(part.counts_view(1), dtype=np.int64)
        fm_gains_subset(
            touched, self._sides, counts0, counts1,
            csr.nm_net, csr.nm_owner, csr.nm_cost, csr.node_offset,
            self._gains,
        )
        return self._gains.copy()

    def _on_batch_applied(self, batch: Sequence[int]) -> None:
        super()._on_batch_applied(batch)
        self._last_batch = np.asarray(batch, dtype=np.intp)
