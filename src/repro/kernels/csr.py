"""CSR-packed hypergraph view backing the vectorized kernels.

:class:`repro.hypergraph.Hypergraph` stores nets as tuples-of-tuples —
ideal for the scalar engines, but every vectorized operation would pay a
Python-level gather.  :class:`CsrView` packs the same incidence structure
into contiguous arrays once per run (``run_prop`` / ``run_fm`` /
``run_la`` build it at engine construction):

* **net-major** — ``pin_node[j]`` lists every net's pins back to back
  (``net_offset[e] .. net_offset[e+1]`` is net ``e``'s slice, pins in the
  hypergraph's pin order), with ``pin_net[j]`` the owning net id;
* **node-major** — one entry per (node, net) incidence in
  ``graph.node_nets`` order: ``nm_net[i]`` / ``nm_owner[i]`` with
  ``node_offset[v] .. node_offset[v+1]`` the slice of node ``v``;
* **cross-links** — ``netpin_to_nodepin[j]`` maps the net-major pin ``j``
  to its node-major index, so the incremental move engine can address the
  flat contribution cache from a net scan.

Pin order is load-bearing: the kernels promise bit-identical results to
the scalar loops, which accumulate per-net products in net-pin order and
per-node sums in ``node_nets`` order.  Both layouts preserve exactly
those orders (see :mod:`repro.kernels.numpy_backend`).

This module imports numpy at load time; it is only imported once
:func:`repro.kernels.resolve_kernel` has established numpy is available.
"""

from __future__ import annotations

import time
from itertools import accumulate

import numpy as np

from ..hypergraph import Hypergraph


class CsrView:
    """Immutable contiguous-array view of one hypergraph."""

    __slots__ = (
        "num_nodes",
        "num_nets",
        "num_pins",
        "pin_node",
        "pin_net",
        "net_offset",
        "net_cost",
        "net_size",
        "nm_net",
        "nm_cost",
        "nm_flip",
        "nm_owner",
        "node_offset",
        "netpin_to_nodepin",
        "net_offset_list",
        "node_offset_list",
        "netpin_to_nodepin_list",
        "build_seconds",
    )

    def __init__(self, graph: Hypergraph) -> None:
        t0 = time.perf_counter()
        nets = graph.nets
        n = graph.num_nodes
        e = graph.num_nets
        m = graph.num_pins
        self.num_nodes = n
        self.num_nets = e
        self.num_pins = m

        pin_node = [0] * m
        pin_net = [0] * m
        sizes = [0] * e
        j = 0
        for net_id, pins in enumerate(nets):
            sizes[net_id] = len(pins)
            for v in pins:
                pin_node[j] = v
                pin_net[j] = net_id
                j += 1
        net_offset = [0] + list(accumulate(sizes))

        degrees = [graph.node_degree(v) for v in range(n)]
        node_offset = [0] + list(accumulate(degrees))
        nm_net = [0] * m
        nm_owner = [0] * m
        i = 0
        for v in range(n):
            for net_id in graph.node_nets(v):
                nm_net[i] = net_id
                nm_owner[i] = v
                i += 1

        # Net-major pin j -> node-major index.  ``node_nets`` lists a
        # node's nets in ascending net id (construction order), and the
        # net-major sweep below visits nets in the same ascending order,
        # so a per-node cursor lands each pin on its node-major slot.
        cursor = node_offset[:-1].copy() if n else []
        mapping = [0] * m
        j = 0
        for pins in nets:
            for v in pins:
                mapping[j] = cursor[v]
                cursor[v] += 1
                j += 1

        self.pin_node = np.asarray(pin_node, dtype=np.intp)
        self.pin_net = np.asarray(pin_net, dtype=np.intp)
        self.net_offset = np.asarray(net_offset, dtype=np.intp)
        self.net_cost = np.asarray(graph.net_costs, dtype=np.float64)
        # Pin counts as float64: exact for any realistic net (< 2^53 pins)
        # and directly usable as bincount weights / comparison operands.
        self.net_size = np.asarray(sizes, dtype=np.float64)
        self.nm_net = np.asarray(nm_net, dtype=np.intp)
        # Per-incidence net cost, pre-gathered once (static per graph).
        self.nm_cost = self.net_cost[self.nm_net]
        # Flat-index helper for the (2, num_nets) side stacks used by the
        # numpy engine: with ``flat = s*E + net`` the other side's slot is
        # ``nm_flip - flat`` because their sum is always ``E + 2*net``.
        self.nm_flip = self.nm_net * 2 + e
        self.nm_owner = np.asarray(nm_owner, dtype=np.intp)
        self.node_offset = np.asarray(node_offset, dtype=np.intp)
        self.netpin_to_nodepin = np.asarray(mapping, dtype=np.intp)
        # Plain-list twins for the scalar move loop (element access on a
        # Python list is ~3x cheaper than on an ndarray and returns plain
        # ints, keeping numpy scalar types out of the hot path).
        self.net_offset_list = net_offset
        self.node_offset_list = node_offset
        self.netpin_to_nodepin_list = mapping
        self.build_seconds = time.perf_counter() - t0
