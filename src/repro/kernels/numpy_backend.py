"""NumPy gain kernels — bit-identical vectorization of the scalar engines.

The contract of this module is *exact* numerical equivalence with
:mod:`repro.core.gains` (and the FM/LA init loops): same floats, same
underflow-guard branches, same counter increments — so the move sequences,
prefix choices, and cuts of every partitioner are identical bit for bit
regardless of backend.  That contract rests on three verified properties
of the primitives used here (and *only* these primitives):

* ``np.multiply.at(out, idx, factors)`` applies factors **sequentially in
  input order** — the same left-to-right order as the scalar per-net
  product loops.  Multiplying by the masked-out ``1.0`` factors is an
  exact IEEE identity, so the per-side products match the scalar
  interleaved loop bit for bit.  (``np.multiply.reduceat`` does *not*
  guarantee this — it unrolls into multiple accumulators — and must never
  be used here.)
* ``np.bincount(idx, weights=w)`` accumulates weights sequentially in
  input order starting from ``+0.0`` — the same order as the scalar
  per-node sums over ``node_nets``.  Adding the masked-out ``+0.0`` terms
  is exact because no partial sum is ever ``-0.0`` (partial sums of the
  gain terms that cancel exactly yield ``+0.0`` under round-to-nearest).
  (``np.add.reduce``/``reduceat`` use pairwise summation and must never
  be used here.)
* Elementwise divide/subtract/multiply are IEEE-correct per element, so
  they match the corresponding scalar expressions exactly.

The incremental move-loop engine keeps a per-net side-product cache
(plain Python lists — the per-move working set is a handful of nets, where
list indexing beats ndarray indexing and avoids leaking ``np.float64``
into gain containers and journals) that is invalidated by
``set_probability``/``on_lock``/``fill`` and refreshed wholesale by the
vectorized bootstrap/refinement kernels, so a move costs O(pins of the
moved node's nets) without rescanning unchanged nets.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.gains import DIV_SAFE_MIN, ProbabilisticGainEngine
from ..partition import Partition
from .csr import CsrView

__all__ = ["NumpyGainEngine", "fm_initial_gains", "la_initial_vectors"]


class NumpyGainEngine(ProbabilisticGainEngine):
    """Drop-in :class:`ProbabilisticGainEngine` with vectorized kernels.

    Overrides the O(m) bulk computations (:meth:`all_gains` and the
    cached-strategy bootstrap) with array kernels over a :class:`CsrView`,
    and the cached-strategy move update with an incremental engine that
    reuses per-net side products across moves when no pin of the net has
    changed.  Everything else — scalar ``node_gain``, probability
    maintenance, validation — is inherited, so the recompute-strategy move
    loop is *identical* code to the python backend.
    """

    __slots__ = (
        "csr",
        "_prod0",
        "_prod1",
        "_prod_src",
        "_prod_lists_fresh",
        "_prod_valid",
        "_dirty_nodes",
        "_all_invalid",
        "_buf",
        "product_cache_hits",
        "product_cache_misses",
    )

    kernel_name = "numpy"

    def __init__(
        self,
        partition: Partition,
        probabilities: Optional[Sequence[float]] = None,
        csr: Optional[CsrView] = None,
    ) -> None:
        super().__init__(partition, probabilities)
        self.csr = csr if csr is not None else CsrView(partition.graph)
        num_nets = partition.graph.num_nets
        #: Cached per-net side clearing-products (Sec. 3.1's p(n^{1→2})
        #: without exclusions) and their validity flags.  The bulk kernels
        #: refresh the cache as a (2, num_nets) array (``_prod_src``); the
        #: plain-list twins consumed by the scalar move loop are
        #: materialized lazily (see :meth:`_ensure_product_lists`), so
        #: refinement iterations never pay the array→list conversion.
        self._prod0: List[float] = [1.0] * num_nets
        self._prod1: List[float] = [1.0] * num_nets
        self._prod_src: Optional[np.ndarray] = None
        self._prod_lists_fresh = True
        self._prod_valid: List[bool] = [False] * num_nets
        # Deferred invalidation: probability writes append the touched
        # node here (O(1)) instead of walking its nets; the walk happens
        # once, at the next cache read (see _flush_invalidations).
        self._dirty_nodes: List[int] = []
        self._all_invalid = False
        #: Incremental-engine telemetry: nets whose cached products were
        #: reused / had to be rescanned during move updates.
        self.product_cache_hits = 0
        self.product_cache_misses = 0
        # Preallocated scratch for the bulk kernels: one allocation per
        # run instead of a dozen num_pins-sized temporaries per call.
        m = self.csr.num_pins
        self._buf = {
            "pin_side": np.empty(m, dtype=np.intp),
            "pin_p": np.empty(m, dtype=np.float64),
            "pin_mask": np.empty(m, dtype=bool),
            "f0": np.empty(m, dtype=np.float64),
            "f1": np.empty(m, dtype=np.float64),
            "prods": np.empty(2 * num_nets, dtype=np.float64),
            "counts": np.empty(2 * num_nets, dtype=np.float64),
            "s": np.empty(m, dtype=np.intp),
            "flat": np.empty(m, dtype=np.intp),
            "flat_o": np.empty(m, dtype=np.intp),
            "pm": np.empty(m, dtype=np.float64),
            "po": np.empty(m, dtype=np.float64),
            "oc": np.empty(m, dtype=np.float64),
            "pu": np.empty(m, dtype=np.float64),
            "prod_a": np.empty(m, dtype=np.float64),
            "ot": np.empty(m, dtype=np.float64),
            "contrib": np.empty(m, dtype=np.float64),
            "ok": np.empty(m, dtype=bool),
            "ok2": np.empty(m, dtype=bool),
        }

    # ------------------------------------------------------------------
    # Cache invalidation — any probability change invalidates the products
    # of the touched node's nets.  Side changes (moves) only happen via
    # move_and_lock during a pass, whose on_lock lands here too; rollback
    # moves between passes are covered because every pass bootstrap
    # rewrites all free probabilities before any product is read.
    # Invalidation is deferred: the hot probability writes (n per
    # refinement sweep) just append the node; the per-net walk runs once,
    # at the next cache read.
    # ------------------------------------------------------------------
    def set_probability(self, node: int, value: float) -> None:
        super().set_probability(node, value)
        self._dirty_nodes.append(node)

    def fill(self, value: float) -> None:
        super().fill(value)
        self._all_invalid = True
        self._dirty_nodes.clear()

    def on_lock(self, node: int) -> None:
        super().on_lock(node)
        self._dirty_nodes.append(node)

    def _flush_invalidations(self) -> None:
        """Apply deferred invalidations before any validity flag is read."""
        if self._all_invalid:
            # Supersedes any queued per-node invalidation.
            self._prod_valid = [False] * self.csr.num_nets
            self._all_invalid = False
            self._dirty_nodes.clear()
        elif self._dirty_nodes:
            valid = self._prod_valid
            node_nets = self.partition.graph.node_nets
            for v in self._dirty_nodes:
                for net_id in node_nets(v):
                    valid[net_id] = False
            self._dirty_nodes.clear()

    # ------------------------------------------------------------------
    # Vectorized bulk kernels
    # ------------------------------------------------------------------
    def _bulk_kernel(
        self, p_arr: np.ndarray, side_arr: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-net side products + node-major contributions in one sweep.

        Returns ``(prod0, prod1, contrib)``: the per-net side
        clearing-products and the per-(node, net) gain contributions
        (Eqns. 3–6) in node-major order.  All three are views into the
        engine's reused scratch buffers — valid only until the next bulk
        call; callers copy what they keep.  Bit-identical to the scalar
        engines:

        * masked pins contribute an exact ``×1.0`` identity and
          ``multiply.at`` applies factors in pin order, matching the
          scalar product loops; locked pins carry ``p = 0`` and force
          their side's product to ``+0.0`` exactly as in the scalar path;
        * other-side pin counts are recovered with an exact
          small-integer ``bincount`` (only their ``> 0`` predicate is
          consumed, as in the scalar branch);
        * contribution entries of locked owners are garbage (their divide
          is masked off) and must be ignored by callers, mirroring the
          scalar engines which skip locked nodes outright;
        * the underflow/zero fallback loop visits pins in node-major
          order — the same (node, net) order as the scalar loops — so
          ``underflow_recomputes`` advances identically on both backends.
        """
        part = self.partition
        csr = self.csr
        b = self._buf
        E = csr.num_nets

        # --- net-major: side clearing-products -------------------------
        pin_side = b["pin_side"]
        pin_p = b["pin_p"]
        mask = b["pin_mask"]
        np.take(side_arr, csr.pin_node, out=pin_side)
        np.take(p_arr, csr.pin_node, out=pin_p)
        # ×1.0 substitution via masked copy (pure selection, identical to
        # np.where but into the preallocated factor buffers).
        f0 = b["f0"]
        f1 = b["f1"]
        f0.fill(1.0)
        f1.fill(1.0)
        np.equal(pin_side, 0, out=mask)
        np.copyto(f0, pin_p, where=mask)
        np.equal(pin_side, 1, out=mask)
        np.copyto(f1, pin_p, where=mask)
        prods = b["prods"]
        prods.fill(1.0)
        prod0 = prods[:E]
        prod1 = prods[E:]
        np.multiply.at(prod0, csr.pin_net, f0)
        np.multiply.at(prod1, csr.pin_net, f1)
        # Per-net side pin counts: count1 sums the 0/1 sides (exact in
        # float64), count0 is the static net size minus count1.
        counts = b["counts"]
        count1 = np.bincount(csr.pin_net, weights=pin_side, minlength=E)
        np.subtract(csr.net_size, count1, out=counts[:E])
        counts[E:] = count1

        # --- node-major: per-(node, net) contributions ------------------
        own = csr.nm_owner
        net = csr.nm_net
        s = b["s"]
        np.take(side_arr, own, out=s)
        # Flat indices into the length-2E side stacks: mine = s*E + net,
        # other = nm_flip - mine (their sum is always E + 2*net) — a
        # single gather per selection, no arithmetic on the values.
        flat = b["flat"]
        flat_o = b["flat_o"]
        np.multiply(s, E, out=flat)
        np.add(flat, net, out=flat)
        np.subtract(csr.nm_flip, flat, out=flat_o)
        pm = b["pm"]
        po = b["po"]
        oc = b["oc"]
        pu = b["pu"]
        np.take(prods, flat, out=pm)
        np.take(prods, flat_o, out=po)
        np.take(counts, flat_o, out=oc)
        np.take(p_arr, own, out=pu)
        ok = b["ok"]
        ok2 = b["ok2"]
        np.greater(pu, 0.0, out=ok)
        np.greater_equal(pm, DIV_SAFE_MIN, out=ok2)
        np.logical_and(ok, ok2, out=ok)
        prod_a = b["prod_a"]
        prod_a.fill(0.0)
        np.divide(pm, pu, out=prod_a, where=ok)
        if not ok.all():
            locked_arr = np.asarray(part.locked_view(), dtype=bool)
            np.logical_not(ok, out=ok2)
            for i in np.nonzero(ok2 & ~locked_arr[own])[0]:
                pm_i = float(pm[i])
                if 0.0 < pm_i < DIV_SAFE_MIN:
                    self.underflow_recomputes += 1
                prod_a[i] = self.net_clearing_probability(
                    int(net[i]), int(s[i]), exclude=int(own[i])
                )
        # cost*(prod_a - po) / cost*(prod_a - 1.0), selected before the
        # subtract+multiply — elementwise identical to selecting after.
        ot = b["ot"]
        ot.fill(1.0)
        np.greater(oc, 0.0, out=ok2)
        np.copyto(ot, po, where=ok2)
        contrib = b["contrib"]
        np.subtract(prod_a, ot, out=contrib)
        np.multiply(csr.nm_cost, contrib, out=contrib)
        return prod0, prod1, contrib

    def _refresh_product_cache(
        self, prod0: np.ndarray, prod1: np.ndarray
    ) -> None:
        """Adopt freshly computed side products (whole cache valid).

        ``prod0``/``prod1`` are views of the reused scratch buffer, so the
        cache keeps its own copy; the plain-list twins the move loop reads
        are materialized lazily (:meth:`_ensure_product_lists`) — the
        refinement loop refreshes the cache every ``all_gains`` call and
        would otherwise pay a useless array→list conversion each time.
        """
        self._prod_src = np.concatenate((prod0, prod1))
        self._prod_lists_fresh = False
        self._prod_valid = [True] * self.csr.num_nets
        self._dirty_nodes.clear()
        self._all_invalid = False

    def _ensure_product_lists(self) -> None:
        if not self._prod_lists_fresh:
            E = self.csr.num_nets
            self._prod0 = self._prod_src[:E].tolist()
            self._prod1 = self._prod_src[E:].tolist()
            self._prod_lists_fresh = True

    def all_gains(self) -> List[float]:
        """Vectorized :meth:`ProbabilisticGainEngine.all_gains` (bit-identical)."""
        part = self.partition
        num_nodes = part.graph.num_nodes
        p_arr = np.asarray(self.p, dtype=np.float64)
        side_arr = np.asarray(part.sides_view(), dtype=np.intp)
        prod0, prod1, contrib = self._bulk_kernel(p_arr, side_arr)
        gains = np.bincount(
            self.csr.nm_owner, weights=contrib, minlength=num_nodes
        )
        if part.num_locked:
            locked_arr = np.asarray(part.locked_view(), dtype=bool)
            gains[locked_arr] = 0.0
        self._refresh_product_cache(prod0, prod1)
        return gains.tolist()

    # ------------------------------------------------------------------
    # Cached-update strategy (Sec. 3.4, Eqns. 5/6) — incremental engine
    # ------------------------------------------------------------------
    # State layout: a flat per-(node, net) contribution list in node-major
    # order, addressed via csr.node_offset / csr.netpin_to_nodepin, instead
    # of the python backend's per-node dicts.  Bootstrap is vectorized;
    # per-move updates are scalar loops over the moved node's nets (a
    # handful of pins) that reuse cached side products when valid.

    def new_contribution_state(self) -> List[float]:
        """Vectorized bootstrap of the flat contribution cache.

        Only valid values for *free* nodes are stored (matching the scalar
        backend, which gives locked nodes empty dicts); the pass engine
        calls this before any node is locked.
        """
        part = self.partition
        p_arr = np.asarray(self.p, dtype=np.float64)
        side_arr = np.asarray(part.sides_view(), dtype=np.intp)
        prod0, prod1, contrib = self._bulk_kernel(p_arr, side_arr)
        self._refresh_product_cache(prod0, prod1)
        return contrib.tolist()

    def contribution_move_deltas(
        self, moved: int, contribs: List[float], counters=None
    ) -> List[Tuple[int, float]]:
        """Incremental Eqn. (5)/(6) refresh around a just-locked move.

        Identical arithmetic, visit order, and return order to the python
        backend's ``net_pin_contributions``-based version; the only
        difference is that a net whose cached side products are still
        valid skips the O(q) product rescan.
        """
        part = self.partition
        graph = part.graph
        p = self.p
        sides = part.sides_view()
        locked = part.locked_view()
        counts0 = part.counts_view(0)
        counts1 = part.counts_view(1)
        net_costs = graph.net_costs
        net_offset = self.csr.net_offset_list
        nodepin = self.csr.netpin_to_nodepin_list
        self._ensure_product_lists()
        self._flush_invalidations()
        valid = self._prod_valid
        prod0 = self._prod0
        prod1 = self._prod1
        deltas = {}
        for net_id in graph.node_nets(moved):
            if counters is not None:
                counters.cache_net_recomputes += 1
            pins = graph.net(net_id)
            if valid[net_id]:
                a = prod0[net_id]
                b = prod1[net_id]
                self.product_cache_hits += 1
                if counters is not None:
                    counters.product_cache_hits += 1
            else:
                a = b = 1.0
                for v in pins:
                    if sides[v] == 0:
                        a *= p[v]
                    else:
                        b *= p[v]
                prod0[net_id] = a
                prod1[net_id] = b
                valid[net_id] = True
                self.product_cache_misses += 1
                if counters is not None:
                    counters.product_cache_misses += 1
            cost = net_costs[net_id]
            c0 = counts0[net_id]
            c1 = counts1[net_id]
            base = net_offset[net_id]
            for i, v in enumerate(pins):
                if locked[v]:
                    continue
                sv = sides[v]
                pv = p[v]
                prod_mine = a if sv == 0 else b
                if pv > 0.0 and prod_mine >= DIV_SAFE_MIN:
                    prod_a = prod_mine / pv
                else:
                    if 0.0 < prod_mine < DIV_SAFE_MIN:
                        self.underflow_recomputes += 1
                    prod_a = self.net_clearing_probability(net_id, sv, exclude=v)
                if sv == 0:
                    new_c = cost * (prod_a - b) if c1 > 0 else cost * (prod_a - 1.0)
                else:
                    new_c = cost * (prod_a - a) if c0 > 0 else cost * (prod_a - 1.0)
                idx = nodepin[base + i]
                old_c = contribs[idx]
                if new_c != old_c:
                    contribs[idx] = new_c
                    deltas[v] = deltas.get(v, 0.0) + (new_c - old_c)
                    if counters is not None:
                        counters.cache_entry_deltas += 1
                else:
                    deltas.setdefault(v, 0.0)
        return list(deltas.items())

    def refresh_contributions(
        self, node: int, contribs: List[float], counters=None
    ) -> float:
        """Full per-net recompute for one node into the flat cache."""
        graph = self.partition.graph
        start = self.csr.node_offset_list[node]
        vals = [
            self.net_gain(node, net_id) for net_id in graph.node_nets(node)
        ]
        gain = sum(vals)
        for i, g in enumerate(vals):
            contribs[start + i] = g
        if counters is not None:
            counters.cache_net_recomputes += len(vals)
        return gain

    # ------------------------------------------------------------------
    # Audit hook
    # ------------------------------------------------------------------
    def product_cache_snapshot(self) -> Iterator[Tuple[int, float, float]]:
        """Yield ``(net_id, prod0, prod1)`` for every *valid* cache entry.

        :meth:`repro.audit.PassAuditor.check_prop_kernel` recomputes each
        yielded product sequentially and demands exact equality.
        """
        self._ensure_product_lists()
        self._flush_invalidations()
        prod0 = self._prod0
        prod1 = self._prod1
        for net_id, ok in enumerate(self._prod_valid):
            if ok:
                yield net_id, prod0[net_id], prod1[net_id]


# ----------------------------------------------------------------------
# Baseline (FM / LA) initial-gain kernels
# ----------------------------------------------------------------------
def fm_initial_gains(csr: CsrView, partition: Partition) -> List[float]:
    """Vectorized FM Eqn. (1) gains for every node, bit-identical to
    calling ``partition.immediate_gain(v)`` for each node in turn.

    ``bincount`` sums the per-incidence terms in node-major order — the
    same order and the same ``±cost`` values as the scalar loop; masked
    terms add an exact ``+0.0``.
    """
    own = csr.nm_owner
    net = csr.nm_net
    side_arr = np.asarray(partition.sides_view(), dtype=np.intp)
    counts0 = np.asarray(partition.counts_view(0), dtype=np.int64)
    counts1 = np.asarray(partition.counts_view(1), dtype=np.int64)
    is0 = side_arr[own] == 0
    mine = np.where(is0, counts0[net], counts1[net])
    theirs = np.where(is0, counts1[net], counts0[net])
    cost = csr.net_cost[net]
    term = np.where(
        theirs == 0,
        np.where(mine > 1, -cost, 0.0),
        np.where(mine == 1, cost, 0.0),
    )
    gains = np.bincount(own, weights=term, minlength=csr.num_nodes)
    return gains.tolist()


def la_initial_vectors(
    csr: CsrView, partition: Partition, k: int
) -> List[Tuple[float, ...]]:
    """Vectorized LA-k gain vectors for every node at *pass start*.

    Bit-identical to ``gain_vector(partition, v, k)`` per node **when no
    node is locked** (the pass-bootstrap precondition): with no locks,
    ``free_count == count`` and no net is locked in a side, which is the
    specialization vectorized here.  Each incidence contributes its
    positive prospect then its negative prospect — interleaving the two
    slot streams reproduces the scalar per-net add order exactly.
    """
    if partition.num_locked:
        raise ValueError("la_initial_vectors requires an unlocked partition")
    num_nodes = csr.num_nodes
    own = csr.nm_owner
    net = csr.nm_net
    side_arr = np.asarray(partition.sides_view(), dtype=np.intp)
    counts0 = np.asarray(partition.counts_view(0), dtype=np.int64)
    counts1 = np.asarray(partition.counts_view(1), dtype=np.int64)
    is0 = side_arr[own] == 0
    mine = np.where(is0, counts0[net], counts1[net])
    other = np.where(is0, counts1[net], counts0[net])
    cost = csr.net_cost[net]
    base = own * k

    # Positive prospect: net removable by emptying the node's own side at
    # lookahead level free_count(s) = mine (includes the node itself).
    pos_ok = (mine >= 1) & (mine <= k)
    pos_idx = base + np.where(pos_ok, mine - 1, 0)
    pos_w = np.where(pos_ok, cost, 0.0)

    # Negative prospect: an internal net gets cut immediately (level 1);
    # a cut net's other-side removal (level other+1) is foreclosed.
    internal = other == 0
    neg_ok = internal | (other <= k - 1)
    neg_idx = base + np.where(internal, 0, np.where(neg_ok, other, 0))
    neg_w = np.where(neg_ok, -cost, 0.0)

    idx = np.stack([pos_idx, neg_idx], axis=1).ravel()
    w = np.stack([pos_w, neg_w], axis=1).ravel()
    flat = np.bincount(idx, weights=w, minlength=num_nodes * k)
    return [tuple(row) for row in flat.reshape(num_nodes, k).tolist()]
