"""Gain-kernel backend selection for the partitioning hot paths.

Three backends compute the per-net side products and node gains that
dominate PROP/FM/LA runtime:

* ``"python"`` — the scalar loops in :mod:`repro.core.gains` and the
  baseline modules (always available; the reference implementation);
* ``"numpy"`` — :class:`NumpyGainEngine` over a CSR-packed hypergraph
  view (:class:`CsrView`), bit-identical to the scalar path (same moves,
  same cuts — see :mod:`repro.kernels.numpy_backend` for the contract);
* ``"subround"`` — the batched sub-round pass engines of
  :mod:`repro.kernels.subround`: vectorized gains plus net-disjoint
  batch moves, optionally fanned out over shared-memory workers
  (:mod:`repro.engine.shm`).  Deterministic for any worker count, but a
  *different algorithm* from the sequential backends — cuts are
  comparable, not identical.

Selection precedence: an explicit backend name (``PropConfig.kernel``,
``run_fm(kernel=...)``, CLI ``--kernel``) wins; ``"auto"`` defers to the
``REPRO_KERNEL`` environment variable; failing that, numpy is used when
importable and the instance is large enough
(:data:`AUTO_SCALAR_CUTOFF_PINS` — ``BENCH_kernels.json`` shows the
scalar path wins end-to-end below ~4k pins, e.g. balu full_pass 0.92x),
the scalar path otherwise.  Requesting numpy/subround when numpy is not
importable warns and falls back cleanly.

``"auto"`` and ``REPRO_KERNEL`` never select ``"subround"``: the
sequential backends are result-identical (so the choice is excluded from
experiment-cache fingerprints — see :mod:`repro.engine.units`), and an
ambient environment variable silently changing *results* would poison
that cache.  Sub-round runs must be requested explicitly, and carry a
``kernel_family`` fingerprint marker.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Tuple

#: Accepted values for ``PropConfig.kernel`` / ``--kernel`` / ``REPRO_KERNEL``
#: (the env var accepts only the result-identical subset, see above).
KERNEL_CHOICES: Tuple[str, ...] = ("auto", "python", "numpy", "subround")

#: Environment variable consulted when the configured kernel is ``"auto"``.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Below this many pins, ``"auto"`` resolves to the scalar backend even
#: when numpy is importable: the vectorized kernels' per-call constants
#: exceed their savings on tiny instances (BENCH_kernels.json: balu at
#: 2697 pins runs full_pass at 0.92x under numpy, industry2 at 48404
#: pins at 1.06x).  Explicit ``"numpy"`` requests are always honored.
AUTO_SCALAR_CUTOFF_PINS = 4096


def numpy_available() -> bool:
    """True when the numpy backend can be imported."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_kernel(
    kernel: Optional[str] = None, num_pins: Optional[int] = None
) -> str:
    """Resolve a backend request to a concrete backend name.

    ``kernel`` is ``"auto"``/``None`` (consult ``REPRO_KERNEL``, then
    availability and — when ``num_pins`` is given — the
    :data:`AUTO_SCALAR_CUTOFF_PINS` instance-size cutoff), ``"python"``,
    ``"numpy"``, or ``"subround"``.  Returns a concrete name; never
    raises on an unavailable backend (warns and falls back instead), but
    rejects unknown *explicit* names.

    ``num_pins`` only influences ``"auto"`` resolution: explicit
    requests and ``REPRO_KERNEL`` selections are honored at any size.
    """
    if kernel is None:
        kernel = "auto"
    if kernel not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {kernel!r} (choices: {', '.join(KERNEL_CHOICES)})"
        )
    auto = kernel == "auto"
    if auto:
        env = os.environ.get(KERNEL_ENV_VAR, "").strip().lower()
        if env in ("python", "numpy"):
            kernel = env
            auto = False
        elif env and env != "auto":
            # "subround" lands here deliberately: it changes results, so
            # an ambient env var must not be able to select it (cached
            # runs would silently stop matching their fingerprints).
            warnings.warn(
                f"ignoring {KERNEL_ENV_VAR}={env!r} (the environment "
                "variable accepts only auto/python/numpy)",
                RuntimeWarning,
                stacklevel=2,
            )
    if kernel in ("numpy", "subround") and not numpy_available():
        warnings.warn(
            f"{kernel} kernel requested but numpy is not importable; "
            "falling back to the python backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return "python"
    if auto:
        if not numpy_available():
            return "python"
        if num_pins is not None and num_pins < AUTO_SCALAR_CUTOFF_PINS:
            return "python"
        return "numpy"
    return kernel


def make_gain_engine(partition, kernel: str):
    """Construct the gain engine for a *resolved* backend name.

    The sub-round backend has no per-move gain engine — its pass loop
    *is* the engine (see :class:`repro.kernels.subround.SubroundPropEngine`);
    callers branch before reaching here.
    """
    if kernel == "subround":
        raise ValueError(
            "the subround kernel replaces the pass loop; "
            "construct a SubroundPropEngine/SubroundFMEngine instead"
        )
    if kernel == "numpy":
        from .numpy_backend import NumpyGainEngine

        return NumpyGainEngine(partition)
    from ..core.gains import ProbabilisticGainEngine

    return ProbabilisticGainEngine(partition)


def __getattr__(name: str):
    # Lazy re-exports so `import repro.kernels` works without numpy.
    if name in ("NumpyGainEngine", "fm_initial_gains", "la_initial_vectors"):
        from . import numpy_backend

        return getattr(numpy_backend, name)
    if name == "CsrView":
        from .csr import CsrView

        return CsrView
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AUTO_SCALAR_CUTOFF_PINS",
    "KERNEL_CHOICES",
    "KERNEL_ENV_VAR",
    "CsrView",
    "NumpyGainEngine",
    "fm_initial_gains",
    "la_initial_vectors",
    "make_gain_engine",
    "numpy_available",
    "resolve_kernel",
]
