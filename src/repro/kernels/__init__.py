"""Gain-kernel backend selection for the partitioning hot paths.

Two interchangeable backends compute the per-net side products and node
gains that dominate PROP/FM/LA runtime:

* ``"python"`` — the scalar loops in :mod:`repro.core.gains` and the
  baseline modules (always available; the reference implementation);
* ``"numpy"`` — :class:`NumpyGainEngine` over a CSR-packed hypergraph
  view (:class:`CsrView`), bit-identical to the scalar path (same moves,
  same cuts — see :mod:`repro.kernels.numpy_backend` for the contract).

Selection precedence: an explicit backend name (``PropConfig.kernel``,
``run_fm(kernel=...)``, CLI ``--kernel``) wins; ``"auto"`` defers to the
``REPRO_KERNEL`` environment variable; failing that, numpy is used when
importable and the scalar path otherwise.  Requesting numpy when it is
not importable warns and falls back cleanly — the backends are
result-identical, so a fallback changes runtime only.

The backend choice is deliberately excluded from experiment-cache
fingerprints (it cannot change results), so cached runs stay valid when
switching kernels; see :mod:`repro.engine.units`.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Tuple

#: Accepted values for ``PropConfig.kernel`` / ``--kernel`` / ``REPRO_KERNEL``.
KERNEL_CHOICES: Tuple[str, ...] = ("auto", "python", "numpy")

#: Environment variable consulted when the configured kernel is ``"auto"``.
KERNEL_ENV_VAR = "REPRO_KERNEL"


def numpy_available() -> bool:
    """True when the numpy backend can be imported."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """Resolve a backend request to a concrete backend name.

    ``kernel`` is ``"auto"``/``None`` (consult ``REPRO_KERNEL``, then
    availability), ``"python"``, or ``"numpy"``.  Always returns
    ``"python"`` or ``"numpy"``; never raises on an unavailable backend
    (warns and falls back instead), but rejects unknown *explicit* names.
    """
    if kernel is None:
        kernel = "auto"
    if kernel not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {kernel!r} (choices: {', '.join(KERNEL_CHOICES)})"
        )
    if kernel == "auto":
        env = os.environ.get(KERNEL_ENV_VAR, "").strip().lower()
        if env in ("python", "numpy"):
            kernel = env
        elif env and env != "auto":
            warnings.warn(
                f"ignoring unknown {KERNEL_ENV_VAR}={env!r} "
                f"(choices: {', '.join(KERNEL_CHOICES)})",
                RuntimeWarning,
                stacklevel=2,
            )
    if kernel == "numpy" and not numpy_available():
        warnings.warn(
            "numpy kernel requested but numpy is not importable; "
            "falling back to the python backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return "python"
    if kernel == "auto":
        return "numpy" if numpy_available() else "python"
    return kernel


def make_gain_engine(partition, kernel: str):
    """Construct the gain engine for a *resolved* backend name."""
    if kernel == "numpy":
        from .numpy_backend import NumpyGainEngine

        return NumpyGainEngine(partition)
    from ..core.gains import ProbabilisticGainEngine

    return ProbabilisticGainEngine(partition)


def __getattr__(name: str):
    # Lazy re-exports so `import repro.kernels` works without numpy.
    if name in ("NumpyGainEngine", "fm_initial_gains", "la_initial_vectors"):
        from . import numpy_backend

        return getattr(numpy_backend, name)
    if name == "CsrView":
        from .csr import CsrView

        return CsrView
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "KERNEL_CHOICES",
    "KERNEL_ENV_VAR",
    "CsrView",
    "NumpyGainEngine",
    "fm_initial_gains",
    "la_initial_vectors",
    "make_gain_engine",
    "numpy_available",
    "resolve_kernel",
]
