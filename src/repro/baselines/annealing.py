"""Simulated-annealing min-cut bisection.

The third approach class the paper's introduction lists (citation [12],
Sechen's TimberWolf book).  Not part of the paper's tables — included so
the library covers every family the paper situates PROP against, and as a
quality yardstick in the examples: SA with a generous schedule approaches
iterative-improvement quality but costs far more moves.

Standard Metropolis scheme over single-node moves:

* proposal: move a uniformly random *movable* node (one whose move keeps
  the balance constraint);
* acceptance: always if the cut does not increase, else with probability
  ``exp(-delta / T)``;
* geometric cooling ``T <- alpha * T`` every ``moves_per_temperature``
  proposals, from ``t_initial`` down to ``t_final``.
"""

from __future__ import annotations

import math
import random
import time
from typing import Optional, Sequence

from ..hypergraph import Hypergraph
from ..partition import (
    BalanceConstraint,
    BipartitionResult,
    Partition,
    random_balanced_sides,
)


class AnnealingPartitioner:
    """Metropolis simulated annealing over single-node moves."""

    def __init__(
        self,
        t_initial: float = 4.0,
        t_final: float = 0.05,
        alpha: float = 0.9,
        moves_per_temperature: Optional[int] = None,
    ) -> None:
        if t_initial <= t_final or t_final <= 0:
            raise ValueError(
                f"need t_initial > t_final > 0, got ({t_initial}, {t_final})"
            )
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if moves_per_temperature is not None and moves_per_temperature < 1:
            raise ValueError("moves_per_temperature must be >= 1")
        self.t_initial = t_initial
        self.t_final = t_final
        self.alpha = alpha
        self.moves_per_temperature = moves_per_temperature

    name = "SA"

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,
        initial_sides: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> BipartitionResult:
        """Bisect ``graph`` by simulated annealing from a (seeded) random start."""
        if balance is None:
            balance = BalanceConstraint.fifty_fifty(graph)
        if initial_sides is None:
            initial_sides = random_balanced_sides(graph, seed)
        rng = random.Random(seed)
        start = time.perf_counter()

        partition = Partition(graph, initial_sides)
        moves_per_t = self.moves_per_temperature
        if moves_per_t is None:
            moves_per_t = max(16, 4 * graph.num_nodes)

        best_sides = partition.sides
        best_cut = partition.cut_cost
        temperature = self.t_initial
        temperatures = 0
        accepted_total = 0
        while temperature > self.t_final:
            accepted = 0
            for _ in range(moves_per_t):
                node = rng.randrange(graph.num_nodes)
                weight = graph.node_weight(node)
                if not balance.move_allowed(
                    partition.side_weights, partition.side(node), weight
                ):
                    continue
                delta = -partition.immediate_gain(node)  # cut increase
                if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                    partition.move(node)
                    accepted += 1
                    if partition.cut_cost < best_cut:
                        best_cut = partition.cut_cost
                        best_sides = partition.sides
            accepted_total += accepted
            temperatures += 1
            temperature *= self.alpha

        result = BipartitionResult(
            sides=best_sides,
            cut=best_cut,
            algorithm="SA",
            seed=seed,
            passes=temperatures,
            runtime_seconds=time.perf_counter() - start,
            stats={"accepted_moves": float(accepted_total)},
        )
        result.verify(graph)
        return result
