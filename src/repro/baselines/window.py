"""WINDOW-style clustering partitioner.

The paper's Table 2 competitor "WINDOW" [Alpert & Kahng, ICCAD 1994]: a
vertex ordering is computed, clusters are carved out of contiguous windows
of the ordering, the clustered (contracted) netlist is partitioned, and the
result is projected back and polished — "clustering is followed by 20 runs
of FM" (paper Table 2 caption).

Pipeline implemented here (faithfulness notes in DESIGN.md):

1. **Attraction ordering** — starting from the max-degree node, repeatedly
   append the free node most attracted (summed shared-net weight) to the
   nodes ordered so far; this is the windowing front end of the original
   framework.
2. **Window clustering** — contiguous runs of ``cluster_size`` nodes in the
   ordering become clusters; the netlist is contracted.
3. **Coarse partitioning** — FM-tree (contracted nets carry merged costs)
   from ``coarse_runs`` random initial partitions, best kept.
4. **Projection + FM refinement** — the projected partition seeds
   ``refine_runs`` FM runs on the flat netlist (the first run unperturbed,
   the rest from lightly perturbed copies); best cut wins.
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Sequence

from ..hypergraph import Hypergraph, contract
from ..partition import (
    BalanceConstraint,
    BipartitionResult,
    cut_cost,
    random_balanced_sides,
)
from .fm import run_fm


def attraction_ordering(graph: Hypergraph, start: Optional[int] = None) -> List[int]:
    """Order nodes by accumulated attraction to the already-ordered set.

    Attraction of a free node grows by ``c(net)/(|net|−1)`` each time a
    pin-mate is appended.  Ties break toward higher degree, then lower id,
    making the ordering fully deterministic.
    """
    n = graph.num_nodes
    if n == 0:
        return []
    if start is None:
        start = max(range(n), key=lambda v: (graph.node_degree(v), -v))
    attraction = [0.0] * n
    ordered = [start]
    in_order = [False] * n
    in_order[start] = True

    def absorb(u: int) -> None:
        for net_id in graph.node_nets(u):
            pins = graph.net(net_id)
            if len(pins) < 2:
                continue
            w = graph.net_cost(net_id) / (len(pins) - 1)
            for v in pins:
                if not in_order[v]:
                    attraction[v] += w

    absorb(start)
    for _ in range(n - 1):
        best = -1
        best_key = None
        for v in range(n):
            if in_order[v]:
                continue
            key = (attraction[v], graph.node_degree(v), -v)
            if best_key is None or key > best_key:
                best_key = key
                best = v
        ordered.append(best)
        in_order[best] = True
        absorb(best)
    return ordered


def _perturb(sides: Sequence[int], fraction: float, rng: random.Random) -> List[int]:
    """Swap a random ``fraction`` of cross-side node pairs (balance kept)."""
    sides = list(sides)
    zeros = [v for v, s in enumerate(sides) if s == 0]
    ones = [v for v, s in enumerate(sides) if s == 1]
    swaps = max(1, int(len(sides) * fraction / 2))
    for _ in range(min(swaps, len(zeros), len(ones))):
        a = zeros[rng.randrange(len(zeros))]
        b = ones[rng.randrange(len(ones))]
        sides[a], sides[b] = sides[b], sides[a]
    return sides


class WindowPartitioner:
    """Ordering/clustering front end + FM refinement back end."""

    def __init__(
        self,
        cluster_size: int = 8,
        coarse_runs: int = 10,
        refine_runs: int = 20,
        perturb_fraction: float = 0.05,
    ) -> None:
        if cluster_size < 1:
            raise ValueError("cluster_size must be >= 1")
        if coarse_runs < 1 or refine_runs < 1:
            raise ValueError("run counts must be >= 1")
        self.cluster_size = cluster_size
        self.coarse_runs = coarse_runs
        self.refine_runs = refine_runs
        self.perturb_fraction = perturb_fraction

    name = "WINDOW"

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,
        initial_sides: Optional[Sequence[int]] = None,  # noqa: ARG002 - clustering chooses its own start
        seed: Optional[int] = None,
    ) -> BipartitionResult:
        """Bisect ``graph`` with the ordering/clustering + FM pipeline."""
        if balance is None:
            balance = BalanceConstraint.fifty_fifty(graph)
        rng = random.Random(seed)
        start = time.perf_counter()

        order = attraction_ordering(graph)
        cluster_of = [0] * graph.num_nodes
        for position, v in enumerate(order):
            cluster_of[v] = position // self.cluster_size
        contraction = contract(graph, cluster_of)
        coarse = contraction.coarse

        # Coarse balance: same absolute bounds, slackened by one cluster.
        max_w = max(coarse.node_weights)
        coarse_balance = BalanceConstraint(
            lo=max(0.0, balance.lo - max_w),
            hi=balance.hi + max_w,
            total=balance.total,
        )
        best_coarse: Optional[List[int]] = None
        best_coarse_cut = float("inf")
        for _ in range(self.coarse_runs):
            init = random_balanced_sides(coarse, rng.randrange(1 << 30))
            res = run_fm(coarse, init, coarse_balance, container="tree")
            if res.cut < best_coarse_cut:
                best_coarse_cut = res.cut
                best_coarse = res.sides
        assert best_coarse is not None
        projected = contraction.project_sides(best_coarse)

        # Flat FM refinement: the projected partition plus perturbed
        # variants, `refine_runs` runs in total.
        best_sides = projected
        best_cut = cut_cost(graph, projected)
        for run in range(self.refine_runs):
            if run == 0:
                init = projected
            else:
                init = _perturb(projected, self.perturb_fraction, rng)
            res = run_fm(graph, init, balance, container="bucket")
            if res.cut < best_cut:
                best_cut = res.cut
                best_sides = res.sides

        elapsed = time.perf_counter() - start
        result = BipartitionResult(
            sides=best_sides,
            cut=best_cut,
            algorithm="WINDOW",
            seed=seed,
            passes=self.refine_runs,
            runtime_seconds=elapsed,
            stats={
                "coarse_nodes": float(coarse.num_nodes),
                "coarse_cut": float(best_coarse_cut),
            },
        )
        result.verify(graph)
        return result
