"""Every baseline the DAC-96 paper compares PROP against.

Iterative-improvement family:

* :class:`FMPartitioner` — Fidducia–Mattheyses (bucket and tree variants)
* :class:`LAPartitioner` — Krishnamurthy lookahead LA-k
* :class:`KLPartitioner` — Kernighan–Lin pair swaps (historical)

Clustering / global family:

* :class:`Eig1Partitioner` — spectral Fiedler bisection (EIG1)
* :class:`MeloPartitioner` — multi-eigenvector linear ordering (MELO-style)
* :class:`WindowPartitioner` — ordering/clustering + FM (WINDOW-style)
* :class:`ParaboliPartitioner` — quadratic-placement bisection (PARABOLI-style)

Plus :class:`RandomPartitioner`, the sanity floor.
"""

from .annealing import AnnealingPartitioner
from .fm import FMPartitioner, run_fm
from .kl import KLPartitioner
from .la import LAPartitioner, gain_vector, run_la
from .paraboli import (
    ParaboliPartitioner,
    pseudo_peripheral_pair,
    quadratic_placement,
)
from .random_baseline import RandomPartitioner
from .sk import SKPartitioner
from .spectral import Eig1Partitioner, MeloPartitioner
from .window import WindowPartitioner, attraction_ordering

__all__ = [
    "FMPartitioner",
    "run_fm",
    "LAPartitioner",
    "run_la",
    "gain_vector",
    "KLPartitioner",
    "SKPartitioner",
    "Eig1Partitioner",
    "MeloPartitioner",
    "WindowPartitioner",
    "attraction_ordering",
    "ParaboliPartitioner",
    "quadratic_placement",
    "pseudo_peripheral_pair",
    "RandomPartitioner",
    "AnnealingPartitioner",
]
