"""Fidducia–Mattheyses iterative-improvement bisection.

The classic linear-time netlist partitioner [Fidducia & Mattheyses 1982],
implemented in both variants the paper times in Table 4:

* **FM-bucket** — the original O(1) gain-bucket data structure; requires
  unit net costs (integer gains in ±p_max).
* **FM-tree** — the same algorithm with an AVL-tree gain container; works
  for arbitrary net costs (the structure FM must fall back to for
  timing-driven weighting, paper Sec. 4) at Θ(n d log n) per pass.

Node gains follow Eqn. (1): ``gain(u) = Σ c(E(u)) − Σ c(I(u))`` — the
immediate cut decrease if ``u`` moved now.  After each move the standard
FM delta rules touch only pins of *critical* nets, keeping updates O(pins).
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence, Tuple, Union

from ..audit import AuditConfig, PassAuditor, resolve_audit
from ..datastructures import (
    BucketGainContainer,
    PassJournal,
    TreeGainContainer,
)
from ..hypergraph import Hypergraph
from ..kernels import resolve_kernel
from ..partition import (
    BalanceConstraint,
    BipartitionResult,
    Partition,
    random_balanced_sides,
)
from ..telemetry import PassCounters, Recorder, resolve_recorder

Container = Union[BucketGainContainer, TreeGainContainer]

#: Optional per-move observer mirroring :data:`repro.core.engine.MoveObserver`:
#: (pass_index, node, selection_gain, immediate_gain).  Used by the
#: differential harness in :mod:`repro.audit.differential`.
MoveObserver = Callable[[int, int, float, float], None]

#: Safety cap; FM empirically converges in 2–4 passes (paper Sec. 2).
DEFAULT_MAX_PASSES = 100


def _make_containers(
    graph: Hypergraph, container: str
) -> Tuple[Container, Container]:
    if container == "bucket":
        if not graph.has_unit_net_costs:
            raise ValueError(
                "FM-bucket requires unit net costs; use container='tree'"
            )
        max_gain = max(
            (graph.node_degree(v) for v in range(graph.num_nodes)), default=1
        )
        max_gain = max(max_gain, 1)
        return (
            BucketGainContainer(graph.num_nodes, max_gain),
            BucketGainContainer(graph.num_nodes, max_gain),
        )
    if container == "tree":
        return TreeGainContainer(), TreeGainContainer()
    raise ValueError(f"unknown container {container!r} (want 'bucket' or 'tree')")


def _pick_move(
    containers: Tuple[Container, Container],
    partition: Partition,
    balance: BalanceConstraint,
) -> Optional[int]:
    """Best-gain node whose move keeps balance (FM tie rule)."""
    candidates = []
    for side in (0, 1):
        if containers[side]:
            node, gain = containers[side].peek_best()
            candidates.append((gain, side, node))
    candidates.sort(reverse=True)
    weights = partition.side_weights
    for _, side, node in candidates:
        if balance.move_allowed(weights, side, partition.graph.node_weight(node)):
            return node
    return None


def _apply_delta(
    containers: Tuple[Container, Container],
    partition: Partition,
    node: int,
    delta: float,
    counters: Optional[PassCounters] = None,
) -> None:
    if delta == 0:
        return
    if counters is not None:
        counters.neighbor_updates += 1
        counters.container_updates += 1
    side = partition.side(node)
    container = containers[side]
    if isinstance(container, BucketGainContainer):
        container.adjust(node, int(delta))
    else:
        container.update(node, container.gain_of(node) + delta)


def _move_with_gain_updates(
    moved: int,
    from_side: int,
    partition: Partition,
    containers: Tuple[Container, Container],
    counters: Optional[PassCounters] = None,
) -> float:
    """Move ``moved``, lock it, and apply the FM critical-net delta rules.

    The "before" rules run against pin counts prior to the move, the
    "after" rules against counts following it; only pins of critical nets
    (nets with 0 or 1 pins on one side) are touched, which is what makes
    FM's updates O(pins of the moved node).  Returns the realized
    immediate gain of the move.
    """
    graph = partition.graph
    to_side = 1 - from_side

    for net_id in graph.node_nets(moved):
        cost = graph.net_cost(net_id)
        to_count = partition.count(net_id, to_side)
        if to_count == 0:
            # Net was entirely on from_side: every other free pin gains the
            # option of keeping the net uncut by following the move.
            for v in graph.net(net_id):
                if v != moved and not partition.is_locked(v):
                    _apply_delta(containers, partition, v, +cost, counters)
        elif to_count == 1:
            # The single to_side pin loses its "sole pin" bonus.
            for v in graph.net(net_id):
                if (
                    v != moved
                    and partition.side(v) == to_side
                    and not partition.is_locked(v)
                ):
                    _apply_delta(containers, partition, v, -cost, counters)
                    break

    realized = partition.move(moved)

    for net_id in graph.node_nets(moved):
        cost = graph.net_cost(net_id)
        from_count = partition.count(net_id, from_side)
        if from_count == 0:
            # Net now entirely on to_side: other pins would newly cut it.
            for v in graph.net(net_id):
                if v != moved and not partition.is_locked(v):
                    _apply_delta(containers, partition, v, -cost, counters)
        elif from_count == 1:
            # The single remaining from_side pin becomes the sole pin.
            for v in graph.net(net_id):
                if (
                    v != moved
                    and partition.side(v) == from_side
                    and not partition.is_locked(v)
                ):
                    _apply_delta(containers, partition, v, +cost, counters)
                    break

    partition.lock(moved)
    return realized


def _run_pass(
    partition: Partition,
    balance: BalanceConstraint,
    containers: Tuple[Container, Container],
    observer: Optional[MoveObserver] = None,
    pass_index: int = 0,
    auditor: Optional[PassAuditor] = None,
    rec: Optional[Recorder] = None,
    phase: Optional[dict] = None,
    csr=None,
) -> PassJournal:
    """One tentative-move FM pass; locks are left set.

    ``rec`` must already be resolved (enabled or ``None``); ``phase`` is
    the run-level phase-seconds accumulator, updated whether or not a
    recorder is attached.  ``csr`` (a :class:`repro.kernels.CsrView`, or
    ``None`` for the scalar path) switches the Eqn.-1 gain bootstrap to
    the vectorized kernel — bit-identical values either way.
    """
    graph = partition.graph
    if auditor is not None:
        auditor.start_pass(partition)
    counters = PassCounters() if rec is not None else None

    t0 = time.perf_counter()
    bucket = isinstance(containers[0], BucketGainContainer)
    if csr is not None:
        from ..kernels.numpy_backend import fm_initial_gains

        for v, gain in enumerate(fm_initial_gains(csr, partition)):
            containers[partition.side(v)].insert(
                v, int(gain) if bucket else gain
            )
    else:
        for v in range(graph.num_nodes):
            gain = partition.immediate_gain(v)
            if bucket:
                gain = int(gain)
            containers[partition.side(v)].insert(v, gain)
    t1 = time.perf_counter()

    journal = PassJournal()
    while True:
        node = _pick_move(containers, partition, balance)
        if node is None:
            break
        from_side = partition.side(node)
        selection_gain = containers[from_side].remove(node)
        immediate = _move_with_gain_updates(
            node, from_side, partition, containers, counters
        )
        if rec is not None:
            rec.move(
                pass_index, len(journal), node, from_side,
                selection_gain, immediate,
            )
            counters.moves += 1
        journal.record(node, from_side, immediate)
        if observer is not None:
            observer(pass_index, node, selection_gain, immediate)
        if auditor is not None and auditor.after_move(
            partition, node, immediate
        ):
            auditor.check_fm_gains(partition, containers)
    t2 = time.perf_counter()
    if phase is not None:
        phase["gain_init_seconds"] += t1 - t0
        phase["move_loop_seconds"] += t2 - t1
    if rec is not None:
        rec.span(pass_index, "gain_init", t1 - t0)
        rec.span(pass_index, "move_loop", t2 - t1)
        rec.counters(pass_index, counters.as_dict())
    return journal


def run_fm(
    graph: Hypergraph,
    initial_sides: Sequence[int],
    balance: BalanceConstraint,
    container: str = "bucket",
    max_passes: int = DEFAULT_MAX_PASSES,
    seed: Optional[int] = None,
    observer: Optional[MoveObserver] = None,
    audit: Optional[AuditConfig] = None,
    recorder: Optional[Recorder] = None,
    kernel: Optional[str] = None,
    subround_workers: int = 0,
) -> BipartitionResult:
    """Run FM from an explicit initial partition.

    ``audit`` attaches a read-only invariant auditor (see
    :mod:`repro.audit`); ``None`` defers to ``REPRO_AUDIT``.  FM's
    delta-rule updates keep every container gain exact, so the audited
    invariant is full equality with Eqn. (1) for every free node.  Time
    spent in audit hooks is excluded from ``runtime_seconds`` and
    reported as the ``audit_seconds`` stat.

    ``recorder`` attaches a :class:`repro.telemetry.Recorder` (spans,
    per-move events, counters); recording never changes moves or cuts.

    ``kernel`` selects the gain backend (see :mod:`repro.kernels`;
    ``None`` means ``"auto"``).  The python/numpy backends are
    bit-identical, so moves and cuts never depend on choosing between
    them; ``"subround"`` switches the pass loop to deterministic batched
    sub-rounds (:mod:`repro.kernels.subround`) — worker-count-invariant,
    but a different move interleaving than the sequential loop.
    ``subround_workers`` fans that kernel's sweeps over shared-memory
    workers (0/1 = inline); it never affects results.
    """
    algorithm = f"FM-{container}"
    start = time.perf_counter()
    partition = Partition(graph, initial_sides)
    kernel_name = resolve_kernel(kernel, num_pins=graph.num_pins)
    if kernel_name == "subround":
        return _run_fm_subround(
            graph, partition, balance, algorithm, container, max_passes,
            seed, observer, audit, recorder, subround_workers, start,
        )
    csr = None
    if kernel_name == "numpy":
        from ..kernels.csr import CsrView

        csr = CsrView(graph)
    audit = resolve_audit(audit)
    auditor = (
        PassAuditor(graph, balance, audit, algorithm=algorithm, seed=seed)
        if audit is not None
        else None
    )
    rec = resolve_recorder(recorder)
    phase = {
        "gain_init_seconds": 0.0,
        "move_loop_seconds": 0.0,
        "rollback_seconds": 0.0,
    }
    if rec is not None:
        rec.run_start(algorithm, seed, graph.num_nodes, graph.num_nets)
    passes = 0
    total_moves = 0
    pass_cuts = []
    while passes < max_passes:
        pass_start = time.perf_counter()
        if rec is not None:
            rec.pass_start(passes)
        containers = _make_containers(graph, container)
        journal = _run_pass(
            partition, balance, containers,
            observer=observer, pass_index=passes, auditor=auditor,
            rec=rec, phase=phase, csr=csr,
        )
        total_moves += len(journal)
        p, gmax = journal.best_prefix()
        rollback_start = time.perf_counter()
        partition.unlock_all()
        for record in reversed(journal.rolled_back_moves()):
            partition.move(record.node)
        rollback_seconds = time.perf_counter() - rollback_start
        phase["rollback_seconds"] += rollback_seconds
        pass_cuts.append(partition.cut_cost)
        if auditor is not None:
            auditor.after_rollback(partition, journal)
        if rec is not None:
            rec.span(passes, "rollback", rollback_seconds)
            rec.pass_end(
                passes, partition.cut_cost, len(journal), p, gmax,
                time.perf_counter() - pass_start,
            )
        passes += 1
        if gmax <= 1e-9 or p == 0:
            break
    elapsed = time.perf_counter() - start
    stats = {"tentative_moves": float(total_moves)}
    stats.update(phase)
    stats["kernel_numpy"] = 1.0 if csr is not None else 0.0
    if csr is not None:
        stats["csr_build_seconds"] = csr.build_seconds
    if auditor is not None:
        stats.update(auditor.summary())
        elapsed -= auditor.seconds
    result = BipartitionResult(
        sides=partition.sides,
        cut=partition.cut_cost,
        algorithm=algorithm,
        seed=seed,
        passes=passes,
        runtime_seconds=elapsed,
        stats=stats,
        pass_cuts=pass_cuts,
    )
    if rec is not None:
        rec.run_end(algorithm, result.cut, passes, elapsed, stats)
    return result


def _run_fm_subround(
    graph: Hypergraph,
    partition: Partition,
    balance: BalanceConstraint,
    algorithm: str,
    container: str,
    max_passes: int,
    seed: Optional[int],
    observer: Optional[MoveObserver],
    audit: Optional[AuditConfig],
    recorder: Optional[Recorder],
    subround_workers: int,
    start: float,
) -> BipartitionResult:
    """The ``kernel="subround"`` FM run loop.

    ``container`` is validated for API parity but unused — sub-rounds
    select moves by one vectorized sweep per round, not from a gain
    container.  ``finally`` guarantees the worker pool's shared segments
    are unlinked even when a pass raises.
    """
    if container not in ("bucket", "tree"):
        raise ValueError(
            f"unknown container {container!r} (want 'bucket' or 'tree')"
        )
    from ..kernels.subround import SubroundFMEngine

    engine = SubroundFMEngine(partition, seed, workers=subround_workers)
    audit = resolve_audit(audit)
    auditor = (
        PassAuditor(graph, balance, audit, algorithm=algorithm, seed=seed)
        if audit is not None
        else None
    )
    rec = resolve_recorder(recorder)
    phase = {
        "bootstrap_seconds": 0.0,
        "refine_seconds": 0.0,
        "gain_init_seconds": 0.0,
        "move_loop_seconds": 0.0,
        "rollback_seconds": 0.0,
    }
    if rec is not None:
        rec.run_start(algorithm, seed, graph.num_nodes, graph.num_nets)
    passes = 0
    total_moves = 0
    pass_cuts = []
    try:
        while passes < max_passes:
            pass_start = time.perf_counter()
            if rec is not None:
                rec.pass_start(passes)
            counters = PassCounters() if rec is not None else None
            journal = engine.run_pass(
                balance, passes, observer=observer, auditor=auditor,
                rec=rec, phase=phase, counters=counters,
            )
            total_moves += len(journal)
            p, gmax = journal.best_prefix()
            rollback_start = time.perf_counter()
            partition.unlock_all()
            for record in reversed(journal.rolled_back_moves()):
                partition.move(record.node)
            rollback_seconds = time.perf_counter() - rollback_start
            phase["rollback_seconds"] += rollback_seconds
            pass_cuts.append(partition.cut_cost)
            if auditor is not None:
                auditor.after_rollback(partition, journal)
            if rec is not None:
                rec.span(passes, "rollback", rollback_seconds)
                rec.pass_end(
                    passes, partition.cut_cost, len(journal), p, gmax,
                    time.perf_counter() - pass_start,
                )
            passes += 1
            if gmax <= 1e-9 or p == 0:
                break
    finally:
        engine.close()
    elapsed = time.perf_counter() - start
    stats = {"tentative_moves": float(total_moves)}
    stats.update(phase)
    stats["kernel_numpy"] = 0.0
    stats["kernel_subround"] = 1.0
    stats["csr_build_seconds"] = engine.csr.build_seconds
    stats.update(engine.run_stats())
    if auditor is not None:
        stats.update(auditor.summary())
        elapsed -= auditor.seconds
    result = BipartitionResult(
        sides=partition.sides,
        cut=partition.cut_cost,
        algorithm=algorithm,
        seed=seed,
        passes=passes,
        runtime_seconds=elapsed,
        stats=stats,
        pass_cuts=pass_cuts,
    )
    if rec is not None:
        rec.run_end(algorithm, result.cut, passes, elapsed, stats)
    return result


class FMPartitioner:
    """Fidducia–Mattheyses partitioner (bucket or tree gain container)."""

    #: FM accepts a per-call ``audit`` config (see :mod:`repro.audit`).
    supports_audit = True

    #: FM accepts a per-call ``recorder`` (see :mod:`repro.telemetry`).
    supports_telemetry = True

    def __init__(
        self,
        container: str = "bucket",
        max_passes: int = DEFAULT_MAX_PASSES,
        kernel: str = "auto",
        subround_workers: int = 0,
    ) -> None:
        if container not in ("bucket", "tree"):
            raise ValueError(f"unknown container {container!r}")
        self.container = container
        self.max_passes = max_passes
        # Underscore-prefixed: the sequential gain kernels cannot change
        # results, so they must stay out of the experiment-cache
        # fingerprint (which hashes only public attributes — see
        # repro.engine.units).  The subround kernel *does* change move
        # interleaving, so selecting it sets a public family marker that
        # keys its runs separately.
        self._kernel = kernel
        self._subround_workers = subround_workers
        if kernel == "subround":
            self.kernel_family = "subround"

    @property
    def kernel(self) -> str:
        """Configured gain-kernel backend (see :mod:`repro.kernels`)."""
        return self._kernel

    @property
    def name(self) -> str:
        return f"FM-{self.container}"

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,
        initial_sides: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
        audit: Optional[AuditConfig] = None,
        recorder: Optional[Recorder] = None,
    ) -> BipartitionResult:
        """Bisect ``graph`` with FM (50-50 balance and seeded random start by default)."""
        if balance is None:
            balance = BalanceConstraint.fifty_fifty(graph)
        if initial_sides is None:
            initial_sides = random_balanced_sides(graph, seed)
        result = run_fm(
            graph,
            initial_sides,
            balance,
            container=self.container,
            max_passes=self.max_passes,
            seed=seed,
            audit=audit,
            recorder=recorder,
            kernel=self._kernel,
            subround_workers=self._subround_workers,
        )
        result.verify(graph)
        return result
