"""Schweikert–Kernighan netlist pair-swap bisection.

[Schweikert & Kernighan 1972] — the paper's reference [3] and the step
between KL and FM: KL's pair-swap pass structure, but with gains computed
on the *net* (hypergraph) model rather than a clique expansion, so a
many-pin net stops being over-counted.  FM later replaced pair swaps with
single moves for speed; SK is included to complete the lineage the
paper's Sec. 2 walks through.

Gains use :class:`~repro.partition.Partition`'s Eqn.-(1) machinery:

    swap_gain(a, b) = gain(a) + gain(b) − correction(a, b)

where the correction accounts for nets shared by ``a`` and ``b`` (moving
both simultaneously differs from two independent moves).  It is computed
exactly by trial-moving on the partition state.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from ..hypergraph import Hypergraph
from ..partition import (
    BalanceConstraint,
    BipartitionResult,
    Partition,
    random_balanced_sides,
)

DEFAULT_MAX_PASSES = 20


class SKPartitioner:
    """Schweikert–Kernighan pair swaps with hypergraph gains."""

    def __init__(
        self,
        candidate_limit: int = 16,
        max_passes: int = DEFAULT_MAX_PASSES,
    ) -> None:
        if candidate_limit < 1:
            raise ValueError("candidate_limit must be >= 1")
        if max_passes < 1:
            raise ValueError("max_passes must be >= 1")
        self.candidate_limit = candidate_limit
        self.max_passes = max_passes

    name = "SK"

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,  # noqa: ARG002 - swaps preserve balance
        initial_sides: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> BipartitionResult:
        """Bisect ``graph``; swaps preserve the initial side sizes."""
        start = time.perf_counter()
        if initial_sides is None:
            initial_sides = random_balanced_sides(graph, seed)
        partition = Partition(graph, list(initial_sides))

        passes = 0
        pass_cuts: List[float] = []
        while passes < self.max_passes:
            improvement = self._run_pass(partition)
            passes += 1
            pass_cuts.append(partition.cut_cost)
            if improvement <= 1e-9:
                break

        result = BipartitionResult(
            sides=partition.sides,
            cut=partition.cut_cost,
            algorithm="SK",
            seed=seed,
            passes=passes,
            runtime_seconds=time.perf_counter() - start,
            pass_cuts=pass_cuts,
        )
        result.verify(graph)
        return result

    # ------------------------------------------------------------------
    # One pass
    # ------------------------------------------------------------------
    def _run_pass(self, partition: Partition) -> float:
        """Tentatively swap pairs to exhaustion, keep the best prefix."""
        swaps: List[Tuple[int, int]] = []
        gains: List[float] = []
        while True:
            best = self._best_swap(partition)
            if best is None:
                break
            gain, a, b = best
            realized = partition.move(a) + partition.move(b)
            partition.lock(a)
            partition.lock(b)
            swaps.append((a, b))
            gains.append(realized)

        # Best prefix, then roll back the rest (unlock first).
        best_k, best_sum, running = 0, 0.0, 0.0
        for k, g in enumerate(gains, start=1):
            running += g
            if running > best_sum + 1e-12:
                best_sum, best_k = running, k
        partition.unlock_all()
        for a, b in reversed(swaps[best_k:]):
            partition.move(a)
            partition.move(b)
        return best_sum

    def _best_swap(
        self, partition: Partition
    ) -> Optional[Tuple[float, int, int]]:
        """Highest exact swap gain among top single-move candidates.

        Candidates: the ``candidate_limit`` best single-move gains per
        side; the exact pairwise gain (including shared-net corrections)
        is evaluated by trial moves on the partition state.
        """
        graph = partition.graph
        top: Tuple[List[Tuple[float, int]], List[Tuple[float, int]]] = ([], [])
        for v in range(graph.num_nodes):
            if not partition.is_locked(v):
                top[partition.side(v)].append((partition.immediate_gain(v), v))
        if not top[0] or not top[1]:
            return None
        for bucket in top:
            bucket.sort(reverse=True)

        limit = self.candidate_limit
        best: Optional[Tuple[float, int, int]] = None
        for _, a in top[0][:limit]:
            gain_a = partition.move(a)  # trial
            for _, b in top[1][:limit]:
                total = gain_a + partition.immediate_gain(b)
                if best is None or total > best[0]:
                    best = (total, a, b)
            partition.move(a)  # undo trial
        return best
