"""Kernighan–Lin pair-swap graph bisection.

The 1970 ancestor of the whole iterative-improvement family (paper Sec. 1,
[9]).  KL operates on ordinary weighted graphs, so the hypergraph is first
clique-expanded (each net of size q becomes a clique with edge weight
``c/(q-1)``).  Each pass greedily selects node *pairs* (a ∈ V1, b ∈ V2)
maximizing ``D(a) + D(b) − 2·w(a,b)``, tentatively swaps them, and finally
keeps the best prefix of swaps.

Cost: Θ(n²)–Θ(n³) depending on the candidate strategy; this implementation
scans only the ``candidate_limit`` highest-D nodes per side (the standard
practical shortcut), giving Θ(n · candidate_limit²) per pass.  KL exists
here as the historical baseline for the examples and tests; the paper's
tables compare against FM/LA/PROP and the clustering methods.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..hypergraph import Hypergraph, clique_edges
from ..partition import (
    BalanceConstraint,
    BipartitionResult,
    cut_cost,
    random_balanced_sides,
)

DEFAULT_MAX_PASSES = 20


class KLPartitioner:
    """Kernighan–Lin bisection on the clique-expanded graph."""

    def __init__(
        self,
        candidate_limit: int = 24,
        max_passes: int = DEFAULT_MAX_PASSES,
    ) -> None:
        if candidate_limit < 1:
            raise ValueError("candidate_limit must be >= 1")
        self.candidate_limit = candidate_limit
        self.max_passes = max_passes

    name = "KL"

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,  # noqa: ARG002 - KL swaps preserve balance
        initial_sides: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> BipartitionResult:
        """Bisect ``graph``; pair swaps keep side sizes exactly constant.

        The ``balance`` argument is accepted for interface compatibility;
        swaps preserve whatever balance the initial partition has.
        """
        start = time.perf_counter()
        if initial_sides is None:
            initial_sides = random_balanced_sides(graph, seed)
        sides = list(initial_sides)

        adjacency = self._adjacency(graph)
        passes = 0
        while passes < self.max_passes:
            improvement = self._run_pass(adjacency, graph.num_nodes, sides)
            passes += 1
            if improvement <= 1e-9:
                break

        elapsed = time.perf_counter() - start
        result = BipartitionResult(
            sides=sides,
            cut=cut_cost(graph, sides),
            algorithm="KL",
            seed=seed,
            passes=passes,
            runtime_seconds=elapsed,
        )
        result.verify(graph)
        return result

    @staticmethod
    def _adjacency(graph: Hypergraph) -> List[Dict[int, float]]:
        adj: List[Dict[int, float]] = [dict() for _ in range(graph.num_nodes)]
        for (u, v), w in clique_edges(graph).items():
            adj[u][v] = adj[u].get(v, 0.0) + w
            adj[v][u] = adj[v].get(u, 0.0) + w
        return adj

    def _run_pass(
        self,
        adj: List[Dict[int, float]],
        n: int,
        sides: List[int],
    ) -> float:
        """One KL pass; mutates ``sides``; returns the kept improvement."""
        # External-minus-internal D values.
        d_values = [0.0] * n
        for u in range(n):
            su = sides[u]
            for v, w in adj[u].items():
                d_values[u] += w if sides[v] != su else -w

        locked = [False] * n
        swaps: List[Tuple[int, int]] = []
        gains: List[float] = []

        pairs = min(sum(1 for s in sides if s == 0), sum(1 for s in sides if s == 1))
        for _ in range(pairs):
            best = self._best_swap(adj, sides, d_values, locked)
            if best is None:
                break
            gain, a, b = best
            swaps.append((a, b))
            gains.append(gain)
            locked[a] = locked[b] = True
            # Update D values of free nodes: for x on a's side,
            # D(x) += 2w(x,a) − 2w(x,b); mirrored on b's side.  Evaluated
            # against the sides as they were before the swap.
            for x in (a, b):
                sx = sides[x]
                for v, w in adj[x].items():
                    if locked[v]:
                        continue
                    if sides[v] == sx:
                        d_values[v] += 2 * w
                    else:
                        d_values[v] -= 2 * w
            sides[a], sides[b] = sides[b], sides[a]

        # Best prefix of swaps.
        best_k, best_sum, running = 0, 0.0, 0.0
        for k, g in enumerate(gains, start=1):
            running += g
            if running > best_sum + 1e-12:
                best_sum, best_k = running, k
        # Undo swaps beyond the best prefix.
        for a, b in reversed(swaps[best_k:]):
            sides[a], sides[b] = sides[b], sides[a]
        return best_sum

    def _best_swap(
        self,
        adj: List[Dict[int, float]],
        sides: List[int],
        d_values: List[float],
        locked: List[bool],
    ) -> Optional[Tuple[float, int, int]]:
        """Highest-gain (a, b) swap among the top-D candidates per side."""
        top: Tuple[List[Tuple[float, int]], List[Tuple[float, int]]] = ([], [])
        for v, d in enumerate(d_values):
            if not locked[v]:
                top[sides[v]].append((d, v))
        if not top[0] or not top[1]:
            return None
        for bucket in top:
            bucket.sort(reverse=True)
        limit = self.candidate_limit
        best: Optional[Tuple[float, int, int]] = None
        for da, a in top[0][:limit]:
            for db, b in top[1][:limit]:
                gain = da + db - 2.0 * adj[a].get(b, 0.0)
                if best is None or gain > best[0]:
                    best = (gain, a, b)
        return best
