"""PARABOLI-style analytical-placement bisection.

The paper's Table 3 competitor "PARABOLI" [Riess, Doll & Johannes,
DAC 1994] partitions very large circuits by *analytical placement*: a
quadratic (wire-length) placement is solved globally, nodes are ordered by
their placed coordinate and the ordering is split.

Faithfulness note (see DESIGN.md, substitutions): the original iterates
placement with progressive repulsion around the cut; we implement the
defining mechanism — a global quadratic solve with two anchored seed sets
(Dirichlet boundary values 0 and 1), node ordering by the resulting
potential, best balanced split — optionally iterated a few times with the
extreme nodes of the previous solution re-anchored.  This preserves the
profile the DAC-96 comparison exercises: a global, move-free method whose
cost is dominated by sparse linear solves and which is strong on circuits
with long-range structure but much slower than FM-family heuristics.
"""

from __future__ import annotations

import time
from collections import deque
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..hypergraph import Hypergraph
from ..partition import (
    BalanceConstraint,
    BipartitionResult,
    best_split_of_ordering,
)
from .spectral.laplacian import laplacian_matrix


def _bfs_farthest(graph: Hypergraph, start: int) -> int:
    """Farthest node from ``start`` by hypergraph BFS (ties → lowest id)."""
    dist = [-1] * graph.num_nodes
    dist[start] = 0
    queue = deque([start])
    farthest = start
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                if dist[v] > dist[farthest] or (
                    dist[v] == dist[farthest] and v < farthest
                ):
                    farthest = v
                queue.append(v)
    return farthest


def pseudo_peripheral_pair(graph: Hypergraph) -> Tuple[int, int]:
    """Two far-apart nodes found by double BFS (the classic heuristic).

    These act as the placement anchors — stand-ins for PARABOLI's pad/seed
    modules.  Starting point: the maximum-degree node.
    """
    if graph.num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    start = max(range(graph.num_nodes), key=graph.node_degree)
    a = _bfs_farthest(graph, start)
    b = _bfs_farthest(graph, a)
    if a == b:
        b = (a + 1) % graph.num_nodes
    return a, b


def quadratic_placement(
    graph: Hypergraph,
    anchors_zero: Sequence[int],
    anchors_one: Sequence[int],
) -> np.ndarray:
    """1-D quadratic placement with Dirichlet anchors.

    Solves ``L_ii · x_i = −L_ib · x_b`` where the anchor nodes are fixed at
    coordinates 0 and 1 — the harmonic extension minimizing quadratic
    wirelength ``Σ w(u,v)(x_u − x_v)²`` over the clique expansion.
    """
    n = graph.num_nodes
    fixed = {}
    for v in anchors_zero:
        fixed[v] = 0.0
    for v in anchors_one:
        if v in fixed:
            raise ValueError(f"node {v} anchored to both sides")
        fixed[v] = 1.0
    if not fixed or len(fixed) >= n:
        raise ValueError("need anchors on both sides and free interior nodes")

    laplacian = laplacian_matrix(graph).tocsc()
    free = np.array([v for v in range(n) if v not in fixed], dtype=int)
    fixed_idx = np.array(sorted(fixed), dtype=int)
    fixed_val = np.array([fixed[v] for v in fixed_idx])

    l_ii = laplacian[free][:, free]
    l_ib = laplacian[free][:, fixed_idx]
    # Tiny Tikhonov term keeps components with no anchor path solvable.
    reg = sp.identity(len(free), format="csc") * 1e-9
    rhs = -l_ib @ fixed_val
    interior = spla.spsolve(l_ii + reg, rhs)

    x = np.zeros(n)
    x[fixed_idx] = fixed_val
    x[free] = np.atleast_1d(interior)
    return x


class ParaboliPartitioner:
    """Quadratic-placement bisection (PARABOLI-style)."""

    def __init__(self, iterations: int = 3, anchor_fraction: float = 0.02) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not 0.0 < anchor_fraction < 0.5:
            raise ValueError("anchor_fraction must be in (0, 0.5)")
        self.iterations = iterations
        self.anchor_fraction = anchor_fraction

    name = "PARABOLI"
    #: Seed-independent: the multirun harness clamps extra runs to one.
    deterministic = True

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,
        initial_sides: Optional[Sequence[int]] = None,  # noqa: ARG002 - deterministic method
        seed: Optional[int] = None,
    ) -> BipartitionResult:
        """Bisect ``graph`` by iterated quadratic placement.

        Deterministic; ``initial_sides``/``seed`` exist for interface
        compatibility.
        """
        if balance is None:
            balance = BalanceConstraint.forty_five_fifty_five(graph)
        start = time.perf_counter()

        a, b = pseudo_peripheral_pair(graph)
        anchors_zero: List[int] = [a]
        anchors_one: List[int] = [b]
        best_sides: Optional[List[int]] = None
        best_cut = float("inf")

        k = max(1, int(graph.num_nodes * self.anchor_fraction))
        for _ in range(self.iterations):
            x = quadratic_placement(graph, anchors_zero, anchors_one)
            order = [int(v) for v in np.argsort(x, kind="stable")]
            sides, cut = best_split_of_ordering(graph, order, balance)
            if cut < best_cut:
                best_cut = cut
                best_sides = sides
            # Re-anchor: the k extreme nodes of each end of the placement
            # (progressive stiffening around the emerging split).
            anchors_zero = order[:k]
            anchors_one = order[-k:]

        elapsed = time.perf_counter() - start
        assert best_sides is not None
        result = BipartitionResult(
            sides=best_sides,
            cut=best_cut,
            algorithm="PARABOLI",
            seed=seed,
            passes=self.iterations,
            runtime_seconds=elapsed,
        )
        result.verify(graph)
        return result
