"""Krishnamurthy's lookahead (LA-k) partitioner.

[Krishnamurthy 1984], as described in Sec. 2 of the DAC-96 paper: each node
carries a *gain vector* of ``k`` elements; for ``u ∈ V1`` the ith element is

    (# nets of u with i−1 other free V1 pins, removable by emptying V1)
  − (# nets of u whose V2 side has i−1 free pins, removable by emptying V2)

compared lexicographically (element 1 is exactly the FM gain, deeper
elements are lookahead levels).  Nets locked in a side can no longer be
removed through that side and stop contributing at the corresponding sign,
following Krishnamurthy's binding-number rules.

With ``k = 1`` the method degenerates to FM (a property the tests check).

Implementation note: the original achieves O(1) vector updates at the price
of the Θ(p_max^k) memory the DAC-96 paper criticizes; we instead recompute
the vectors of the moved node's neighbors after each move (O(d·p·q) per
move), trading that memory away — the partitioning *decisions*, and hence
cutsets, are unchanged.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence, Tuple

from ..audit import AuditConfig, PassAuditor, resolve_audit
from ..datastructures import PassJournal, TreeGainContainer
from ..hypergraph import Hypergraph
from ..kernels import resolve_kernel
from ..partition import (
    BalanceConstraint,
    BipartitionResult,
    Partition,
    random_balanced_sides,
)
from ..telemetry import PassCounters, Recorder, resolve_recorder

DEFAULT_MAX_PASSES = 100

GainVector = Tuple[float, ...]

#: Optional per-move observer (pass_index, node, selection_vector,
#: immediate_gain) — the LA analogue of :data:`repro.core.engine.MoveObserver`
#: (the selection key is the gain vector rather than a scalar).
MoveObserver = Callable[[int, int, GainVector, float], None]


def gain_vector(partition: Partition, node: int, k: int) -> GainVector:
    """The LA-k gain vector of a free node (see module docstring)."""
    graph = partition.graph
    s = partition.side(node)
    o = 1 - s
    vec = [0.0] * k
    for net_id in graph.node_nets(node):
        cost = graph.net_cost(net_id)
        other_count = partition.count(net_id, o)

        # Positive prospect: the net leaves (or stays out of) the cut once
        # the remaining free same-side pins are moved across.
        if not partition.net_locked_in(net_id, s):
            level = partition.free_count(net_id, s)  # others + self
            if 1 <= level <= k:
                vec[level - 1] += cost

        if other_count == 0:
            # Internal net: moving `node` cuts it immediately.
            vec[0] -= cost
        elif not partition.net_locked_in(net_id, o):
            # Moving `node` forecloses removing the net by emptying the
            # other side (the LA analogue of PROP's −p(n^{2→1}) term).
            level = partition.free_count(net_id, o) + 1
            if level - 1 >= 1 and level <= k:
                vec[level - 1] -= cost
    return tuple(vec)


def _pick_move(
    containers: Tuple[TreeGainContainer, TreeGainContainer],
    partition: Partition,
    balance: BalanceConstraint,
) -> Optional[int]:
    candidates = []
    for side in (0, 1):
        if containers[side]:
            node, vec = containers[side].peek_best()
            candidates.append((vec, side, node))
    candidates.sort(reverse=True)
    weights = partition.side_weights
    for _, side, node in candidates:
        if balance.move_allowed(weights, side, partition.graph.node_weight(node)):
            return node
    return None


def _run_pass(
    partition: Partition,
    balance: BalanceConstraint,
    k: int,
    observer: Optional[MoveObserver] = None,
    pass_index: int = 0,
    auditor: Optional[PassAuditor] = None,
    rec: Optional[Recorder] = None,
    phase: Optional[dict] = None,
    csr=None,
) -> PassJournal:
    """One tentative-move LA-k pass; locks are left set.

    ``rec`` must already be resolved (enabled or ``None``); ``phase`` is
    the run-level phase-seconds accumulator, updated whether or not a
    recorder is attached.  ``csr`` (a :class:`repro.kernels.CsrView`, or
    ``None`` for the scalar path) switches the vector bootstrap to the
    vectorized kernel — bit-identical values either way (passes always
    start unlocked, the kernel's precondition).
    """
    graph = partition.graph
    if auditor is not None:
        auditor.start_pass(partition)
    counters = PassCounters() if rec is not None else None

    t0 = time.perf_counter()
    containers = (TreeGainContainer(), TreeGainContainer())
    if csr is not None:
        from ..kernels.numpy_backend import la_initial_vectors

        for v, vec in enumerate(la_initial_vectors(csr, partition, k)):
            containers[partition.side(v)].insert(v, vec)
    else:
        for v in range(graph.num_nodes):
            containers[partition.side(v)].insert(
                v, gain_vector(partition, v, k)
            )
    t1 = time.perf_counter()

    journal = PassJournal()
    while True:
        node = _pick_move(containers, partition, balance)
        if node is None:
            break
        from_side = partition.side(node)
        selection_vector = containers[from_side].remove(node)
        immediate = partition.move_and_lock(node)
        if rec is not None:
            rec.move(
                pass_index, len(journal), node, from_side,
                selection_vector, immediate,
            )
            counters.moves += 1
        journal.record(node, from_side, immediate)
        if observer is not None:
            observer(pass_index, node, selection_vector, immediate)

        # Refresh the vectors of all free neighbors.
        seen = {node}
        for net_id in graph.node_nets(node):
            for nbr in graph.net(net_id):
                if nbr in seen or partition.is_locked(nbr):
                    seen.add(nbr)
                    continue
                seen.add(nbr)
                containers[partition.side(nbr)].update(
                    nbr, gain_vector(partition, nbr, k)
                )
                if counters is not None:
                    counters.neighbor_updates += 1
                    counters.container_updates += 1
        if auditor is not None and auditor.after_move(
            partition, node, immediate
        ):
            auditor.check_la_vectors(partition, containers, k)
    t2 = time.perf_counter()
    if phase is not None:
        phase["gain_init_seconds"] += t1 - t0
        phase["move_loop_seconds"] += t2 - t1
    if rec is not None:
        rec.span(pass_index, "gain_init", t1 - t0)
        rec.span(pass_index, "move_loop", t2 - t1)
        rec.counters(pass_index, counters.as_dict())
    return journal


def run_la(
    graph: Hypergraph,
    initial_sides: Sequence[int],
    balance: BalanceConstraint,
    k: int = 2,
    max_passes: int = DEFAULT_MAX_PASSES,
    seed: Optional[int] = None,
    observer: Optional[MoveObserver] = None,
    audit: Optional[AuditConfig] = None,
    recorder: Optional[Recorder] = None,
    kernel: Optional[str] = None,
) -> BipartitionResult:
    """Run LA-k from an explicit initial partition.

    ``audit`` attaches a read-only invariant auditor (see
    :mod:`repro.audit`); ``None`` defers to ``REPRO_AUDIT``.  Only nodes
    sharing a net with the moved node can see their vectors change, and
    LA refreshes exactly those — so the audited invariant is full
    equality of every stored vector with the Krishnamurthy definition.
    Time spent in audit hooks is excluded from ``runtime_seconds`` and
    reported as the ``audit_seconds`` stat.

    ``recorder`` attaches a :class:`repro.telemetry.Recorder` (spans,
    per-move events with the gain *vector* as the selection key, and
    counters); recording never changes moves or cuts.

    ``kernel`` selects the vector-bootstrap backend (see
    :mod:`repro.kernels`; ``None`` means ``"auto"``).  The backends are
    bit-identical, so moves and cuts never depend on this.  LA has no
    sub-round pass engine (the lookahead vectors have no batched
    formulation yet); requesting ``"subround"`` warns and runs the
    sequential numpy path.
    """
    if k < 1:
        raise ValueError(f"lookahead k must be >= 1, got {k}")
    algorithm = f"LA-{k}"
    start = time.perf_counter()
    partition = Partition(graph, initial_sides)
    kernel_name = resolve_kernel(kernel, num_pins=graph.num_pins)
    if kernel_name == "subround":
        import warnings

        warnings.warn(
            "LA has no subround pass engine; using the sequential "
            "numpy backend",
            RuntimeWarning,
            stacklevel=2,
        )
        kernel_name = resolve_kernel("numpy")
    csr = None
    if kernel_name == "numpy":
        from ..kernels.csr import CsrView

        csr = CsrView(graph)
    audit = resolve_audit(audit)
    auditor = (
        PassAuditor(graph, balance, audit, algorithm=algorithm, seed=seed)
        if audit is not None
        else None
    )
    rec = resolve_recorder(recorder)
    phase = {
        "gain_init_seconds": 0.0,
        "move_loop_seconds": 0.0,
        "rollback_seconds": 0.0,
    }
    if rec is not None:
        rec.run_start(algorithm, seed, graph.num_nodes, graph.num_nets)
    passes = 0
    total_moves = 0
    pass_cuts = []
    while passes < max_passes:
        pass_start = time.perf_counter()
        if rec is not None:
            rec.pass_start(passes)
        journal = _run_pass(
            partition, balance, k,
            observer=observer, pass_index=passes, auditor=auditor,
            rec=rec, phase=phase, csr=csr,
        )
        total_moves += len(journal)
        p, gmax = journal.best_prefix()
        rollback_start = time.perf_counter()
        partition.unlock_all()
        for record in reversed(journal.rolled_back_moves()):
            partition.move(record.node)
        rollback_seconds = time.perf_counter() - rollback_start
        phase["rollback_seconds"] += rollback_seconds
        pass_cuts.append(partition.cut_cost)
        if auditor is not None:
            auditor.after_rollback(partition, journal)
        if rec is not None:
            rec.span(passes, "rollback", rollback_seconds)
            rec.pass_end(
                passes, partition.cut_cost, len(journal), p, gmax,
                time.perf_counter() - pass_start,
            )
        passes += 1
        if gmax <= 1e-9 or p == 0:
            break
    elapsed = time.perf_counter() - start
    stats = {"tentative_moves": float(total_moves)}
    stats.update(phase)
    stats["kernel_numpy"] = 1.0 if csr is not None else 0.0
    if csr is not None:
        stats["csr_build_seconds"] = csr.build_seconds
    if auditor is not None:
        stats.update(auditor.summary())
        elapsed -= auditor.seconds
    result = BipartitionResult(
        sides=partition.sides,
        cut=partition.cut_cost,
        algorithm=algorithm,
        seed=seed,
        passes=passes,
        runtime_seconds=elapsed,
        stats=stats,
        pass_cuts=pass_cuts,
    )
    if rec is not None:
        rec.run_end(algorithm, result.cut, passes, elapsed, stats)
    return result


class LAPartitioner:
    """Lookahead partitioner LA-k (k = 2 and 3 in the paper's tables)."""

    #: LA accepts a per-call ``audit`` config (see :mod:`repro.audit`).
    supports_audit = True

    #: LA accepts a per-call ``recorder`` (see :mod:`repro.telemetry`).
    supports_telemetry = True

    def __init__(
        self,
        k: int = 2,
        max_passes: int = DEFAULT_MAX_PASSES,
        kernel: str = "auto",
    ) -> None:
        if k < 1:
            raise ValueError(f"lookahead k must be >= 1, got {k}")
        self.k = k
        self.max_passes = max_passes
        # Underscore-prefixed: the gain kernel cannot change results, so
        # it must stay out of the experiment-cache fingerprint (which
        # hashes only public attributes — see repro.engine.units).
        self._kernel = kernel

    @property
    def kernel(self) -> str:
        """Configured gain-kernel backend (see :mod:`repro.kernels`)."""
        return self._kernel

    @property
    def name(self) -> str:
        return f"LA-{self.k}"

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,
        initial_sides: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
        audit: Optional[AuditConfig] = None,
        recorder: Optional[Recorder] = None,
    ) -> BipartitionResult:
        """Bisect ``graph`` with LA-k (50-50 balance and seeded random start by default)."""
        if balance is None:
            balance = BalanceConstraint.fifty_fifty(graph)
        if initial_sides is None:
            initial_sides = random_balanced_sides(graph, seed)
        result = run_la(
            graph,
            initial_sides,
            balance,
            k=self.k,
            max_passes=self.max_passes,
            seed=seed,
            audit=audit,
            recorder=recorder,
            kernel=self._kernel,
        )
        result.verify(graph)
        return result
