"""Graph Laplacian construction and small-eigenpair solves.

Shared substrate of the spectral baselines (EIG1, MELO) and the
PARABOLI-style analytical placer.  Hypergraphs are clique-expanded with the
standard ``c/(q−1)`` weighting [Hagen & Kahng 1991], then assembled into a
sparse Laplacian ``L = D − A``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ...hypergraph import Hypergraph, clique_edges

#: Below this size, dense LAPACK eigensolves are both faster and far more
#: robust than Lanczos iteration.
DENSE_THRESHOLD = 600


def laplacian_matrix(
    graph: Hypergraph, weight_model: str = "standard"
) -> sp.csr_matrix:
    """Sparse clique-model Laplacian of the netlist."""
    n = graph.num_nodes
    edges = clique_edges(graph, weight_model=weight_model)
    if not edges:
        return sp.csr_matrix((n, n))
    rows = []
    cols = []
    vals = []
    degree = np.zeros(n)
    for (u, v), w in edges.items():
        rows.extend((u, v))
        cols.extend((v, u))
        vals.extend((-w, -w))
        degree[u] += w
        degree[v] += w
    rows.extend(range(n))
    cols.extend(range(n))
    vals.extend(degree)
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


def smallest_eigenvectors(
    laplacian: sp.spmatrix, count: int
) -> Tuple[np.ndarray, np.ndarray]:
    """``count`` smallest eigenpairs of a (singular, PSD) Laplacian.

    Returns ``(eigenvalues, eigenvectors)`` with eigenvalues ascending and
    eigenvectors as columns.  Uses dense LAPACK below
    :data:`DENSE_THRESHOLD` nodes and shifted Lanczos (``eigsh``) above,
    falling back to dense if Lanczos fails to converge — Laplacians of
    near-disconnected circuits are numerically nasty and robustness beats
    speed in a reproduction harness.
    """
    n = laplacian.shape[0]
    if count < 1:
        raise ValueError("count must be >= 1")
    if count >= n:
        raise ValueError(f"need count < n, got count={count} n={n}")
    if n <= DENSE_THRESHOLD:
        dense = laplacian.toarray()
        vals, vecs = np.linalg.eigh(dense)
        return vals[:count], vecs[:, :count]
    try:
        # Shift slightly to keep the singular matrix factorizable in
        # shift-invert mode; 'SA' on the unshifted operator is slower but
        # avoids factorization entirely.
        vals, vecs = spla.eigsh(
            laplacian.asfptype(), k=count, which="SA", tol=1e-7, maxiter=5000
        )
    except (spla.ArpackNoConvergence, RuntimeError):
        dense = laplacian.toarray()
        vals, vecs = np.linalg.eigh(dense)
        return vals[:count], vecs[:, :count]
    order = np.argsort(vals)
    return vals[order], vecs[:, order]


def fiedler_vector(graph: Hypergraph) -> np.ndarray:
    """Second-smallest eigenvector of the clique-model Laplacian.

    This is EIG1's ordering vector.  For disconnected netlists the
    eigenvalue 0 has multiplicity > 1 and *some* zero-eigenvalue vector is
    returned beyond the constant one — still a usable ordering (it
    separates components), matching spectral-partitioning practice.
    """
    laplacian = laplacian_matrix(graph)
    _, vecs = smallest_eigenvectors(laplacian, 2)
    return np.asarray(vecs[:, 1]).ravel()
