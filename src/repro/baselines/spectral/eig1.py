"""EIG1 — spectral bisection [Hagen & Kahng, ICCAD 1991].

The paper's Table 3 competitor "EIG1": compute the Fiedler vector (second
eigenvector of the clique-model Laplacian), sort nodes by their component,
and take the best balanced split point along that ordering.  Hagen & Kahng
target the ratio-cut objective; used as a min-cut partitioner under an
(r1, r2) constraint, the split scan below picks the feasible minimum-cut
prefix — the protocol the MELO paper (and hence the DAC-96 paper's
Table 3) used for its EIG1 numbers.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ...hypergraph import Hypergraph
from ...partition import (
    BalanceConstraint,
    BipartitionResult,
    best_split_of_ordering,
)
from .laplacian import fiedler_vector


class Eig1Partitioner:
    """Fiedler-vector ordering + best balanced split.

    ``objective="cut"`` (default) minimizes the cutset among feasible
    splits, matching the Table-3 comparison protocol;
    ``objective="ratio"`` minimizes the Wei–Cheng ratio cut, the objective
    Hagen & Kahng designed EIG1 for.
    """

    name = "EIG1"
    #: Seed-independent: the multirun harness clamps extra runs to one.
    deterministic = True

    def __init__(self, objective: str = "cut") -> None:
        if objective not in ("cut", "ratio"):
            raise ValueError(f"unknown objective {objective!r}")
        self.objective = objective

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,
        initial_sides: Optional[Sequence[int]] = None,  # noqa: ARG002 - deterministic method
        seed: Optional[int] = None,
    ) -> BipartitionResult:
        """Bisect ``graph`` spectrally.

        EIG1 is deterministic: ``initial_sides`` and ``seed`` are accepted
        only for interface compatibility with the iterative partitioners.
        """
        if balance is None:
            balance = BalanceConstraint.forty_five_fifty_five(graph)
        start = time.perf_counter()
        vector = fiedler_vector(graph)
        # Stable sort keyed by (component value, node id) for determinism.
        order = list(np.argsort(vector, kind="stable"))
        order = [int(v) for v in order]
        sides, cut = best_split_of_ordering(
            graph, order, balance, objective=self.objective
        )
        elapsed = time.perf_counter() - start
        result = BipartitionResult(
            sides=sides,
            cut=cut,
            algorithm="EIG1",
            seed=seed,
            passes=1,
            runtime_seconds=elapsed,
        )
        result.verify(graph)
        return result
