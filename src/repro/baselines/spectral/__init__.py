"""Spectral partitioning baselines (EIG1, MELO) and their Laplacian substrate."""

from .eig1 import Eig1Partitioner
from .laplacian import (
    DENSE_THRESHOLD,
    fiedler_vector,
    laplacian_matrix,
    smallest_eigenvectors,
)
from .melo import MeloPartitioner

__all__ = [
    "Eig1Partitioner",
    "MeloPartitioner",
    "laplacian_matrix",
    "fiedler_vector",
    "smallest_eigenvectors",
    "DENSE_THRESHOLD",
]
