"""MELO-style multi-eigenvector linear ordering [Alpert & Yao, DAC 1995].

The paper's Table 3 competitor "MELO": instead of ordering nodes by the
Fiedler vector alone, MELO embeds every node with its components in the
``d`` smallest non-trivial Laplacian eigenvectors ("the more eigenvectors
the better") and derives a linear ordering from that d-dimensional
embedding; the ordering is then split at the best balanced point.

Faithfulness note (see DESIGN.md, substitutions): Alpert & Yao construct
the ordering by solving a max-TSP-like problem over the embedded points;
we use the standard greedy nearest-neighbor chain through the embedding
starting from an extreme vertex — the same mechanism class (multi-
eigenvector spatial ordering) with the same cost profile (dominated by the
eigensolve), which is what the Table 3/4 comparisons exercise.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from ...hypergraph import Hypergraph
from ...partition import (
    BalanceConstraint,
    BipartitionResult,
    best_split_of_ordering,
)
from .laplacian import laplacian_matrix, smallest_eigenvectors


def _greedy_chain_order(points: np.ndarray) -> List[int]:
    """Greedy nearest-neighbor chain through embedded points.

    Starts from the point most distant from the centroid (an "extreme"
    vertex, mirroring MELO's endpoint heuristics) and repeatedly appends
    the nearest unvisited point.  O(n²) — acceptable at benchmark scale;
    the eigensolve dominates anyway.
    """
    n = points.shape[0]
    centroid = points.mean(axis=0)
    start = int(np.argmax(np.linalg.norm(points - centroid, axis=1)))
    visited = np.zeros(n, dtype=bool)
    order = [start]
    visited[start] = True
    current = start
    for _ in range(n - 1):
        dist = np.linalg.norm(points - points[current], axis=1)
        dist[visited] = np.inf
        nxt = int(np.argmin(dist))
        order.append(nxt)
        visited[nxt] = True
        current = nxt
    return order


class MeloPartitioner:
    """Multi-eigenvector linear ordering + best balanced split."""

    def __init__(self, num_eigenvectors: int = 4) -> None:
        if num_eigenvectors < 1:
            raise ValueError("num_eigenvectors must be >= 1")
        self.num_eigenvectors = num_eigenvectors

    name = "MELO"
    #: Seed-independent: the multirun harness clamps extra runs to one.
    deterministic = True

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,
        initial_sides: Optional[Sequence[int]] = None,  # noqa: ARG002 - deterministic method
        seed: Optional[int] = None,
    ) -> BipartitionResult:
        """Bisect ``graph`` via the multi-eigenvector ordering.

        Deterministic; ``initial_sides``/``seed`` exist for interface
        compatibility.
        """
        if balance is None:
            balance = BalanceConstraint.forty_five_fifty_five(graph)
        start = time.perf_counter()
        d = min(self.num_eigenvectors, max(1, graph.num_nodes - 2))
        laplacian = laplacian_matrix(graph)
        _, vecs = smallest_eigenvectors(laplacian, d + 1)
        embedding = np.asarray(vecs[:, 1:])  # drop the trivial vector
        if embedding.ndim == 1:
            embedding = embedding[:, None]
        order = _greedy_chain_order(embedding)
        sides, cut = best_split_of_ordering(graph, order, balance)
        elapsed = time.perf_counter() - start
        result = BipartitionResult(
            sides=sides,
            cut=cut,
            algorithm="MELO",
            seed=seed,
            passes=1,
            runtime_seconds=elapsed,
            stats={"eigenvectors": float(d)},
        )
        result.verify(graph)
        return result
