"""Random balanced bisection — the sanity floor every method must beat."""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..hypergraph import Hypergraph
from ..partition import (
    BalanceConstraint,
    BipartitionResult,
    cut_cost,
    random_balanced_sides,
)


class RandomPartitioner:
    """Returns a seeded random balanced bisection (no improvement at all)."""

    name = "RANDOM"

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,  # noqa: ARG002 - random split is always ~balanced
        initial_sides: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> BipartitionResult:
        """Return the seeded random balanced bisection (no improvement)."""
        start = time.perf_counter()
        sides = (
            list(initial_sides)
            if initial_sides is not None
            else random_balanced_sides(graph, seed)
        )
        return BipartitionResult(
            sides=sides,
            cut=cut_cost(graph, sides),
            algorithm="RANDOM",
            seed=seed,
            passes=0,
            runtime_seconds=time.perf_counter() - start,
        )
