"""Command-line driver: ``prop-partition`` (or ``python -m repro``).

Examples
--------
Partition a netlist file with PROP, 20 runs, 45-55 balance::

    prop-partition mydesign.hgr --algorithm prop --runs 20 --balance 45-55

Generate a synthetic Table-1 benchmark and compare algorithms::

    prop-partition --generate struct --scale 0.2 --algorithm fm la-2 prop

Write the best partition to JSON::

    prop-partition mydesign.hgr -a prop -o result.json

Fan 40 runs across 4 worker processes with result caching::

    prop-partition mydesign.hgr -a prop --runs 40 --workers 4

Benchmark the engine itself (``bench`` subcommand)::

    python -m repro bench --workers 2 --runs 4

Resume an interrupted sweep, verify or clear the result cache::

    prop-partition mydesign.hgr -a prop --runs 100 --workers 8 --resume myrun
    python -m repro cache verify
    python -m repro cache clear

Record a telemetry trace and summarize it afterwards::

    prop-partition --generate t5 --scale 0.05 -a prop --trace prop.jsonl
    python -m repro trace summarize prop.jsonl

Run the partitioning service (HTTP job API; see docs/service.md)::

    python -m repro serve --port 8642

Inspect or release quarantined poison jobs (see docs/guard.md)::

    python -m repro quarantine list
    python -m repro quarantine show <fingerprint>
    python -m repro quarantine release <fingerprint>

Budgeted ensemble solving with adaptive restarts (see docs/analysis.md)::

    python -m repro ensemble fit --output portfolio.json
    python -m repro ensemble solve mydesign.hgr --budget 40
    python -m repro ensemble solve mydesign.hgr --model portfolio.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

from .baselines import (
    Eig1Partitioner,
    FMPartitioner,
    KLPartitioner,
    LAPartitioner,
    MeloPartitioner,
    ParaboliPartitioner,
    RandomPartitioner,
    WindowPartitioner,
)
from .core import PropConfig, PropPartitioner
from .kernels import KERNEL_CHOICES
from .hypergraph import BENCHMARK_NAMES, Hypergraph, compute_stats, make_benchmark
from .hypergraph import io_ as netlist_io
from .multirun import run_many
from .partition import BalanceConstraint, balance_ratio


def _make_partitioner(
    name: str,
    kernel: Optional[str] = None,
    subround_workers: int = 0,
    coarsest_nodes: int = 80,
    coarsest_runs: int = 8,
    rating: str = "heavy-edge",
):
    key = name.lower()
    kern = kernel if kernel is not None else "auto"
    if key == "prop":
        return PropPartitioner(
            PropConfig(kernel=kern, subround_workers=subround_workers)
        )
    if key in ("fm", "fm-bucket"):
        return FMPartitioner(
            "bucket", kernel=kern, subround_workers=subround_workers
        )
    if key == "fm-tree":
        return FMPartitioner(
            "tree", kernel=kern, subround_workers=subround_workers
        )
    if key.startswith("la-"):
        return LAPartitioner(int(key.split("-", 1)[1]), kernel=kern)
    if key == "kl":
        return KLPartitioner()
    if key == "eig1":
        return Eig1Partitioner()
    if key == "melo":
        return MeloPartitioner()
    if key == "window":
        return WindowPartitioner()
    if key == "paraboli":
        return ParaboliPartitioner()
    if key == "random":
        return RandomPartitioner()
    if key in ("ml", "ml-prop", "multilevel"):
        from .multilevel import MultilevelPartitioner

        return MultilevelPartitioner(
            coarsest_nodes=coarsest_nodes, coarsest_runs=coarsest_runs
        )
    if key in ("nlevel", "nl", "nlevel-prop"):
        from .multilevel import NLevelPartitioner

        return NLevelPartitioner(
            coarsest_nodes=coarsest_nodes,
            coarsest_runs=coarsest_runs,
            rating=rating,
        )
    if key in ("prop-cl", "two-phase"):
        from .core import TwoPhasePropPartitioner

        return TwoPhasePropPartitioner(PropConfig(kernel=kern))
    if key == "sa":
        from .baselines import AnnealingPartitioner

        return AnnealingPartitioner()
    raise argparse.ArgumentTypeError(f"unknown algorithm {name!r}")


def _make_balance(graph: Hypergraph, spec: str) -> BalanceConstraint:
    if spec == "50-50":
        return BalanceConstraint.fifty_fifty(graph)
    if spec == "45-55":
        return BalanceConstraint.forty_five_fifty_five(graph)
    try:
        lo_str, hi_str = spec.split("-")
        return BalanceConstraint.from_fractions(
            graph, float(lo_str) / 100.0, float(hi_str) / 100.0
        )
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"bad balance spec {spec!r} (want e.g. '50-50' or '45-55')"
        ) from exc


def build_parser() -> argparse.ArgumentParser:
    """Construct the prop-partition argument parser."""
    parser = argparse.ArgumentParser(
        prog="prop-partition",
        description=(
            "2-way min-cut circuit partitioning with PROP (DAC 1996) "
            "and its baselines"
        ),
    )
    parser.add_argument(
        "netlist",
        nargs="?",
        help="netlist file (.hgr / .net / .json); omit with --generate",
    )
    parser.add_argument(
        "--generate",
        metavar="NAME",
        choices=BENCHMARK_NAMES,
        help=f"generate a synthetic Table-1 circuit ({', '.join(BENCHMARK_NAMES)})",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="down-scale factor for --generate (default 1.0)",
    )
    parser.add_argument(
        "-a",
        "--algorithm",
        nargs="+",
        default=["prop"],
        help=(
            "one or more of: prop, prop-cl, ml-prop, nlevel, fm, fm-tree, "
            "la-K, kl, sa, eig1, melo, window, paraboli, random "
            "(default: prop)"
        ),
    )
    parser.add_argument(
        "--balance",
        default="50-50",
        help="balance criterion, e.g. 50-50 or 45-55 (default 50-50)",
    )
    parser.add_argument(
        "--runs", type=int, default=1, help="runs per algorithm (best kept)"
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default="auto",
        help="gain-kernel backend for PROP/FM/LA (default auto: numpy "
        "when available and the instance is large enough, also "
        "REPRO_KERNEL). python/numpy are bit-identical — same moves and "
        "cuts — so choosing between them only affects runtime; subround "
        "runs deterministic batched sub-round passes (different move "
        "interleaving, worker-count-invariant results)",
    )
    parser.add_argument(
        "--subround-workers",
        type=int,
        default=0,
        metavar="N",
        help="shared-memory workers for --kernel subround (default 0: "
        "inline sweeps). Never changes results, only wall-clock",
    )
    parser.add_argument(
        "--coarsest-nodes",
        type=int,
        default=80,
        metavar="N",
        help="multilevel engines (ml-prop, nlevel): stop coarsening at "
        "N nodes (default 80)",
    )
    parser.add_argument(
        "--coarsest-runs",
        type=int,
        default=8,
        metavar="N",
        help="multilevel engines: random starts on the coarsest graph, "
        "best kept (default 8)",
    )
    parser.add_argument(
        "--rating",
        choices=("heavy-edge", "uniform"),
        default="heavy-edge",
        help="nlevel: pair-rating function for priority-queue "
        "contraction (default heavy-edge)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a JSONL telemetry trace of every run to PATH "
        "(sequential runs only; summarize with 'trace summarize PATH'). "
        "Tracing never changes moves or cuts",
    )
    _add_engine_flags(parser)
    parser.add_argument(
        "-o", "--output", help="write the best partition as JSON to this path"
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--kway",
        type=int,
        metavar="K",
        help="k-way partition (recursive bisection + pairwise refinement) "
        "instead of 2-way",
    )
    mode.add_argument(
        "--place",
        action="store_true",
        help="min-cut placement on the unit square; reports HPWL",
    )
    mode.add_argument(
        "--fpga",
        type=int,
        metavar="N",
        help="map onto N identical FPGAs (see --fpga-capacity/--fpga-io)",
    )
    mode.add_argument(
        "--verify",
        metavar="RESULT.json",
        help="validate a previously saved 2-way partition against the "
        "netlist and --balance",
    )
    parser.add_argument(
        "--fpga-capacity",
        type=float,
        default=None,
        help="per-device logic capacity (default: total/N x 1.15)",
    )
    parser.add_argument(
        "--fpga-io",
        type=int,
        default=400,
        help="per-device I/O pin budget (default 400)",
    )
    return parser


def _nonneg_int(text: str) -> int:
    """argparse type for ``--workers``: a non-negative integer."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


_nonneg_int.__name__ = "int"  # argparse's "invalid ... value" message


def _pos_int(text: str) -> int:
    """argparse type for ``--audit``: a positive integer."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


_pos_int.__name__ = "int"


def _pos_float(text: str) -> float:
    """argparse type for ``--timeout``: a positive float."""
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


_pos_float.__name__ = "float"


def _audit_from_args(args):
    """AuditConfig for ``--audit N`` (None when the flag is absent)."""
    if args.audit is None:
        return None
    from .audit import AuditConfig

    return AuditConfig(every=args.audit)


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """Execution-engine knobs shared by the partition and bench modes."""
    group = parser.add_argument_group("execution engine")
    group.add_argument(
        "--workers",
        type=_nonneg_int,
        default=None,
        metavar="N",
        help="fan runs across N worker processes (0/1 = in-process; "
        "default: sequential, or REPRO_ENGINE_WORKERS when set)",
    )
    group.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result-cache directory (default .repro_cache/, "
        "or REPRO_ENGINE_CACHE when set)",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    group.add_argument(
        "--timeout",
        type=_pos_float,
        default=None,
        metavar="S",
        help="per-unit wall-clock budget in seconds (measured from "
        "submission; hung units are retried, then run in-process)",
    )
    group.add_argument(
        "--run-id",
        default=None,
        metavar="ID",
        help="journal the batch under <cache-dir>/runs/ID.jsonl so an "
        "interrupted run can be resumed (default: auto-generated)",
    )
    group.add_argument(
        "--resume",
        default=None,
        metavar="ID",
        help="resume run ID: serve units already journalled under that "
        "id without recomputing them, execute only the remainder",
    )
    group.add_argument(
        "--keep-going",
        action="store_true",
        help="collect per-unit failures instead of aborting the batch "
        "(failed runs are reported and excluded from best/mean)",
    )
    group.add_argument(
        "--audit",
        nargs="?",
        const=1,
        default=None,
        type=_pos_int,
        metavar="N",
        help="cross-check invariants against brute force every N moves "
        "(bare flag: every move; also REPRO_AUDIT=N). Results are "
        "unchanged; a violation aborts with a reproducible report",
    )


def _engine_from_args(args) -> Optional["object"]:
    """Build an Engine when any engine flag was used, else None
    (None keeps the plain sequential code path for tiny runs)."""
    if (
        args.workers is None
        and args.cache_dir is None
        and not args.no_cache
        and args.timeout is None
        and args.run_id is None
        and args.resume is None
        and not args.keep_going
    ):
        return None
    from .engine import Engine, EngineConfig

    return Engine(
        EngineConfig(
            workers=args.workers,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            timeout=args.timeout,
            on_error="collect" if args.keep_going else "raise",
        )
    )


def _run_id_from_args(args) -> "tuple[Optional[str], bool]":
    """Resolve ``(run_id, resume)`` for a journalled engine batch.

    ``--resume ID`` wins (and implies journalling under the same id);
    otherwise ``--run-id``, otherwise a generated timestamp-pid id so
    every engine-backed CLI run is resumable after a crash.
    """
    if args.resume is not None:
        return args.resume, True
    if args.run_id is not None:
        return args.run_id, False
    return f"{time.strftime('%Y%m%d-%H%M%S')}-{os.getpid()}", False


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        return _run_bench_mode(argv[1:])
    if argv and argv[0] == "cache":
        return _run_cache_mode(argv[1:])
    if argv and argv[0] == "trace":
        return _run_trace_mode(argv[1:])
    if argv and argv[0] == "serve":
        return _run_serve_mode(argv[1:])
    if argv and argv[0] == "quarantine":
        return _run_quarantine_mode(argv[1:])
    if argv and argv[0] == "ensemble":
        return _run_ensemble_mode(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.generate:
        graph = make_benchmark(args.generate, scale=args.scale)
        source = f"generated:{args.generate}@{args.scale}"
    elif args.netlist:
        graph = netlist_io.read(args.netlist)
        source = args.netlist
    else:
        parser.error("provide a netlist file or --generate NAME")
        return 2  # unreachable; parser.error raises

    stats = compute_stats(graph)
    print(
        f"{source}: {stats.n} nodes, {stats.e} nets, {stats.m} pins "
        f"(p={stats.p:.2f}, q={stats.q:.2f})"
    )

    if args.kway is not None:
        return _run_kway_mode(graph, args)
    if args.place:
        return _run_place_mode(graph, args)
    if args.fpga is not None:
        return _run_fpga_mode(graph, args)
    if args.verify is not None:
        return _run_verify_mode(graph, args)

    balance = _make_balance(graph, args.balance)
    print(balance.describe())
    engine = _engine_from_args(args)
    audit = _audit_from_args(args)
    if audit is not None:
        print(f"auditing invariants every {audit.every} move(s)")
    run_id, resume = (None, False)
    if engine is not None:
        run_id, resume = _run_id_from_args(args)
        verb = "resuming" if resume else "journalling"
        print(f"{verb} run {run_id} (resume with --resume {run_id})")

    recorder = None
    if args.trace is not None:
        from .telemetry import TraceRecorder

        recorder = TraceRecorder(args.trace)
        print(f"tracing runs to {args.trace}")

    best_overall = None
    interrupted = False
    for name in args.algorithm:
        if interrupted:
            break
        partitioner = _make_partitioner(
            name, args.kernel, getattr(args, "subround_workers", 0),
            coarsest_nodes=getattr(args, "coarsest_nodes", 80),
            coarsest_runs=getattr(args, "coarsest_runs", 8),
            rating=getattr(args, "rating", "heavy-edge"),
        )
        outcome = run_many(
            partitioner, graph, runs=args.runs, balance=balance,
            base_seed=args.seed, circuit_name=source, engine=engine,
            audit=audit, run_id=run_id, resume=resume, recorder=recorder,
        )
        interrupted = interrupted or outcome.interrupted
        for failed in outcome.errors:
            error = failed.error
            print(
                f"{outcome.algorithm:>10s}: run seed {failed.unit.seed} "
                f"FAILED after {error.attempts} attempt(s): "
                f"{error.exc_type}: {error.message}"
            )
        best = outcome.best
        if best is None:
            print(f"{outcome.algorithm:>10s}: no completed runs")
            continue
        ratio = balance_ratio(graph, best.sides)
        print(
            f"{outcome.algorithm:>10s}: best cut {best.cut:g} over "
            f"{len(outcome.cuts)} run(s), mean {outcome.mean_cut:.1f}, "
            f"balance {ratio:.3f}, {outcome.total_seconds:.2f}s total"
        )
        if best_overall is None or best.cut < best_overall.cut:
            best_overall = best
    if recorder is not None:
        recorder.close()
    if engine is not None:
        print(_engine_summary(engine))
    if interrupted:
        print(
            f"interrupted — partial results journalled; finish with "
            f"--resume {run_id}"
        )

    if args.output and best_overall is not None:
        payload: Dict[str, object] = {
            "source": source,
            "algorithm": best_overall.algorithm,
            "cut": best_overall.cut,
            "seed": best_overall.seed,
            "sides": best_overall.sides,
        }
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=1)
        print(f"wrote {args.output}")
    return 130 if interrupted else 0


def _mode_partitioner(args):
    """First algorithm named on the command line drives the k-way/place/
    FPGA modes (they take a single 2-way engine)."""
    return _make_partitioner(
        args.algorithm[0],
        getattr(args, "kernel", None),
        getattr(args, "subround_workers", 0),
        coarsest_nodes=getattr(args, "coarsest_nodes", 80),
        coarsest_runs=getattr(args, "coarsest_runs", 8),
        rating=getattr(args, "rating", "heavy-edge"),
    )


def _run_kway_mode(graph: Hypergraph, args) -> int:
    from .kway import pairwise_refine, recursive_bisection

    partitioner = _mode_partitioner(args)
    result = recursive_bisection(
        graph,
        args.kway,
        partitioner=partitioner,
        seed=args.seed,
        runs_per_split=max(1, args.runs),
    )
    assignment, report = pairwise_refine(
        graph, result.assignment, args.kway,
        partitioner=partitioner, seed=args.seed,
    )
    weights = [0.0] * args.kway
    for v, part in enumerate(assignment):
        weights[part] += graph.node_weight(v)
    print(f"k={args.kway} via {getattr(partitioner, 'name', '?')}: "
          f"cut {report.initial_cut:g} -> {report.final_cut:g} "
          f"after {report.pair_improvements} pair improvements")
    print("part weights: " + "/".join(f"{w:g}" for w in weights))
    if args.output:
        _write_json(args.output, {
            "mode": "kway", "k": args.kway, "cut": report.final_cut,
            "assignment": assignment,
        })
    return 0


def _run_place_mode(graph: Hypergraph, args) -> int:
    from .placement import mincut_placement, random_placement

    placement = mincut_placement(
        graph, partitioner=_mode_partitioner(args), seed=args.seed
    )
    baseline = random_placement(graph, seed=args.seed)
    hpwl = placement.hpwl()
    print(f"min-cut placement HPWL {hpwl:.2f} "
          f"({hpwl / max(baseline.hpwl(), 1e-12):.1%} of random)")
    if args.output:
        _write_json(args.output, {
            "mode": "place", "hpwl": hpwl,
            "x": placement.x, "y": placement.y,
        })
    return 0


def _run_fpga_mode(graph: Hypergraph, args) -> int:
    from .fpga import FpgaDevice, partition_onto_fpgas

    n = args.fpga
    capacity = args.fpga_capacity
    if capacity is None:
        capacity = graph.total_node_weight / n * 1.15
    devices = [FpgaDevice(capacity=capacity, io_limit=args.fpga_io)] * n
    plan = partition_onto_fpgas(
        graph, devices, partitioner=_mode_partitioner(args), seed=args.seed
    )
    for d in range(n):
        print(f"FPGA{d}: logic {plan.utilization[d]:g}/{capacity:g}  "
              f"I/O {plan.io_counts[d]}/{args.fpga_io}")
    print(f"inter-FPGA nets: {plan.cut:g}  feasible: {plan.feasible}")
    if args.output:
        _write_json(args.output, {
            "mode": "fpga", "devices": n, "cut": plan.cut,
            "feasible": plan.feasible, "assignment": plan.assignment,
        })
    return 0


def _run_verify_mode(graph: Hypergraph, args) -> int:
    from .partition import check_partition

    with open(args.verify) as fh:
        payload = json.load(fh)
    sides = payload.get("sides")
    if sides is None:
        print(f"{args.verify}: no 'sides' field (is this a 2-way result?)")
        return 2
    balance = _make_balance(graph, args.balance)
    report = check_partition(
        graph, sides, balance=balance, expected_cut=payload.get("cut")
    )
    print(report.summary())
    return 0 if report.ok else 1


def _engine_summary(engine) -> str:
    """One-line engine accounting for CLI output."""
    stats = engine.stats
    workers = engine.config.resolved_workers()
    cache = "off" if engine.cache is None else str(engine.cache.root)
    line = (
        f"engine: {workers} worker(s), cache {cache} — "
        f"{stats.executed} executed ({stats.pool_executed} in pool), "
        f"{stats.cache_hits} cache hit(s)"
    )
    extras = []
    if stats.journal_hits:
        extras.append(f"{stats.journal_hits} resumed")
    if stats.retried:
        extras.append(f"{stats.retried} retried")
    if stats.unit_errors:
        extras.append(f"{stats.unit_errors} failed")
    if stats.timeouts:
        extras.append(f"{stats.timeouts} timed out")
    if extras:
        line += ", " + ", ".join(extras)
    return line


# ---------------------------------------------------------------------------
# cache subcommand
# ---------------------------------------------------------------------------
def _build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="prop-partition cache",
        description="inspect and maintain the on-disk result cache",
    )
    parser.add_argument(
        "action",
        choices=["verify", "clear"],
        help="verify: integrity-scan every record (removes corrupt ones "
        "unless --keep); clear: delete every record",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache directory (default .repro_cache/, or "
        "REPRO_ENGINE_CACHE when set)",
    )
    parser.add_argument(
        "--keep",
        action="store_true",
        help="verify only: report corrupt records without deleting them",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="verify only: emit a machine-readable JSON report instead "
        "of text (exit code unchanged: 0 clean, 1 corruption found)",
    )
    return parser


def _run_cache_mode(argv: List[str]) -> int:
    """``prop-partition cache verify|clear`` — cache maintenance.

    ``verify`` exit codes are part of the contract (CI and the service
    startup integrity check rely on them): **0** — every record clean;
    **1** — corrupt records found (and removed unless ``--keep``).
    ``--json`` reports ``{"root", "scanned", "ok", "corrupt", "removed",
    "runs"}`` on stdout with nothing else.
    """
    from .engine import ResultCache, default_cache_dir, list_runs

    parser = _build_cache_parser()
    args = parser.parse_args(argv)
    root = args.cache_dir or default_cache_dir()
    cache = ResultCache(root=root)
    if args.action == "verify":
        report = cache.verify(remove=not args.keep)
        runs = list_runs(root)
        if args.json:
            print(json.dumps({
                "root": str(root),
                "scanned": report.scanned,
                "ok": report.ok,
                "corrupt": report.corrupt,
                "removed": report.removed,
                "runs": runs,
            }, sort_keys=True))
        else:
            print(f"{root}: {report.summary()}")
            if runs:
                print(f"{len(runs)} run journal(s): {', '.join(runs[-5:])}")
        return 1 if report.corrupt else 0
    removed = cache.clear()
    print(f"{root}: removed {removed} record(s)")
    return 0


# ---------------------------------------------------------------------------
# trace subcommand
# ---------------------------------------------------------------------------
def _build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="prop-partition trace",
        description="summarize telemetry trace files and run journals",
    )
    parser.add_argument(
        "action",
        choices=["summarize"],
        help="summarize: per-algorithm phase timing, counter and cut "
        "digest of one or more trace/journal files",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="JSONL files written by --trace (or engine run journals "
        "under <cache-dir>/runs/)",
    )
    return parser


def _run_trace_mode(argv: List[str]) -> int:
    """``prop-partition trace summarize PATH...`` — trace digests.

    Accepts both telemetry traces (``--trace`` output) and engine run
    journals; the file dialect is sniffed per path.  Exits non-zero when
    any path is missing or unrecognizable.
    """
    from .telemetry import summarize_path

    parser = _build_trace_parser()
    args = parser.parse_args(argv)
    status = 0
    for i, path in enumerate(args.paths):
        if i:
            print()
        try:
            print(summarize_path(path).format_text())
        except (OSError, ValueError) as exc:
            print(f"{path}: {exc}")
            status = 1
    return status


# ---------------------------------------------------------------------------
# serve subcommand
# ---------------------------------------------------------------------------
def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="prop-partition serve",
        description="run the partitioning service: HTTP/JSON job API "
        "over the engine's cache, journals and telemetry "
        "(see docs/service.md)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=8642,
        help="bind port (default 8642; 0 picks a free port)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache + journal directory (default .repro_cache/, or "
        "REPRO_ENGINE_CACHE when set); restarting against the same "
        "directory resumes interrupted jobs",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache (journals stay on)",
    )
    parser.add_argument(
        "--job-workers", type=int, default=8, metavar="N",
        help="concurrent job executions (default 8)",
    )
    parser.add_argument(
        "--engine-workers", type=_nonneg_int, default=0, metavar="N",
        help="process-pool size per job's engine batch "
        "(default 0: in-process units; raise for few large jobs)",
    )
    parser.add_argument(
        "--timeout", type=_pos_float, default=None, metavar="S",
        help="per-unit wall-clock budget in seconds (default: none)",
    )
    parser.add_argument(
        "--tenant-weight",
        action="append",
        default=[],
        metavar="TENANT=W",
        help="fair-queue weight for a tenant (repeatable; others get 1.0)",
    )
    parser.add_argument(
        "--no-integrity-check", action="store_true",
        help="skip the cache verification scan on startup",
    )
    guard = parser.add_argument_group(
        "resource governance (repro.guard; see docs/guard.md)"
    )
    guard.add_argument(
        "--max-queue-depth", type=_nonneg_int, default=0, metavar="N",
        help="max queued jobs before submissions shed with 429 "
        "(default 0: unbounded)",
    )
    guard.add_argument(
        "--tenant-inflight", type=_nonneg_int, default=0, metavar="N",
        help="per-tenant in-flight (queued+running) job cap "
        "(default 0: uncapped)",
    )
    guard.add_argument(
        "--deadline", type=_pos_float, default=None, metavar="S",
        help="default per-job wall-clock deadline in seconds, for specs "
        "without deadline_seconds (default: none)",
    )
    guard.add_argument(
        "--quarantine-after", type=_nonneg_int, default=3, metavar="N",
        help="consecutive failures before a spec fingerprint is "
        "quarantined (default 3; 0 disables)",
    )
    guard.add_argument(
        "--memory-high-water-mb", type=_pos_float, default=None,
        metavar="MB",
        help="shed new admissions while service RSS exceeds this "
        "(default: no memory watchdog)",
    )
    guard.add_argument(
        "--worker-rlimit-mb", type=_pos_float, default=None, metavar="MB",
        help="RLIMIT_AS soft cap applied inside pool/shm workers "
        "(default: uncapped)",
    )
    return parser


def _run_serve_mode(argv: List[str]) -> int:
    """``prop-partition serve`` — run the HTTP partitioning service."""
    import asyncio

    from .service import ServiceConfig, run_service

    parser = _build_serve_parser()
    args = parser.parse_args(argv)
    weights: Dict[str, float] = {}
    for item in args.tenant_weight:
        tenant, sep, raw = item.partition("=")
        try:
            weight = float(raw)
            if not sep or not tenant or weight <= 0:
                raise ValueError
        except ValueError:
            parser.error(
                f"bad --tenant-weight {item!r} (want TENANT=POSITIVE_NUMBER)"
            )
        weights[tenant] = weight
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        engine_workers=args.engine_workers,
        job_workers=args.job_workers,
        unit_timeout=args.timeout,
        tenant_weights=weights,
        integrity_check=not args.no_integrity_check,
        max_queue_depth=args.max_queue_depth,
        default_tenant_inflight=args.tenant_inflight,
        default_job_deadline=args.deadline,
        quarantine_after=args.quarantine_after,
        memory_high_water_mb=args.memory_high_water_mb,
        worker_rlimit_mb=args.worker_rlimit_mb,
    )
    try:
        asyncio.run(run_service(config))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        pass
    return 0


# ---------------------------------------------------------------------------
# quarantine subcommand
# ---------------------------------------------------------------------------
def _build_quarantine_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="prop-partition quarantine",
        description="inspect or release quarantined poison-job spec "
        "fingerprints (the service's per-fingerprint circuit breaker; "
        "see docs/guard.md)",
    )
    parser.add_argument(
        "action",
        choices=["list", "show", "release"],
        help="list: quarantined fingerprints; show: one entry's "
        "diagnostics bundle; release: forgive a fingerprint (a running "
        "service picks the release up on its next restart — use "
        "DELETE /v1/quarantine/<fp> to release live)",
    )
    parser.add_argument(
        "fingerprint",
        nargs="?",
        default=None,
        metavar="FINGERPRINT",
        help="spec fingerprint (full sha256 or unique prefix; "
        "required for show/release)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache directory (default .repro_cache/, or "
        "REPRO_ENGINE_CACHE when set)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of text",
    )
    return parser


def _run_quarantine_mode(argv: List[str]) -> int:
    """``prop-partition quarantine list|show|release`` — breaker admin.

    Exit codes: **0** success; **1** unknown/ambiguous fingerprint or
    missing argument.  Operates directly on the quarantine journal under
    ``<cache>/service/quarantine/`` — no running service needed.
    """
    from .engine import default_cache_dir
    from .guard import QuarantineRegistry, quarantine_dir

    parser = _build_quarantine_parser()
    args = parser.parse_args(argv)
    root = args.cache_dir or default_cache_dir()
    registry = QuarantineRegistry(quarantine_dir(root))
    entries = registry.entries()

    if args.action == "list":
        if args.json:
            print(json.dumps(
                {"quarantined": entries, "count": len(entries)},
                sort_keys=True,
            ))
        elif not entries:
            print(f"{root}: no quarantined fingerprints")
        else:
            for entry in entries:
                print(
                    f"{entry['fingerprint']}  strikes={entry['strikes']}  "
                    f"last={entry['last_reason']}  job={entry['last_job_id']}"
                )
        return 0

    if not args.fingerprint:
        parser.error(f"{args.action} requires a FINGERPRINT argument")
    matches = [
        e for e in entries
        if e["fingerprint"].startswith(args.fingerprint)
    ]
    if len(matches) != 1:
        kind = "ambiguous" if matches else "unknown"
        print(f"{kind} fingerprint {args.fingerprint!r} "
              f"({len(matches)} match(es) of {len(entries)} quarantined)")
        return 1
    fingerprint = matches[0]["fingerprint"]

    if args.action == "show":
        bundle = registry.load_bundle(fingerprint) or {
            "entry": matches[0], "bundle": None,
        }
        print(json.dumps(bundle, indent=None if args.json else 2,
                         sort_keys=True))
        return 0

    # release
    registry.release(fingerprint)
    if args.json:
        print(json.dumps({"released": fingerprint}, sort_keys=True))
    else:
        print(f"released {fingerprint}")
    return 0


# ---------------------------------------------------------------------------
# ensemble subcommand
# ---------------------------------------------------------------------------
def _build_ensemble_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="prop-partition ensemble",
        description="budgeted best-of-N with adaptive restarts and "
        "portfolio algorithm selection (see docs/analysis.md)",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    fit = sub.add_parser(
        "fit",
        help="sweep the corpus and fit a portfolio model",
        description="run every portfolio algorithm over the golden "
        "corpus circuits and save a per-instance algorithm selector",
    )
    fit.add_argument(
        "-o", "--output", default="portfolio.json", metavar="PATH",
        help="model file to write (default portfolio.json)",
    )
    fit.add_argument(
        "--algorithms", nargs="+", default=None, metavar="ALGO",
        help="algorithms to sweep (default: the standard portfolio)",
    )
    fit.add_argument(
        "--runs", type=_pos_int, default=8,
        help="restarts per (circuit, algorithm) cell (default 8)",
    )
    fit.add_argument("--seed", type=int, default=0, help="base seed")
    _add_engine_flags(fit)

    solve = sub.add_parser(
        "solve",
        help="partition one netlist under an adaptive restart budget",
        description="best-of-N that stops spending restarts once "
        "P(improvement) x remaining budget drops below --threshold",
    )
    solve.add_argument(
        "netlist", nargs="?",
        help="netlist file (.hgr / .net / .json); omit with --generate",
    )
    solve.add_argument(
        "--generate", metavar="NAME", choices=BENCHMARK_NAMES,
        help="generate a synthetic Table-1 circuit instead of a file",
    )
    solve.add_argument(
        "--scale", type=float, default=1.0,
        help="down-scale factor for --generate (default 1.0)",
    )
    solve.add_argument(
        "-a", "--algorithm", default=None,
        help="force one algorithm (default: prop, or the --model choice)",
    )
    solve.add_argument(
        "--model", default=None, metavar="PATH",
        help="portfolio model from 'ensemble fit'; picks the algorithm "
        "per instance (overridden by -a)",
    )
    solve.add_argument(
        "--budget", type=_pos_int, default=20, metavar="N",
        help="restart budget in runs (default 20)",
    )
    solve.add_argument(
        "--budget-seconds", type=_pos_float, default=None, metavar="S",
        help="optional run-time budget (best-effort; unit budgets are "
        "the deterministic contract)",
    )
    solve.add_argument(
        "--threshold", type=float, default=0.5,
        help="stop when P(improve) x remaining runs < this (default "
        "0.5; <= 0 disables early stopping)",
    )
    solve.add_argument(
        "--min-runs", type=_pos_int, default=4, metavar="N",
        help="never stop before this many runs (default 4)",
    )
    solve.add_argument(
        "--target", type=float, default=None,
        help="stop as soon as the incumbent reaches this cut",
    )
    solve.add_argument(
        "--balance", default="50-50",
        help="balance criterion (default 50-50)",
    )
    solve.add_argument("--seed", type=int, default=0, help="base seed")
    solve.add_argument(
        "--kernel", choices=KERNEL_CHOICES, default="auto",
        help="gain-kernel backend (default auto)",
    )
    _add_engine_flags(solve)
    return parser


def _run_ensemble_mode(argv: List[str]) -> int:
    """``prop-partition ensemble fit|solve`` — adaptive restart driver.

    ``fit`` sweeps the golden corpus and writes a portfolio model;
    ``solve`` partitions one instance under a restart budget, stopping
    early when further restarts are no longer worth their cost.  Exit
    codes: **0** success; **130** interrupted (resume with ``--resume``).
    """
    parser = _build_ensemble_parser()
    args = parser.parse_args(argv)
    if args.action == "fit":
        return _run_ensemble_fit(args)
    return _run_ensemble_solve(parser, args)


def _run_ensemble_fit(args) -> int:
    from .analysis import PORTFOLIO_ALGORITHMS, train_portfolio
    from .testing.golden import CIRCUITS, build_circuit

    circuits = {
        name: build_circuit(spec) for name, spec in CIRCUITS.items()
    }
    algorithms = tuple(args.algorithms or PORTFOLIO_ALGORITHMS)
    engine = _engine_from_args(args)
    print(
        f"fitting portfolio: {len(circuits)} circuit(s) x "
        f"{len(algorithms)} algorithm(s) x {args.runs} run(s)"
    )
    model = train_portfolio(
        circuits, algorithms=algorithms, runs=args.runs,
        base_seed=args.seed, engine=engine,
    )
    model.save(args.output)
    by_circuit: Dict[str, List[str]] = {}
    for obs in model.observations:
        by_circuit.setdefault(obs.circuit, []).append(
            f"{obs.algorithm}={obs.normalized_cut:.3f}"
        )
    for circuit in sorted(by_circuit):
        print(f"{circuit:>10s}: {'  '.join(sorted(by_circuit[circuit]))}")
    if engine is not None:
        print(_engine_summary(engine))
    print(f"wrote {args.output} ({len(model.observations)} observation(s))")
    return 0


def _run_ensemble_solve(parser: argparse.ArgumentParser, args) -> int:
    from .analysis import RestartPolicy, ensemble_solve

    if args.generate:
        graph = make_benchmark(args.generate, scale=args.scale)
        source = f"generated:{args.generate}@{args.scale}"
    elif args.netlist:
        graph = netlist_io.read(args.netlist)
        source = args.netlist
    else:
        parser.error("provide a netlist file or --generate NAME")
        return 2  # unreachable; parser.error raises

    algorithm = args.algorithm
    if algorithm is None and args.model is not None:
        from .analysis import PortfolioModel

        model = PortfolioModel.load(args.model)
        for name, score in model.rank(graph):
            print(f"portfolio: {name:>8s} predicted {score:.3f}")
        algorithm = model.select(graph)
        print(f"portfolio selected: {algorithm}")
    if algorithm is None:
        algorithm = "prop"

    partitioner = _make_partitioner(algorithm, args.kernel)
    balance = _make_balance(graph, args.balance)
    policy = RestartPolicy(
        budget=args.budget,
        threshold=args.threshold,
        min_runs=args.min_runs,
        target=args.target,
        max_seconds=args.budget_seconds,
    )
    engine = _engine_from_args(args)
    run_id, resume = (None, False)
    if engine is not None:
        run_id, resume = _run_id_from_args(args)
        verb = "resuming" if resume else "journalling"
        print(f"{verb} run {run_id} (resume with --resume {run_id})")

    result = ensemble_solve(
        partitioner, graph, policy, balance=balance, base_seed=args.seed,
        circuit_name=source, engine=engine, run_id=run_id, resume=resume,
    )
    print(result.summary())
    for failed in result.outcome.errors:
        error = failed.error
        print(
            f"run seed {failed.unit.seed} FAILED after "
            f"{error.attempts} attempt(s): {error.exc_type}: {error.message}"
        )
    if engine is not None:
        print(_engine_summary(engine))
    if result.outcome.interrupted:
        print(
            f"interrupted — partial results journalled; finish with "
            f"--resume {run_id}"
        )
        return 130
    return 0


# ---------------------------------------------------------------------------
# bench subcommand
# ---------------------------------------------------------------------------
def _build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="prop-partition bench",
        description="exercise the execution engine on a synthetic "
        "circuit × algorithm × seed grid and report throughput",
    )
    parser.add_argument(
        "--circuits",
        default="t6",
        help=f"comma-separated Table-1 circuit names (default t6; "
        f"choices: {', '.join(BENCHMARK_NAMES)})",
    )
    parser.add_argument(
        "--scale", type=float, default=0.06,
        help="circuit down-scale factor (default 0.06: quick smoke)",
    )
    parser.add_argument(
        "-a", "--algorithm", nargs="+", default=["fm", "prop"],
        help="algorithms to bench (default: fm prop)",
    )
    parser.add_argument(
        "--runs", type=int, default=4,
        help="runs per (circuit, algorithm) cell (default 4)",
    )
    parser.add_argument("--balance", default="50-50", help="balance criterion")
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default="auto",
        help="gain-kernel backend (default auto; see prop-partition --help)",
    )
    parser.add_argument(
        "--subround-workers",
        type=int,
        default=0,
        metavar="N",
        help="shared-memory workers for --kernel subround (default 0)",
    )
    _add_engine_flags(parser)
    return parser


def _run_bench_mode(argv: List[str]) -> int:
    """``prop-partition bench`` — grid fan-out through the engine."""
    import time

    from .engine import Engine, EngineConfig, WorkUnit, seed_stream
    from .multirun import effective_runs

    parser = _build_bench_parser()
    args = parser.parse_args(argv)
    names = [n.strip() for n in args.circuits.split(",") if n.strip()]
    for name in names:
        if name not in BENCHMARK_NAMES:
            parser.error(f"unknown circuit {name!r}")

    engine = Engine(
        EngineConfig(
            workers=args.workers,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            timeout=args.timeout,
            on_error="collect" if args.keep_going else "raise",
        )
    )
    run_id, resume = _run_id_from_args(args)
    audit = _audit_from_args(args)
    circuits = {n: make_benchmark(n, scale=args.scale) for n in names}

    units: List[WorkUnit] = []
    cells: List[Dict[str, object]] = []
    for circuit_name, graph in circuits.items():
        balance = _make_balance(graph, args.balance)
        for algo_name in args.algorithm:
            partitioner = _make_partitioner(
                algo_name, args.kernel, getattr(args, "subround_workers", 0)
            )
            runs = effective_runs(partitioner, args.runs)
            cells.append({"circuit": circuit_name, "partitioner": partitioner,
                          "runs": runs})
            for seed in seed_stream(args.seed, runs):
                units.append(
                    WorkUnit(graph=graph, partitioner=partitioner, seed=seed,
                             balance=balance, tag=circuit_name, audit=audit)
                )

    start = time.perf_counter()
    outcomes = engine.run(units, run_id=run_id, resume=resume)
    elapsed = time.perf_counter() - start
    if engine.interrupted:
        print(f"interrupted — resume with --resume {run_id}")
        print(_engine_summary(engine))
        return 130

    cursor = 0
    for cell in cells:
        runs = cell["runs"]
        group = outcomes[cursor:cursor + runs]
        cursor += runs
        cuts = [u.result.cut for u in group if u.ok]
        if not cuts:
            print(f"{cell['circuit']:>8s}: no completed runs")
            continue
        compute = sum(u.seconds for u in group)
        tag = getattr(cell["partitioner"], "name", "?")
        print(
            f"{cell['circuit']:>8s} {tag:>10s}: best {min(cuts):g} "
            f"mean {sum(cuts) / len(cuts):.1f} over {runs} run(s), "
            f"{compute:.2f}s compute"
        )
    total_compute = sum(u.seconds for u in outcomes)
    speedup = total_compute / elapsed if elapsed > 0 else 1.0
    print(
        f"{len(units)} unit(s) in {elapsed:.2f}s wall "
        f"({total_compute:.2f}s compute, {speedup:.1f}x)"
    )
    print(_engine_summary(engine))
    return 0


def _write_json(path: str, payload: Dict[str, object]) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
    print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
