"""PROP — probability-based VLSI circuit partitioning.

A complete, from-scratch reproduction of

    Shantanu Dutt and Wenyong Deng,
    "A Probability-Based Approach to VLSI Circuit Partitioning",
    Proc. 33rd Design Automation Conference (DAC), 1996.

Top-level surface (the most common entry points)::

    from repro import (
        Hypergraph, PropPartitioner, PropConfig, BalanceConstraint,
        FMPartitioner, LAPartitioner, run_many,
    )

Subpackages:

* ``repro.hypergraph``   — netlist data structure, I/O, circuit generators
* ``repro.datastructures`` — AVL tree, FM gain buckets, pass journal
* ``repro.partition``    — partition state, balance, metrics
* ``repro.core``         — PROP itself (the paper's contribution)
* ``repro.kernels``      — vectorized gain kernels (numpy backend, CSR view)
* ``repro.baselines``    — FM, LA, KL, EIG1, MELO, WINDOW, PARABOLI
* ``repro.multirun``     — best-of-N run protocol
* ``repro.engine``       — parallel work-unit execution engine + result cache
* ``repro.faults``       — seeded deterministic fault injection (chaos testing)
* ``repro.audit``        — runtime invariant auditing + differential oracles
* ``repro.telemetry``    — zero-overhead-when-off tracing of the pass engines
* ``repro.testing``      — shared hypothesis strategies and seeded instances
* ``repro.kway``         — recursive k-way partitioning
* ``repro.timing``       — timing-driven net weighting
* ``repro.fpga``         — multi-FPGA partitioning flow
* ``repro.experiments``  — regeneration of the paper's tables and Figure 1
"""

from .audit import AuditConfig, InvariantViolation
from .baselines import (
    AnnealingPartitioner,
    Eig1Partitioner,
    FMPartitioner,
    KLPartitioner,
    LAPartitioner,
    MeloPartitioner,
    ParaboliPartitioner,
    RandomPartitioner,
    WindowPartitioner,
)
from .core import (
    PAPER_CONFIG,
    PropConfig,
    PropPartitioner,
    TwoPhasePropPartitioner,
    prop_bisect,
)
from .hypergraph import (
    Hypergraph,
    HypergraphBuilder,
    HypergraphError,
    benchmark_suite,
    compute_stats,
    make_benchmark,
)
from .multilevel import MultilevelPartitioner
from .multirun import MultiRunResult, run_many
from .partition import (
    BalanceConstraint,
    BipartitionResult,
    Partition,
    cut_cost,
)
from .telemetry import (
    MemoryRecorder,
    NullRecorder,
    Recorder,
    TraceRecorder,
    summarize_path,
)

#: Participates in every engine cache key: bumping it invalidates the
#: on-disk result cache (see repro.engine.cache).
__version__ = "1.10.0"

from .engine import Engine, EngineConfig, WorkUnit  # noqa: E402 - engine cache keys need __version__ defined first
from .faults import FaultPlan, FaultSpec, injected_faults  # noqa: E402

__all__ = [
    "__version__",
    # netlists
    "Hypergraph",
    "HypergraphBuilder",
    "HypergraphError",
    "make_benchmark",
    "benchmark_suite",
    "compute_stats",
    # partition substrate
    "Partition",
    "BalanceConstraint",
    "BipartitionResult",
    "cut_cost",
    # PROP
    "PropPartitioner",
    "TwoPhasePropPartitioner",
    "PropConfig",
    "PAPER_CONFIG",
    "prop_bisect",
    # baselines
    "FMPartitioner",
    "LAPartitioner",
    "KLPartitioner",
    "Eig1Partitioner",
    "MeloPartitioner",
    "WindowPartitioner",
    "ParaboliPartitioner",
    "RandomPartitioner",
    "AnnealingPartitioner",
    "MultilevelPartitioner",
    # harness
    "run_many",
    "MultiRunResult",
    # execution engine
    "Engine",
    "EngineConfig",
    "WorkUnit",
    # fault injection
    "FaultPlan",
    "FaultSpec",
    "injected_faults",
    # invariant auditing
    "AuditConfig",
    "InvariantViolation",
    # telemetry
    "Recorder",
    "NullRecorder",
    "MemoryRecorder",
    "TraceRecorder",
    "summarize_path",
]
