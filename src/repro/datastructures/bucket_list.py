"""Fidducia–Mattheyses gain buckets.

The classic FM data structure [Fidducia & Mattheyses 1982]: an array of
doubly-linked lists indexed by gain, with a moving max-gain pointer.  All
operations are O(1) amortized, which is what makes FM linear-time — but it
requires integer gains in a bounded range, i.e. **unit net costs**.  For
weighted nets FM must fall back to a tree container (paper Sec. 4 compares
exactly these two variants: FM-bucket vs FM-tree).

Nodes are integers ``0 .. capacity-1``; linked lists are realized with
``prev``/``next`` index arrays (no per-node allocation), matching the
original paper's implementation notes.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

_NIL = -1


class BucketList:
    """Gain-indexed bucket array over integer node ids.

    Parameters
    ----------
    capacity:
        Number of distinct node ids the structure may hold (ids
        ``0..capacity-1``).
    max_gain:
        Bound on ``abs(gain)``; for FM this is the maximum number of pins on
        any node (``p_max``), since each net contributes at most ±1.

    LIFO bucket discipline is used (new insertions go to the bucket front),
    which is the variant reported to behave best in practice for FM.
    """

    def __init__(self, capacity: int, max_gain: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if max_gain < 0:
            raise ValueError("max_gain must be non-negative")
        self._capacity = capacity
        self._max_gain = max_gain
        nbuckets = 2 * max_gain + 1
        self._heads: List[int] = [_NIL] * nbuckets
        self._prev: List[int] = [_NIL] * capacity
        self._next: List[int] = [_NIL] * capacity
        self._gain: List[Optional[int]] = [None] * capacity
        self._best = _NIL  # index into _heads of current max bucket, or _NIL
        self._size = 0

    def _bucket(self, gain: int) -> int:
        if abs(gain) > self._max_gain:
            raise ValueError(
                f"gain {gain} outside ±{self._max_gain} bucket range"
            )
        return gain + self._max_gain

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, node: int) -> bool:
        return 0 <= node < self._capacity and self._gain[node] is not None

    def gain_of(self, node: int) -> int:
        """Current gain of ``node``; KeyError if absent."""
        g = self._gain[node]
        if g is None:
            raise KeyError(f"node {node} not in BucketList")
        return g

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, node: int, gain: int) -> None:
        """Insert ``node`` with ``gain``; KeyError if already present."""
        if not 0 <= node < self._capacity:
            raise KeyError(f"node {node} out of range")
        if self._gain[node] is not None:
            raise KeyError(f"node {node} already in BucketList")
        b = self._bucket(gain)
        head = self._heads[b]
        self._next[node] = head
        self._prev[node] = _NIL
        if head != _NIL:
            self._prev[head] = node
        self._heads[b] = node
        self._gain[node] = gain
        self._size += 1
        if b > self._best:
            self._best = b

    def remove(self, node: int) -> int:
        """Remove ``node``; returns its gain.  KeyError if absent."""
        g = self._gain[node]
        if g is None:
            raise KeyError(f"node {node} not in BucketList")
        b = self._bucket(g)
        prv, nxt = self._prev[node], self._next[node]
        if prv != _NIL:
            self._next[prv] = nxt
        else:
            self._heads[b] = nxt
        if nxt != _NIL:
            self._prev[nxt] = prv
        self._gain[node] = None
        self._prev[node] = _NIL
        self._next[node] = _NIL
        self._size -= 1
        if self._size == 0:
            self._best = _NIL
        elif b == self._best and self._heads[b] == _NIL:
            while self._best >= 0 and self._heads[self._best] == _NIL:
                self._best -= 1
        return g

    def update(self, node: int, new_gain: int) -> None:
        """Move ``node`` to the bucket for ``new_gain``.

        Atomic on failure: the range check runs before the node is
        unlinked, so a ValueError leaves the structure unchanged.
        """
        self._bucket(new_gain)
        self.remove(node)
        self.insert(node, new_gain)

    def adjust(self, node: int, delta: int) -> None:
        """Shift the gain of ``node`` by ``delta`` (FM's ±1 updates)."""
        if delta:
            self.update(node, self.gain_of(node) + delta)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def peek_best(self) -> Tuple[int, int]:
        """(node, gain) at the front of the highest non-empty bucket."""
        if self._size == 0:
            raise KeyError("peek_best() on empty BucketList")
        node = self._heads[self._best]
        return node, self._best - self._max_gain

    def iter_descending(self) -> Iterator[Tuple[int, int]]:
        """Lazy (node, gain) iteration from highest to lowest gain.

        Within a bucket, iteration follows list (LIFO) order.  The
        structure must not be mutated during iteration.
        """
        for b in range(self._best, -1, -1):
            node = self._heads[b]
            gain = b - self._max_gain
            while node != _NIL:
                yield node, gain
                node = self._next[node]

    def check_invariants(self) -> None:
        """Raise AssertionError on broken linkage (used by tests)."""
        count = 0
        for b, head in enumerate(self._heads):
            node = head
            prev = _NIL
            while node != _NIL:
                assert self._gain[node] == b - self._max_gain, "wrong bucket"
                assert self._prev[node] == prev, "broken prev link"
                prev = node
                node = self._next[node]
                count += 1
        assert count == self._size, "size mismatch"
        if self._size:
            assert self._heads[self._best] != _NIL, "best points at empty"
            for b in range(self._best + 1, len(self._heads)):
                assert self._heads[b] == _NIL, "best pointer too low"
