"""Pass journal: recorded moves, prefix gains, and rollback point.

Every FM-family pass (FM, LA, PROP — paper Fig. 2, steps 7/9/10) tentatively
moves *all* movable nodes, recording the immediate cut gain of each move;
afterwards only the prefix of moves achieving the maximum prefix-sum gain
``Gmax`` is kept, the rest are rolled back.  This module holds that journal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class MoveRecord:
    """One tentative move inside a pass."""

    # Manual __slots__ (not dataclass(slots=True), which needs 3.10): one
    # record per tentative move, so a pass allocates n of these.
    __slots__ = ("node", "from_side", "immediate_gain")

    node: int
    from_side: int
    immediate_gain: float


class PassJournal:
    """Accumulates tentative moves and finds the best rollback prefix."""

    __slots__ = ("_moves",)

    def __init__(self) -> None:
        self._moves: List[MoveRecord] = []

    def record(self, node: int, from_side: int, immediate_gain: float) -> None:
        """Record one tentative move and its immediate cut gain."""
        self._moves.append(MoveRecord(node, from_side, immediate_gain))

    @property
    def moves(self) -> Sequence[MoveRecord]:
        return self._moves

    def __len__(self) -> int:
        return len(self._moves)

    def prefix_sums(self) -> List[float]:
        """``S_k = sum of the first k immediate gains`` for k = 1..len."""
        sums: List[float] = []
        running = 0.0
        for mv in self._moves:
            running += mv.immediate_gain
            sums.append(running)
        return sums

    def best_prefix(self) -> Tuple[int, float]:
        """``(p, Gmax)``: the number of moves to keep and their total gain.

        ``p`` is the smallest prefix length achieving the maximum prefix sum
        (keeping fewer moves on ties preserves more freedom for later
        passes).  When every prefix sum is <= 0, returns ``(0, Gmax)`` with
        ``Gmax`` the (non-positive) best sum, or ``(0, 0.0)`` for an empty
        journal — the caller stops when ``Gmax <= 0`` (Fig. 2 step 2).

        The comparison is exact: a later prefix wins only when its sum is
        strictly greater.  An earlier revision used an absolute ``1e-12``
        tolerance, which silently discarded strictly-better later prefixes
        whose improvement fell below the tolerance — reachable with
        fractional (weighted) net costs, where prefix sums are not
        integers.  Ties still resolve to the earliest prefix because equal
        sums do not replace the incumbent.
        """
        best_p = 0
        best_sum = float("-inf")
        running = 0.0
        for k, mv in enumerate(self._moves, start=1):
            running += mv.immediate_gain
            if running > best_sum:
                best_sum = running
                best_p = k
        if not self._moves:
            return 0, 0.0
        if best_sum <= 0:
            return 0, best_sum
        return best_p, best_sum

    def kept_moves(self) -> List[MoveRecord]:
        """The moves inside the best prefix (the ones actually made)."""
        p, _ = self.best_prefix()
        return self._moves[:p]

    def rolled_back_moves(self) -> List[MoveRecord]:
        """The moves beyond the best prefix (to be undone, last first)."""
        p, _ = self.best_prefix()
        return self._moves[p:]
