"""Core data structures: AVL tree, FM gain buckets, pass journal."""

from .avl import AVLTree
from .bucket_list import BucketList
from .gain_container import (
    BucketGainContainer,
    GainContainer,
    TreeGainContainer,
)
from .prefix import MoveRecord, PassJournal

__all__ = [
    "AVLTree",
    "BucketList",
    "GainContainer",
    "TreeGainContainer",
    "BucketGainContainer",
    "PassJournal",
    "MoveRecord",
]
