"""Core data structures: AVL tree, FM gain buckets, heap, pass journal."""

from .avl import AVLTree
from .bucket_list import BucketList
from .gain_container import (
    BucketGainContainer,
    GainContainer,
    TreeGainContainer,
)
from .heap import AddressablePriorityQueue
from .prefix import MoveRecord, PassJournal

__all__ = [
    "AVLTree",
    "AddressablePriorityQueue",
    "BucketList",
    "GainContainer",
    "TreeGainContainer",
    "BucketGainContainer",
    "PassJournal",
    "MoveRecord",
]
