"""Uniform interface over the two gain containers used by the partitioners.

The iterative partitioners (FM, LA, PROP) need, per side of the partition, a
collection of free nodes ordered by gain, supporting best-node queries and
gain updates.  Two realizations exist:

* :class:`BucketGainContainer` — FM's O(1) bucket array; integer gains only
  (unit net costs).
* :class:`TreeGainContainer` — AVL tree keyed by ``(gain, node)``; works for
  float gains (PROP), weighted-net integer gains (FM-tree) and
  lexicographic gain vectors (LA).

Ties are broken deterministically: the tree container prefers the higher
node id among equal gains, the bucket container is LIFO within a bucket.
Determinism matters because every experiment is seeded end-to-end.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Iterator, List, Tuple

from .avl import AVLTree
from .bucket_list import BucketList


class GainContainer(ABC):
    """Ordered collection of (node, gain) pairs with updates."""

    __slots__ = ()

    @abstractmethod
    def insert(self, node: int, gain: Any) -> None:
        """Add ``node`` with ``gain`` (node must be absent)."""

    @abstractmethod
    def remove(self, node: int) -> Any:
        """Remove ``node``; returns its gain (KeyError if absent)."""

    @abstractmethod
    def update(self, node: int, gain: Any) -> None:
        """Change the gain of ``node`` (must be present)."""

    @abstractmethod
    def gain_of(self, node: int) -> Any:
        """Current gain of ``node`` (KeyError if absent)."""

    @abstractmethod
    def peek_best(self) -> Tuple[int, Any]:
        """(node, gain) with the best gain (KeyError when empty)."""

    @abstractmethod
    def iter_descending(self) -> Iterator[Tuple[int, Any]]:
        """(node, gain) pairs from best to worst gain."""

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __contains__(self, node: int) -> bool: ...

    def __bool__(self) -> bool:
        return len(self) > 0

    def top(self, k: int) -> List[Tuple[int, Any]]:
        """The best ``k`` (node, gain) pairs (fewer if the container is small).

        Used for the paper's Sec. 3.4 "update the gains of a few, say five,
        of the top ranked nodes in each subset" step.
        """
        out: List[Tuple[int, Any]] = []
        if k <= 0:
            return out
        for item in self.iter_descending():
            out.append(item)
            if len(out) >= k:
                break
        return out


class TreeGainContainer(GainContainer):
    """AVL-tree gain container; the paper's choice for PROP (Sec. 3.5)."""

    __slots__ = ("_tree", "_gains")

    def __init__(self) -> None:
        self._tree = AVLTree()
        self._gains: Dict[int, Any] = {}

    def insert(self, node: int, gain: Any) -> None:
        if node in self._gains:
            raise KeyError(f"node {node} already present")
        self._tree.insert((gain, node))
        self._gains[node] = gain

    def remove(self, node: int) -> Any:
        try:
            gain = self._gains.pop(node)
        except KeyError:
            raise KeyError(f"node {node} not present") from None
        self._tree.remove((gain, node))
        return gain

    def update(self, node: int, gain: Any) -> None:
        old = self.remove(node)
        try:
            self.insert(node, gain)
        except Exception:  # pragma: no cover - defensive reinsertion
            self.insert(node, old)
            raise

    def gain_of(self, node: int) -> Any:
        return self._gains[node]

    def peek_best(self) -> Tuple[int, Any]:
        (gain, node), _ = self._tree.max_item()
        return node, gain

    def iter_descending(self) -> Iterator[Tuple[int, Any]]:
        for (gain, node), _ in self._tree.iter_descending():
            yield node, gain

    def __len__(self) -> int:
        return len(self._gains)

    def __contains__(self, node: int) -> bool:
        return node in self._gains


class BucketGainContainer(GainContainer):
    """FM bucket-array gain container; integer gains in a bounded range."""

    __slots__ = ("_buckets",)

    def __init__(self, capacity: int, max_gain: int) -> None:
        self._buckets = BucketList(capacity, max_gain)

    def insert(self, node: int, gain: int) -> None:
        self._buckets.insert(node, gain)

    def remove(self, node: int) -> int:
        return self._buckets.remove(node)

    def update(self, node: int, gain: int) -> None:
        self._buckets.update(node, gain)

    def adjust(self, node: int, delta: int) -> None:
        """Shift gain by ``delta`` — FM's natural ±1 update."""
        self._buckets.adjust(node, delta)

    def gain_of(self, node: int) -> int:
        return self._buckets.gain_of(node)

    def peek_best(self) -> Tuple[int, int]:
        return self._buckets.peek_best()

    def iter_descending(self) -> Iterator[Tuple[int, int]]:
        return self._buckets.iter_descending()

    def __len__(self) -> int:
        return len(self._buckets)

    def __contains__(self, node: int) -> bool:
        return node in self._buckets
