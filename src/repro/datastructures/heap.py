"""Addressable max-priority queue with float priorities.

The FM gain containers (:mod:`repro.datastructures.bucket_list`) need
bounded *integer* gains; the n-level coarsening engine
(:mod:`repro.multilevel.nlevel`) rates vertex pairs with *float*
heavy-edge scores that have no useful bound.  This queue fills that gap:
a binary heap with lazy deletion, addressable by item, whose pop order
is a **pure function of its current contents** — entries are compared as
``(-priority, item)`` tuples, a strict total order, so two queues
holding the same ``{item: (priority, payload)}`` mapping pop the same
sequence regardless of the order the entries were pushed or updated in.
That property is what makes a resumed coarsening (rebuild the queue from
replayed state) bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple


class AddressablePriorityQueue:
    """Max-priority queue over hashable items with O(log n) updates.

    ``push`` inserts or re-prioritizes an item; stale heap entries are
    skipped on ``pop`` by checking them against the live ``{item:
    (priority, payload)}`` map (lazy deletion — the standard heapq
    idiom).  Ties on priority break toward the *smallest* item, so pop
    order is deterministic for any insertion history.
    """

    __slots__ = ("_heap", "_live")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, Any, Any]] = []
        self._live: Dict[Any, Tuple[float, Any]] = {}

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, item: Any) -> bool:
        return item in self._live

    def priority(self, item: Any) -> float:
        """Current priority of ``item`` (KeyError when absent)."""
        return self._live[item][0]

    def payload(self, item: Any) -> Any:
        """Current payload of ``item`` (KeyError when absent)."""
        return self._live[item][1]

    def push(self, item: Any, priority: float, payload: Any = None) -> None:
        """Insert ``item`` or update its priority/payload."""
        current = self._live.get(item)
        if current is not None and current == (priority, payload):
            return  # identical entry already live; skip the heap churn
        self._live[item] = (priority, payload)
        heapq.heappush(self._heap, (-priority, item, payload))

    def discard(self, item: Any) -> None:
        """Remove ``item`` if present (its heap entries go stale)."""
        self._live.pop(item, None)

    def pop(self) -> Optional[Tuple[Any, float, Any]]:
        """Remove and return ``(item, priority, payload)`` of the max
        entry, or None when empty.  Skips stale entries."""
        heap = self._heap
        live = self._live
        while heap:
            neg, item, payload = heapq.heappop(heap)
            current = live.get(item)
            if current is not None and current == (-neg, payload):
                del live[item]
                return item, -neg, payload
        return None

    def peek(self) -> Optional[Tuple[Any, float, Any]]:
        """The max entry without removing it, or None when empty."""
        heap = self._heap
        live = self._live
        while heap:
            neg, item, payload = heap[0]
            current = live.get(item)
            if current is not None and current == (-neg, payload):
                return item, -neg, payload
            heapq.heappop(heap)
        return None
