"""Self-balancing AVL tree.

The paper (Sec. 3.5) stores nodes "according to their gains, in a balanced
binary AVL tree", giving Θ(log n) best-node selection and Θ(log n)
delete/reinsert per gain update.  This module provides a general ordered-map
AVL tree over arbitrary comparable keys; the gain containers build on it with
``(gain, node_id)`` (or ``(gain_vector, node_id)`` for LA) keys.

Supported operations (all O(log n) except iteration):

* ``insert(key, value)`` / ``remove(key)`` / ``find(key)``
* ``max_item()`` / ``min_item()``
* ``iter_descending()`` / ``iter_ascending()`` (lazy)
* ``__len__``, ``__contains__``
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple


class _AVLNode:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: Any, value: Any) -> None:
        self.key = key
        self.value = value
        self.left: Optional["_AVLNode"] = None
        self.right: Optional["_AVLNode"] = None
        self.height = 1


def _height(node: Optional[_AVLNode]) -> int:
    return node.height if node is not None else 0


def _update(node: _AVLNode) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _AVLNode) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(y: _AVLNode) -> _AVLNode:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _AVLNode) -> _AVLNode:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(node: _AVLNode) -> _AVLNode:
    _update(node)
    bf = _balance_factor(node)
    if bf > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if bf < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AVLTree:
    """Ordered map on comparable keys, balanced as an AVL tree."""

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root: Optional[_AVLNode] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Any) -> bool:
        return self._find_node(key) is not None

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _find_node(self, key: Any) -> Optional[_AVLNode]:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node
        return None

    def find(self, key: Any, default: Any = None) -> Any:
        """Value stored at ``key``, or ``default``."""
        node = self._find_node(key)
        return node.value if node is not None else default

    def max_item(self) -> Tuple[Any, Any]:
        """(key, value) with the largest key.  Raises KeyError when empty."""
        node = self._root
        if node is None:
            raise KeyError("max_item() on empty AVLTree")
        while node.right is not None:
            node = node.right
        return node.key, node.value

    def min_item(self) -> Tuple[Any, Any]:
        """(key, value) with the smallest key.  Raises KeyError when empty."""
        node = self._root
        if node is None:
            raise KeyError("min_item() on empty AVLTree")
        while node.left is not None:
            node = node.left
        return node.key, node.value

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any = None) -> None:
        """Insert ``key``; raises KeyError if the key already exists."""
        self._root = self._insert(self._root, key, value)
        self._size += 1

    def _insert(
        self, node: Optional[_AVLNode], key: Any, value: Any
    ) -> _AVLNode:
        if node is None:
            return _AVLNode(key, value)
        if key < node.key:
            node.left = self._insert(node.left, key, value)
        elif node.key < key:
            node.right = self._insert(node.right, key, value)
        else:
            raise KeyError(f"duplicate key {key!r}")
        return _rebalance(node)

    # ------------------------------------------------------------------
    # Remove
    # ------------------------------------------------------------------
    def remove(self, key: Any) -> Any:
        """Remove ``key`` and return its value; KeyError if absent."""
        self._root, value, removed = self._remove(self._root, key)
        if not removed:
            raise KeyError(f"key {key!r} not in AVLTree")
        self._size -= 1
        return value

    def _remove(
        self, node: Optional[_AVLNode], key: Any
    ) -> Tuple[Optional[_AVLNode], Any, bool]:
        if node is None:
            return None, None, False
        if key < node.key:
            node.left, value, removed = self._remove(node.left, key)
        elif node.key < key:
            node.right, value, removed = self._remove(node.right, key)
        else:
            value, removed = node.value, True
            if node.left is None:
                return node.right, value, True
            if node.right is None:
                return node.left, value, True
            # Two children: replace with in-order successor.
            succ = node.right
            while succ.left is not None:
                succ = succ.left
            node.key, node.value = succ.key, succ.value
            node.right, _, _ = self._remove(node.right, succ.key)
        if not removed:
            return node, None, False
        return _rebalance(node), value, True

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def iter_descending(self) -> Iterator[Tuple[Any, Any]]:
        """Lazy (key, value) iteration from largest to smallest key."""
        stack: List[_AVLNode] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.right
            node = stack.pop()
            yield node.key, node.value
            node = node.left

    def iter_ascending(self) -> Iterator[Tuple[Any, Any]]:
        """Lazy (key, value) iteration from smallest to largest key."""
        stack: List[_AVLNode] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    # ------------------------------------------------------------------
    # Invariant checking (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if AVL/BST invariants are violated."""

        def recurse(node: Optional[_AVLNode]) -> Tuple[int, int]:
            if node is None:
                return 0, 0
            lh, lc = recurse(node.left)
            rh, rc = recurse(node.right)
            assert node.height == 1 + max(lh, rh), "stale height"
            assert abs(lh - rh) <= 1, "AVL balance violated"
            if node.left is not None:
                assert node.left.key < node.key, "BST order violated"
            if node.right is not None:
                assert node.key < node.right.key, "BST order violated"
            return node.height, lc + rc + 1

        _, count = recurse(self._root)
        assert count == self._size, "size mismatch"
