"""Zero-overhead-when-off observability for the pass engines.

The PROP/FM/LA pass loops (and the multi-run harness above them) accept
a ``recorder`` implementing the :class:`Recorder` protocol and narrate
each run as typed events: timing spans per pass phase, per-move events
(selection key vs. realized gain — the successor of the old
``MoveObserver`` callbacks), per-pass operation counters, and pass/run
lifecycle markers.

Guarantees:

* **off by default, free when off** — without a recorder (or with
  :class:`NullRecorder`) the engines skip all event emission behind a
  single identity check; the CI smoke job bounds the residual overhead
  below 2%;
* **behavior-neutral** — a recorded run makes bit-identical moves and
  cuts to an unrecorded one; a trace's per-pass cut trajectory equals
  ``BipartitionResult.pass_cuts`` exactly;
* **always-on phase timing** — per-phase wall-clock seconds land in
  ``BipartitionResult.stats`` (:data:`PHASE_STAT_KEYS`) on every run,
  recorder or not, and from there flow into cache records, engine run
  journals, :class:`~repro.multirun.MultiRunResult` and sweep points.

See ``docs/observability.md`` for the trace schema and CLI usage
(``repro trace summarize``).
"""

from .events import (
    ENSEMBLE_COUNTER_KEYS,
    GUARD_COUNTER_KEYS,
    MoveEvent,
    PassCounters,
    PassEvent,
    PHASE_STAT_KEYS,
    SpanEvent,
    collect_phase_seconds,
)
from .recorder import (
    NULL_RECORDER,
    CallbackRecorder,
    MemoryRecorder,
    NullRecorder,
    Recorder,
    TraceRecorder,
    resolve_recorder,
)
from .summary import (
    AlgorithmTrace,
    JournalGroup,
    JournalSummary,
    TraceSummary,
    summarize_path,
    summarize_run_journal,
    summarize_trace,
)

__all__ = [
    "PHASE_STAT_KEYS",
    "GUARD_COUNTER_KEYS",
    "ENSEMBLE_COUNTER_KEYS",
    "MoveEvent",
    "SpanEvent",
    "PassEvent",
    "PassCounters",
    "collect_phase_seconds",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MemoryRecorder",
    "TraceRecorder",
    "CallbackRecorder",
    "resolve_recorder",
    "AlgorithmTrace",
    "TraceSummary",
    "JournalGroup",
    "JournalSummary",
    "summarize_trace",
    "summarize_run_journal",
    "summarize_path",
]
