"""Summarize telemetry trace files and engine run journals.

Two JSONL dialects carry per-run observability data:

* **telemetry traces** written by
  :class:`~repro.telemetry.recorder.TraceRecorder` — every line has an
  ``event`` field (``run_start``/``span``/``move``/``counters``/
  ``pass_end``/``run_end``);
* **engine run journals** written by :class:`repro.engine.RunJournal` —
  every line has a ``type`` field (``header``/``unit``) and an embedded
  sha256 checksum.

:func:`summarize_path` sniffs the dialect from the first parseable line
and dispatches to :func:`summarize_trace` or
:func:`summarize_run_journal`; both return objects with a
``format_text()`` renderer, which is what the ``repro trace summarize``
CLI subcommand prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from ..engine.journal import iter_journal_records
from .events import collect_phase_seconds


def _fmt_seconds(seconds: float) -> str:
    """Compact human-readable seconds (µs–s range)."""
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def _phase_lines(phase_seconds: Dict[str, float], indent: str) -> List[str]:
    """Render a phase-seconds dict as aligned ``name: time`` lines."""
    lines = []
    total = sum(phase_seconds.values())
    for name, seconds in sorted(
        phase_seconds.items(), key=lambda kv: -kv[1]
    ):
        share = f" ({seconds / total:.0%})" if total > 0 else ""
        lines.append(f"{indent}{name:<22s} {_fmt_seconds(seconds)}{share}")
    return lines


@dataclass
class AlgorithmTrace:
    """Aggregate of every traced run of one algorithm."""

    algorithm: str
    runs: int = 0
    passes: int = 0
    moves: int = 0
    runtime_seconds: float = 0.0
    cuts: List[float] = field(default_factory=list)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def best_cut(self) -> float:
        """Smallest final cut over the traced runs (``nan`` when none)."""
        return min(self.cuts) if self.cuts else float("nan")

    @property
    def mean_cut(self) -> float:
        """Mean final cut over the traced runs (``nan`` when none)."""
        return sum(self.cuts) / len(self.cuts) if self.cuts else float("nan")


@dataclass
class TraceSummary:
    """Per-algorithm rollup of one :class:`TraceRecorder` file."""

    path: str
    events: int = 0
    runs: int = 0
    algorithms: Dict[str, AlgorithmTrace] = field(default_factory=dict)

    def format_text(self) -> str:
        """Human-readable multi-line report."""
        lines = [f"{self.path}: {self.events} event(s), {self.runs} run(s)"]
        for name in sorted(self.algorithms):
            agg = self.algorithms[name]
            lines.append(
                f"  {name}: {agg.runs} run(s), {agg.passes} pass(es), "
                f"{agg.moves} tentative move(s), best cut {agg.best_cut:g}, "
                f"mean {agg.mean_cut:.1f}, "
                f"{_fmt_seconds(agg.runtime_seconds)} runtime"
            )
            lines.extend(_phase_lines(agg.phase_seconds, "    "))
            for counter in sorted(agg.counters):
                lines.append(f"    {counter:<22s} {agg.counters[counter]}")
        return "\n".join(lines)


#: ``span`` event names → the ``stats`` phase keys they aggregate under.
_SPAN_TO_PHASE = {
    "bootstrap": "bootstrap_seconds",
    "refine": "refine_seconds",
    "gain_init": "gain_init_seconds",
    "move_loop": "move_loop_seconds",
    "rollback": "rollback_seconds",
}


def summarize_trace(path: str) -> TraceSummary:
    """Aggregate a :class:`TraceRecorder` JSONL file per algorithm.

    Unparseable lines (a torn tail after a crash) are skipped, matching
    the tolerance of the engine's journal reader.
    """
    summary = TraceSummary(path=str(path))
    run_algorithm: Dict[int, str] = {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if not isinstance(event, dict) or "event" not in event:
                continue
            summary.events += 1
            kind = event["event"]
            run = event.get("run", 0)
            if kind == "run_start":
                summary.runs += 1
                name = str(event.get("algorithm", "?"))
                run_algorithm[run] = name
                agg = summary.algorithms.setdefault(
                    name, AlgorithmTrace(algorithm=name)
                )
                agg.runs += 1
                continue
            name = run_algorithm.get(run, "?")
            agg = summary.algorithms.setdefault(
                name, AlgorithmTrace(algorithm=name)
            )
            if kind == "span":
                key = _SPAN_TO_PHASE.get(
                    str(event.get("name", "")), str(event.get("name", ""))
                )
                agg.phase_seconds[key] = (
                    agg.phase_seconds.get(key, 0.0)
                    + float(event.get("seconds", 0.0))
                )
            elif kind == "counters":
                for counter, value in dict(event.get("counts", {})).items():
                    agg.counters[counter] = (
                        agg.counters.get(counter, 0) + int(value)
                    )
            elif kind == "pass_end":
                agg.passes += 1
                agg.moves += int(event.get("moves", 0))
            elif kind == "run_end":
                agg.cuts.append(float(event.get("cut", 0.0)))
                agg.runtime_seconds += float(
                    event.get("runtime_seconds", 0.0)
                )
    return summary


@dataclass
class JournalGroup:
    """Aggregate of one algorithm's units inside a run journal."""

    algorithm: str
    units: int = 0
    seconds: float = 0.0
    cuts: List[float] = field(default_factory=list)
    sources: Dict[str, int] = field(default_factory=dict)
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def best_cut(self) -> float:
        """Smallest recorded cut in the group (``nan`` when empty)."""
        return min(self.cuts) if self.cuts else float("nan")


@dataclass
class JournalSummary:
    """Per-algorithm rollup of one engine run journal."""

    path: str
    run_id: str = ""
    version: str = ""
    units_expected: int = 0
    units_recorded: int = 0
    groups: Dict[str, JournalGroup] = field(default_factory=dict)

    def format_text(self) -> str:
        """Human-readable multi-line report."""
        head = f"{self.path}: run {self.run_id or '?'}"
        if self.version:
            head += f" (v{self.version})"
        head += f", {self.units_recorded}/{self.units_expected} unit(s)"
        lines = [head]
        for name in sorted(self.groups):
            group = self.groups[name]
            sources = ", ".join(
                f"{n} {src}" for src, n in sorted(group.sources.items())
            )
            lines.append(
                f"  {name}: {group.units} unit(s), best cut "
                f"{group.best_cut:g}, {_fmt_seconds(group.seconds)} compute"
                + (f" [{sources}]" if sources else "")
            )
            lines.extend(_phase_lines(group.phase_seconds, "    "))
        return "\n".join(lines)


def summarize_run_journal(path: str) -> JournalSummary:
    """Aggregate an engine run journal per algorithm.

    Uses the same checksum-verifying reader as engine resume
    (:func:`repro.engine.journal.iter_journal_records`), so corrupt or
    torn lines are excluded rather than miscounted.  Phase timings come
    from each unit's persisted ``stats`` — the path by which telemetry
    reaches pooled workers that cannot carry a live recorder.
    """
    summary = JournalSummary(path=str(path))
    for record in iter_journal_records(path):
        if record.get("type") == "header":
            summary.run_id = str(record.get("run_id", ""))
            summary.version = str(record.get("version", ""))
            summary.units_expected = int(record.get("units", 0))
            continue
        if record.get("type") != "unit":
            continue
        summary.units_recorded += 1
        name = str(record.get("algorithm", "?"))
        group = summary.groups.setdefault(name, JournalGroup(algorithm=name))
        group.units += 1
        group.seconds += float(record.get("seconds", 0.0))
        cut = record.get("cut")
        if isinstance(cut, (int, float)):
            group.cuts.append(float(cut))
        source = str(record.get("source", "?"))
        group.sources[source] = group.sources.get(source, 0) + 1
        stats = record.get("stats")
        if isinstance(stats, dict):
            for key, seconds in collect_phase_seconds(stats).items():
                group.phase_seconds[key] = (
                    group.phase_seconds.get(key, 0.0) + seconds
                )
    return summary


def summarize_path(path: str):
    """Summarize ``path``, sniffing its dialect from the first line.

    Returns a :class:`TraceSummary` for telemetry traces or a
    :class:`JournalSummary` for engine run journals; raises
    ``ValueError`` when the file matches neither.
    """
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                first = json.loads(line)
            except ValueError:
                continue
            if isinstance(first, dict):
                if "event" in first:
                    return summarize_trace(path)
                if "type" in first:
                    return summarize_run_journal(path)
            break
    raise ValueError(
        f"{path}: neither a telemetry trace nor a run journal "
        "(no 'event'/'type' field on the first JSON line)"
    )
