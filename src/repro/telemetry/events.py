"""Telemetry event vocabulary: spans, per-move events, pass counters.

The pass engines (PROP, FM, LA — see :mod:`repro.core.engine`,
:mod:`repro.baselines.fm`, :mod:`repro.baselines.la`) describe each run
as a stream of typed events delivered to a
:class:`~repro.telemetry.recorder.Recorder`:

* **spans** — wall-clock phases of a pass (``bootstrap``, ``refine``,
  ``gain_init``, ``move_loop``, ``rollback``), each reported once per
  pass with its measured seconds;
* **moves** — one event per tentative move, carrying the selection key
  the node was chosen by (probabilistic gain for PROP, Eqn-1 gain for
  FM, the lookahead vector for LA) and the realized immediate cut gain;
* **counters** — per-pass operation counts (:class:`PassCounters`):
  container updates, probability refreshes, neighbor/top-k refreshes,
  cached-strategy delta statistics;
* **pass/run lifecycle** — pass boundaries with the post-rollback cut
  (the trace twin of ``BipartitionResult.pass_cuts``) and run boundaries
  with the final stats.

Phase seconds also flow into ``BipartitionResult.stats`` under the
:data:`PHASE_STAT_KEYS` names, whether or not a recorder is attached, so
aggregation (:func:`collect_phase_seconds`) works on cached results, run
journals and multi-run aggregates alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping

#: ``BipartitionResult.stats`` keys holding per-phase wall-clock seconds.
#: ``bootstrap``/``refine`` are PROP-only (Fig. 2 steps 3-4); ``gain_init``
#: is the FM/LA container build; ``audit_seconds`` is the time spent in
#: :mod:`repro.audit` hooks (excluded from ``runtime_seconds``).
PHASE_STAT_KEYS = (
    "bootstrap_seconds",
    "refine_seconds",
    "gain_init_seconds",
    "move_loop_seconds",
    "rollback_seconds",
    "audit_seconds",
    # n-level engine phases (repro.multilevel.uncoarsen): PQ coarsening,
    # batched region-local refinement, interleaved full stage refines.
    "coarsen_seconds",
    "uncoarsen_seconds",
    "local_refine_seconds",
    "stage_refine_seconds",
)

#: Guard-layer counters surfaced by the service's ``/v1/stats`` payload
#: (``guard`` section) and recorded into quarantine diagnostics bundles.
#: ``shed_*`` counts 429 rejections by exhausted limit; the rest count
#: deadline expiries and quarantine breaker trips.
GUARD_COUNTER_KEYS = (
    "shed_queue_depth",
    "shed_tenant_inflight",
    "shed_memory",
    "deadline_expired",
    "quarantine_trips",
)

#: Ensemble-layer counters emitted by
#: :func:`repro.analysis.ensembles.ensemble_solve` through the standard
#: ``Recorder.counters`` hook (pass index ``-1``: batch scope).
#: ``ensemble_runs_used``/``ensemble_runs_saved`` account the restart
#: budget; exactly one ``ensemble_stop_<reason>`` key (reason as in
#: :data:`repro.analysis.ensembles.STOP_REASONS`, plus ``interrupted``)
#: increments per batch.
ENSEMBLE_COUNTER_KEYS = (
    "ensemble_runs_used",
    "ensemble_runs_saved",
    "ensemble_stop_converged",
    "ensemble_stop_target_reached",
    "ensemble_stop_budget_exhausted",
    "ensemble_stop_time_exhausted",
    "ensemble_stop_interrupted",
)


def collect_phase_seconds(stats: Mapping[str, Any]) -> Dict[str, float]:
    """The per-phase timing entries of one result's ``stats`` dict.

    Returns ``{phase_key: seconds}`` restricted to :data:`PHASE_STAT_KEYS`
    (absent keys are simply omitted, so pre-telemetry records aggregate
    to an empty dict instead of raising).
    """
    out: Dict[str, float] = {}
    for key in PHASE_STAT_KEYS:
        value = stats.get(key)
        if isinstance(value, (int, float)):
            out[key] = float(value)
    return out


@dataclass(frozen=True)
class MoveEvent:
    """One tentative move as observed by a recorder.

    ``selection_key`` is whatever ordered key the engine picked the node
    by — a float gain for PROP/FM, a tuple gain vector for LA —
    ``immediate_gain`` the realized cut delta of the move.
    """

    pass_index: int
    move_index: int
    node: int
    from_side: int
    selection_key: Any
    immediate_gain: float


@dataclass(frozen=True)
class SpanEvent:
    """One completed timing span (phase ``name`` of pass ``pass_index``)."""

    pass_index: int
    name: str
    seconds: float


@dataclass(frozen=True)
class PassEvent:
    """End-of-pass summary: post-rollback cut, kept prefix, pass Gmax."""

    pass_index: int
    cut: float
    moves: int
    kept: int
    gmax: float
    seconds: float


class PassCounters:
    """Operation counts accumulated over one pass (cheap int bumps).

    Engines allocate one of these per pass *only when a recorder is
    enabled* and thread it through their update helpers, so the
    zero-overhead-when-off contract holds: with no recorder the hot
    loops see a ``None`` and skip every increment behind a single
    identity check.
    """

    __slots__ = (
        "moves",
        "neighbor_updates",
        "topk_updates",
        "container_updates",
        "probability_refreshes",
        "cache_net_recomputes",
        "cache_entry_deltas",
        "product_cache_hits",
        "product_cache_misses",
        "subrounds",
        "subround_batch_nodes",
        "subround_conflicts",
        "subround_balance_rejects",
        "contractions",
        "ratings_updated",
        "rescued_nodes",
        "uncontract_batches",
    )

    def __init__(self) -> None:
        self.moves = 0
        self.neighbor_updates = 0
        self.topk_updates = 0
        self.container_updates = 0
        self.probability_refreshes = 0
        self.cache_net_recomputes = 0
        self.cache_entry_deltas = 0
        # Incremental numpy engine only (always 0 on the python backend,
        # hence dropped from traces by the as_dict zero filter): nets
        # whose cached side products were reused vs. rescanned during
        # cached-strategy move updates.
        self.product_cache_hits = 0
        self.product_cache_misses = 0
        # Subround kernel only (repro.kernels.subround): batches applied,
        # nodes moved in them, and candidates rejected during selection
        # for net conflicts / balance.
        self.subrounds = 0
        self.subround_batch_nodes = 0
        self.subround_conflicts = 0
        self.subround_balance_rejects = 0
        # n-level coarsening/uncoarsening (repro.multilevel.nlevel /
        # .uncoarsen): contracted pairs, PQ reratings, stranded nodes
        # rescued by sampled-pin ratings, and uncontraction batches.
        self.contractions = 0
        self.ratings_updated = 0
        self.rescued_nodes = 0
        self.uncontract_batches = 0

    def as_dict(self) -> Dict[str, int]:
        """Non-zero counters as a plain dict (compact trace lines)."""
        return {
            name: value
            for name in self.__slots__
            if (value := getattr(self, name))
        }
