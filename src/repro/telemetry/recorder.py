"""Recorders: where pass-engine telemetry events go.

The engines accept any object satisfying the :class:`Recorder` protocol.
Three implementations cover the practical spectrum:

* :class:`NullRecorder` — the default.  ``enabled`` is ``False``, so the
  engines never construct counters or emit events; the only cost of the
  telemetry layer is one ``is not None``/``enabled`` check per run.
* :class:`MemoryRecorder` — accumulates typed events in lists.  The
  in-process consumer API (used by :mod:`repro.analysis.prediction` and
  the test suite).
* :class:`TraceRecorder` — appends one JSON object per event to a JSONL
  file (schema in ``docs/observability.md``); summarize with
  :func:`repro.telemetry.summarize_trace` or ``repro trace summarize``.

Recording is strictly observational: a recorded run makes bit-identical
moves to an unrecorded one (enforced by ``tests/telemetry`` and the CI
telemetry-overhead smoke job).  Recorders are not picklable and do not
cross process boundaries — attach them to in-process runs only (the
engine's pooled workers instead persist phase timings through
``BipartitionResult.stats`` into cache and journal records).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, TextIO, Union

from .events import MoveEvent, PassEvent, SpanEvent


class Recorder:
    """Protocol (and no-op base) for pass-engine telemetry sinks.

    Engines call these hooks in run order::

        run_start -> (pass_start -> span*/move*/counters -> pass_end)* -> run_end

    Every hook has a no-op default so subclasses override only what they
    consume.  ``enabled`` gates the expensive instrumentation: engines
    skip per-move events and counter allocation entirely when it is
    ``False``.
    """

    #: When False, engines bypass all event emission for this recorder.
    enabled: bool = True

    def run_start(
        self,
        algorithm: str,
        seed: Optional[int],
        num_nodes: int,
        num_nets: int,
    ) -> None:
        """A pass engine is starting one run on an n-node/e-net graph."""

    def pass_start(self, pass_index: int) -> None:
        """Tentative-move pass ``pass_index`` (0-based) is starting."""

    def span(self, pass_index: int, name: str, seconds: float) -> None:
        """Phase ``name`` of pass ``pass_index`` took ``seconds``."""

    def move(
        self,
        pass_index: int,
        move_index: int,
        node: int,
        from_side: int,
        selection_key: Any,
        immediate_gain: float,
    ) -> None:
        """One tentative move (selection key vs. realized gain)."""

    def counters(self, pass_index: int, counts: Mapping[str, int]) -> None:
        """Operation counts accumulated over pass ``pass_index``."""

    def pass_end(
        self,
        pass_index: int,
        cut: float,
        moves: int,
        kept: int,
        gmax: float,
        seconds: float,
    ) -> None:
        """Pass finished: post-rollback cut, kept prefix, pass Gmax."""

    def run_end(
        self,
        algorithm: str,
        cut: float,
        passes: int,
        runtime_seconds: float,
        stats: Mapping[str, float],
    ) -> None:
        """The run finished with the given result summary."""

    def close(self) -> None:
        """Release any underlying resources (no-op by default)."""


class NullRecorder(Recorder):
    """The do-nothing default recorder.

    ``enabled`` is ``False``: engines treat an attached ``NullRecorder``
    exactly like no recorder at all, which is what makes the
    zero-overhead-when-off guarantee trivially true (and measurable —
    see ``scripts/telemetry_smoke.py``).
    """

    enabled = False


#: Shared inert instance — attach when an API requires *some* recorder.
NULL_RECORDER = NullRecorder()


class MemoryRecorder(Recorder):
    """Accumulates every event in memory, as typed objects.

    Attributes
    ----------
    runs:
        One ``{"algorithm", "seed", "num_nodes", "num_nets"}`` dict per
        ``run_start``.
    spans / moves / passes:
        :class:`SpanEvent` / :class:`MoveEvent` / :class:`PassEvent`
        lists, in emission order, across all recorded runs.
    counter_totals:
        Per-counter sums over every pass of every run.
    results:
        One ``{"algorithm", "cut", "passes", "runtime_seconds", "stats"}``
        dict per ``run_end``.
    """

    def __init__(self) -> None:
        self.runs: List[Dict[str, Any]] = []
        self.spans: List[SpanEvent] = []
        self.moves: List[MoveEvent] = []
        self.passes: List[PassEvent] = []
        self.counter_totals: Dict[str, int] = {}
        self.results: List[Dict[str, Any]] = []

    def run_start(self, algorithm, seed, num_nodes, num_nets) -> None:
        """Record the run header."""
        self.runs.append({
            "algorithm": algorithm,
            "seed": seed,
            "num_nodes": num_nodes,
            "num_nets": num_nets,
        })

    def span(self, pass_index, name, seconds) -> None:
        """Record one completed phase span."""
        self.spans.append(SpanEvent(pass_index, name, seconds))

    def move(
        self, pass_index, move_index, node, from_side, selection_key,
        immediate_gain,
    ) -> None:
        """Record one tentative move."""
        self.moves.append(MoveEvent(
            pass_index, move_index, node, from_side, selection_key,
            immediate_gain,
        ))

    def counters(self, pass_index, counts) -> None:
        """Fold one pass's counters into the running totals."""
        for name, value in counts.items():
            self.counter_totals[name] = (
                self.counter_totals.get(name, 0) + int(value)
            )

    def pass_end(self, pass_index, cut, moves, kept, gmax, seconds) -> None:
        """Record the end-of-pass summary."""
        self.passes.append(
            PassEvent(pass_index, cut, moves, kept, gmax, seconds)
        )

    def run_end(self, algorithm, cut, passes, runtime_seconds, stats) -> None:
        """Record the run's final summary."""
        self.results.append({
            "algorithm": algorithm,
            "cut": cut,
            "passes": passes,
            "runtime_seconds": runtime_seconds,
            "stats": dict(stats),
        })

    def pass_cuts(self) -> List[float]:
        """Post-rollback cut after each recorded pass (trace twin of
        ``BipartitionResult.pass_cuts``)."""
        return [p.cut for p in self.passes]


def _jsonable(value: Any) -> Any:
    """Reduce a selection key / stat value to a JSON-encodable form."""
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class TraceRecorder(Recorder):
    """Writes the event stream as JSONL (one JSON object per line).

    Every line carries ``event`` (the event type) and ``run`` (a 0-based
    run ordinal, so one trace file can hold a whole multi-run batch).
    The schema is documented in ``docs/observability.md`` and consumed
    by :func:`repro.telemetry.summarize_trace`.

    Parameters
    ----------
    path_or_file:
        Target path (opened lazily, truncated on first write) or an
        already-open text file object (not closed by :meth:`close`).
    """

    def __init__(self, path_or_file: Union[str, TextIO]) -> None:
        self._path: Optional[str] = None
        self._fh: Optional[TextIO] = None
        self._owns_fh = True
        if hasattr(path_or_file, "write"):
            self._fh = path_or_file  # type: ignore[assignment]
            self._owns_fh = False
        else:
            self._path = str(path_or_file)
        self._run = -1

    @property
    def path(self) -> Optional[str]:
        """Target file path (``None`` when wrapping an open file)."""
        return self._path

    def _emit(self, payload: Dict[str, Any]) -> None:
        if self._fh is None:
            assert self._path is not None
            self._fh = open(self._path, "w")
        self._fh.write(json.dumps(payload, separators=(",", ":")) + "\n")

    def run_start(self, algorithm, seed, num_nodes, num_nets) -> None:
        """Open a new run section in the trace."""
        self._run += 1
        self._emit({
            "event": "run_start",
            "run": self._run,
            "algorithm": algorithm,
            "seed": seed,
            "nodes": num_nodes,
            "nets": num_nets,
        })

    def pass_start(self, pass_index) -> None:
        """Mark the start of a pass."""
        self._emit({
            "event": "pass_start", "run": self._run, "pass": pass_index,
        })

    def span(self, pass_index, name, seconds) -> None:
        """Write one completed phase span."""
        self._emit({
            "event": "span",
            "run": self._run,
            "pass": pass_index,
            "name": name,
            "seconds": seconds,
        })

    def move(
        self, pass_index, move_index, node, from_side, selection_key,
        immediate_gain,
    ) -> None:
        """Write one tentative-move event."""
        self._emit({
            "event": "move",
            "run": self._run,
            "pass": pass_index,
            "index": move_index,
            "node": node,
            "side": from_side,
            "selection": _jsonable(selection_key),
            "immediate": immediate_gain,
        })

    def counters(self, pass_index, counts) -> None:
        """Write the pass's operation counters."""
        self._emit({
            "event": "counters",
            "run": self._run,
            "pass": pass_index,
            "counts": {k: int(v) for k, v in counts.items()},
        })

    def pass_end(self, pass_index, cut, moves, kept, gmax, seconds) -> None:
        """Write the end-of-pass summary."""
        self._emit({
            "event": "pass_end",
            "run": self._run,
            "pass": pass_index,
            "cut": cut,
            "moves": moves,
            "kept": kept,
            "gmax": gmax,
            "seconds": seconds,
        })

    def run_end(self, algorithm, cut, passes, runtime_seconds, stats) -> None:
        """Write the run's final summary and flush the file."""
        self._emit({
            "event": "run_end",
            "run": self._run,
            "algorithm": algorithm,
            "cut": cut,
            "passes": passes,
            "runtime_seconds": runtime_seconds,
            "stats": {k: _jsonable(v) for k, v in stats.items()},
        })
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        """Close the underlying file (if this recorder opened it)."""
        if self._fh is not None and self._owns_fh:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceRecorder":
        """Context-manager entry: the recorder itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the trace file."""
        self.close()


class CallbackRecorder(Recorder):
    """Forwards each event to a callback as ``(event, payload)`` pairs.

    The push-stream twin of :class:`TraceRecorder`: payloads are the
    same JSON-ready dicts a trace line would carry (minus the file),
    delivered synchronously to ``callback(event_name, payload)`` as the
    engines emit them.  This is the bridge between pass-engine
    telemetry and live consumers — the service layer's server-sent
    event feed (:mod:`repro.service.sse`) is built on it.

    Parameters
    ----------
    callback:
        Called once per event.  Exceptions propagate to the engine —
        callbacks that talk to unreliable sinks should guard themselves.
    events:
        Optional allow-list of event names (``run_start``, ``pass_start``,
        ``span``, ``move``, ``counters``, ``pass_end``, ``run_end``).
        ``None`` forwards everything.  Per-move events dominate volume;
        streaming consumers usually exclude them.
    """

    def __init__(
        self,
        callback,
        events: Optional[Any] = None,
    ) -> None:
        self._callback = callback
        self._events = None if events is None else frozenset(events)
        self._run = -1

    def _emit(self, event: str, payload: Dict[str, Any]) -> None:
        if self._events is None or event in self._events:
            self._callback(event, payload)

    def run_start(self, algorithm, seed, num_nodes, num_nets) -> None:
        """Forward the run header (advances the run ordinal)."""
        self._run += 1
        self._emit("run_start", {
            "run": self._run, "algorithm": algorithm, "seed": seed,
            "nodes": num_nodes, "nets": num_nets,
        })

    def pass_start(self, pass_index) -> None:
        """Forward the start of a pass."""
        self._emit("pass_start", {"run": self._run, "pass": pass_index})

    def span(self, pass_index, name, seconds) -> None:
        """Forward one completed phase span."""
        self._emit("span", {
            "run": self._run, "pass": pass_index, "name": name,
            "seconds": seconds,
        })

    def move(
        self, pass_index, move_index, node, from_side, selection_key,
        immediate_gain,
    ) -> None:
        """Forward one tentative-move event."""
        self._emit("move", {
            "run": self._run, "pass": pass_index, "index": move_index,
            "node": node, "side": from_side,
            "selection": _jsonable(selection_key),
            "immediate": immediate_gain,
        })

    def counters(self, pass_index, counts) -> None:
        """Forward the pass's operation counters."""
        self._emit("counters", {
            "run": self._run, "pass": pass_index,
            "counts": {k: int(v) for k, v in counts.items()},
        })

    def pass_end(self, pass_index, cut, moves, kept, gmax, seconds) -> None:
        """Forward the end-of-pass summary."""
        self._emit("pass_end", {
            "run": self._run, "pass": pass_index, "cut": cut,
            "moves": moves, "kept": kept, "gmax": gmax, "seconds": seconds,
        })

    def run_end(self, algorithm, cut, passes, runtime_seconds, stats) -> None:
        """Forward the run's final summary."""
        self._emit("run_end", {
            "run": self._run, "algorithm": algorithm, "cut": cut,
            "passes": passes, "runtime_seconds": runtime_seconds,
            "stats": {k: _jsonable(v) for k, v in stats.items()},
        })


def resolve_recorder(recorder: Optional[Recorder]) -> Optional[Recorder]:
    """The engines' gate: an *enabled* recorder, or ``None``.

    Collapses both "no recorder" and "disabled recorder" (e.g.
    :class:`NullRecorder`) to ``None`` so hot loops guard on a single
    identity check.
    """
    if recorder is not None and recorder.enabled:
        return recorder
    return None
