"""Probabilistic node gains — paper Sec. 3.1, Eqns. (2)–(6).

Every node ``u`` carries a probability ``p(u)`` of actually being moved in
the current pass; locked nodes have ``p = 0``.  With that convention the
paper's four gain equations collapse into a single rule (derivation in
DESIGN.md, decision 1).  For a *free* node ``u`` on side ``s`` and a net
``nt`` with cost ``c``:

* ``A = (nt ∩ side s) − {u}``, ``B = nt ∩ other side``
* ``prodA = Π p(x), x ∈ A`` and ``prodB = Π p(y), y ∈ B``
  (empty products are 1; any locked member forces the product to 0)
* if ``B`` is non-empty (net in the cutset):  ``g = c · (prodA − prodB)``
  — Eqn. (3), and its locked specializations Eqns. (5)/(6);
* if ``B`` is empty (net internal to ``s``):  ``g = c · (prodA − 1)``
  — Eqn. (4), ``−c·(1 − p(n^{1→2}|u))``.

``prodA`` is the probability that every other same-side pin leaves (the net
gets pulled out of the cut — or stays out, for an internal net, when ``u``
leaves); ``prodB`` is the probability the *other* side would have emptied
on its own, an option that moving ``u`` forecloses (the negative term of
Eqn. (2)).

The total gain of ``u`` is the sum over its nets: ``g(u) = Σ g_nt(u)``.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence, Tuple

from ..partition import Partition

#: Underflow guard for the ``prod_mine / p(u)`` conditional-product recovery
#: (Eqns. 3/5): dividing is exact to 1/2 ulp only while the full product is a
#: *normal* float.  Below ``sys.float_info.min`` (≈2.2e-308) the product has
#: already lost mantissa bits to gradual underflow — e.g. a 780-pin net at
#: ``pmin = 0.4`` — and the quotient can be pure noise, so the engines fall
#: back to the exact sequential recompute instead.  A product of exactly 0.0
#: also takes the recompute branch, which short-circuits in O(1) when the
#: zero is structural (a locked pin on the side).
DIV_SAFE_MIN = sys.float_info.min


class ProbabilisticGainEngine:
    """Computes probabilistic gains over a :class:`Partition`.

    The engine owns the probability vector ``p`` (indexed by node).  Locked
    nodes must have ``p = 0`` — :meth:`set_probability` and
    :meth:`on_lock` maintain this; gains read locks straight from the
    partition, so the two views can never drift apart.

    :attr:`probability_writes` counts probability-vector refreshes
    (``set_probability`` calls, plus one ``fill`` per pass bootstrap);
    the telemetry layer reports its per-pass delta as the
    ``probability_refreshes`` counter.
    """

    __slots__ = ("partition", "p", "probability_writes", "underflow_recomputes")

    #: Backend identifier reported in run stats; the numpy subclass
    #: (:class:`repro.kernels.NumpyGainEngine`) overrides this.
    kernel_name = "python"

    def __init__(
        self,
        partition: Partition,
        probabilities: Optional[Sequence[float]] = None,
    ) -> None:
        self.partition = partition
        n = partition.graph.num_nodes
        if probabilities is None:
            self.p: List[float] = [0.0] * n
        else:
            if len(probabilities) != n:
                raise ValueError(
                    f"probabilities has length {len(probabilities)}, expected {n}"
                )
            self.p = [float(x) for x in probabilities]
        for v in range(n):
            if partition.is_locked(v):
                self.p[v] = 0.0
        #: Running count of probability-vector refreshes (telemetry).
        self.probability_writes = 0
        #: How often a side product underflowed below :data:`DIV_SAFE_MIN`
        #: and forced the exact recompute branch (run-level stat).
        self.underflow_recomputes = 0

    # ------------------------------------------------------------------
    # Probability maintenance
    # ------------------------------------------------------------------
    def set_probability(self, node: int, value: float) -> None:
        """Set ``p(node)``; rejects non-zero values for locked nodes."""
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"probability {value} outside [0, 1]")
        if value and self.partition.is_locked(node):
            raise ValueError(f"node {node} is locked; its probability must be 0")
        self.p[node] = value
        self.probability_writes += 1

    def fill(self, value: float) -> None:
        """Set every *free* node's probability to ``value``."""
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"probability {value} outside [0, 1]")
        part = self.partition
        for v in range(len(self.p)):
            self.p[v] = 0.0 if part.is_locked(v) else value
        self.probability_writes += 1

    def on_lock(self, node: int) -> None:
        """Record that ``node`` was just locked (its p drops to 0)."""
        self.p[node] = 0.0

    # ------------------------------------------------------------------
    # Net-level probabilities (the p(n^{1→2}) quantities of Sec. 3.1)
    # ------------------------------------------------------------------
    def net_clearing_probability(
        self, net_id: int, side: int, exclude: Optional[int] = None
    ) -> float:
        """Probability that all pins of ``net_id`` on ``side`` move away.

        This is the paper's ``p(n^{1→2})`` (for side = 1 in its notation):
        the product of the probabilities of the side's pins, which is 0 as
        soon as any of them is locked there.  ``exclude`` omits one free
        node from the product (conditioning on that node's own move, the
        ``| u`` in Eqns. (3)/(5)).
        """
        part = self.partition
        if part.net_locked_in(net_id, side):
            # A locked pin can never leave; the locked node also has p = 0,
            # but short-circuiting avoids a useless multiply loop.
            return 0.0
        prod = 1.0
        p = self.p
        for v in part.graph.net(net_id):
            if v != exclude and part.side(v) == side:
                prod *= p[v]
                if prod == 0.0:
                    return 0.0
        return prod

    # ------------------------------------------------------------------
    # Gains
    # ------------------------------------------------------------------
    def net_gain(self, node: int, net_id: int) -> float:
        """Gain contributed to ``node`` by one of its nets (Eqns. 3–6).

        Single pass over the net's pins (both side products at once).
        """
        part = self.partition
        graph = part.graph
        p = self.p
        sides = part.sides_view()
        s = sides[node]
        prod_a = 1.0
        prod_b = 1.0
        has_other = False
        for v in graph.net(net_id):
            if v == node:
                continue
            if sides[v] == s:
                prod_a *= p[v]
            else:
                has_other = True
                prod_b *= p[v]
        cost = graph.net_cost(net_id)
        if has_other:
            return cost * (prod_a - prod_b)
        return cost * (prod_a - 1.0)

    def net_pin_contributions(self, net_id: int) -> Dict[int, float]:
        """Gain contribution of ``net_id`` to each of its *free* pins.

        One O(q) scan computes both side products; each pin's conditional
        product divides its own probability back out, which is exact to
        1/2 ulp while the product is a normal float (free probabilities
        are >= pmin > 0 and locked pins contribute the 0 factor
        independently).  Products below :data:`DIV_SAFE_MIN` — gradual
        underflow on high-degree nets — take the exact recompute branch
        instead of the lossy division.  This is the cached-update
        strategy's inner primitive — the realization of the paper's
        Eqns. (5)/(6) update.
        """
        part = self.partition
        graph = part.graph
        p = self.p
        sides = part.sides_view()
        locked = part.locked_view()
        prod = [1.0, 1.0]
        counts = [0, 0]
        pins = graph.net(net_id)
        for v in pins:
            s = sides[v]
            prod[s] *= p[v]
            counts[s] += 1
        cost = graph.net_cost(net_id)
        out: Dict[int, float] = {}
        for v in pins:
            if locked[v]:
                continue
            s = sides[v]
            pv = p[v]
            prod_mine = prod[s]
            if pv > 0.0 and prod_mine >= DIV_SAFE_MIN:
                prod_a = prod_mine / pv
            else:
                if 0.0 < prod_mine < DIV_SAFE_MIN:
                    self.underflow_recomputes += 1
                prod_a = self.net_clearing_probability(net_id, s, exclude=v)
            if counts[1 - s] > 0:
                out[v] = cost * (prod_a - prod[1 - s])
            else:
                out[v] = cost * (prod_a - 1.0)
        return out

    def contributions_for(self, node: int) -> Dict[int, float]:
        """Per-net gain contributions of one free node: {net_id: g_net}."""
        return {
            net_id: self.net_gain(node, net_id)
            for net_id in self.partition.graph.node_nets(node)
        }

    def all_contributions(self) -> List[Dict[int, float]]:
        """Per-net contributions for every free node, in O(m).

        The cached-update strategy (Sec. 3.4, Eqns. 5/6) keeps these as its
        working state; locked nodes get empty dicts.  Uses the same shared
        per-net product trick as :meth:`all_gains`.
        """
        part = self.partition
        graph = part.graph
        p = self.p
        sides = part.sides_view()
        locked = part.locked_view()
        net_costs = graph.net_costs
        counts0 = part.counts_view(0)
        counts1 = part.counts_view(1)

        prod0 = [1.0] * graph.num_nets
        prod1 = [1.0] * graph.num_nets
        for net_id, pins in enumerate(graph.nets):
            a = b = 1.0
            for v in pins:
                if sides[v] == 0:
                    a *= p[v]
                else:
                    b *= p[v]
            prod0[net_id], prod1[net_id] = a, b

        contribs: List[Dict[int, float]] = [dict() for _ in range(graph.num_nodes)]
        for node in range(graph.num_nodes):
            if locked[node]:
                continue
            s = sides[node]
            pu = p[node]
            entry = contribs[node]
            for net_id in graph.node_nets(node):
                cost = net_costs[net_id]
                if s == 0:
                    prod_mine, prod_other = prod0[net_id], prod1[net_id]
                    other_count = counts1[net_id]
                else:
                    prod_mine, prod_other = prod1[net_id], prod0[net_id]
                    other_count = counts0[net_id]
                if pu > 0.0 and prod_mine >= DIV_SAFE_MIN:
                    prod_a = prod_mine / pu
                else:
                    if 0.0 < prod_mine < DIV_SAFE_MIN:
                        self.underflow_recomputes += 1
                    prod_a = self.net_clearing_probability(
                        net_id, s, exclude=node
                    )
                if other_count > 0:
                    entry[net_id] = cost * (prod_a - prod_other)
                else:
                    entry[net_id] = cost * (prod_a - 1.0)
        return contribs

    # ------------------------------------------------------------------
    # Cached-update strategy state (Sec. 3.4, Eqns. 5/6)
    # ------------------------------------------------------------------
    # The pass engine treats the contribution cache as an opaque value
    # produced by :meth:`new_contribution_state` and threaded back through
    # :meth:`contribution_move_deltas` / :meth:`refresh_contributions`.
    # This backend keeps a per-node dict {net_id: contribution}; the numpy
    # backend (:mod:`repro.kernels`) overrides all three with a flat
    # per-pin array plus an incrementally maintained per-net product cache.

    def new_contribution_state(self):
        """Fresh cached-strategy state for a pass (bootstrap, Eqn. 5/6)."""
        return self.all_contributions()

    def contribution_move_deltas(
        self, moved: int, contribs, counters=None
    ) -> List[Tuple[int, float]]:
        """Refresh the contributions of ``moved``'s nets; return gain deltas.

        Recomputes the per-pin contributions of every net of the
        just-locked ``moved`` node, folds them into ``contribs``, and
        returns ``(neighbor, gain_delta)`` pairs in first-touch order —
        including zero-delta neighbors, whose probabilities the engine
        still re-derives (their container gain may be stale relative to
        the stored probability).
        """
        graph = self.partition.graph
        deltas: Dict[int, float] = {}
        for net_id in graph.node_nets(moved):
            if counters is not None:
                counters.cache_net_recomputes += 1
            for nbr, new_c in self.net_pin_contributions(net_id).items():
                entry = contribs[nbr]
                old_c = entry.get(net_id, 0.0)
                if new_c != old_c:
                    entry[net_id] = new_c
                    deltas[nbr] = deltas.get(nbr, 0.0) + (new_c - old_c)
                    if counters is not None:
                        counters.cache_entry_deltas += 1
                else:
                    deltas.setdefault(nbr, 0.0)
        return list(deltas.items())

    def refresh_contributions(self, node: int, contribs, counters=None) -> float:
        """Full per-net recompute for a top-ranked node; returns its gain.

        Keeps the node's cache entry coherent (the top-k step of the
        cached strategy) and returns the fresh total gain.
        """
        entry = self.contributions_for(node)
        gain = sum(entry.values())
        contribs[node] = entry
        if counters is not None:
            counters.cache_net_recomputes += len(entry)
        return gain

    def node_gain(self, node: int) -> float:
        """Total probabilistic gain ``g(u) = Σ_nets g_nt(u)``.

        Hot path of the in-pass updates (called for every neighbor of every
        moved node), so both side products of each net are accumulated in a
        single pass over the net's pins instead of via two
        :meth:`net_clearing_probability` calls.
        """
        part = self.partition
        graph = part.graph
        p = self.p
        sides = part.sides_view()
        net_of = graph.net
        net_costs = graph.net_costs
        s = sides[node]
        total = 0.0
        for net_id in graph.node_nets(node):
            prod_a = 1.0
            prod_b = 1.0
            has_other = False
            for v in net_of(net_id):
                if v == node:
                    continue
                pv = p[v]
                if sides[v] == s:
                    prod_a *= pv
                else:
                    has_other = True
                    prod_b *= pv
            cost = net_costs[net_id]
            if has_other:
                total += cost * (prod_a - prod_b)
            else:
                total += cost * (prod_a - 1.0)
        return total

    def all_gains(self) -> List[float]:
        """Gains of every free node (locked nodes get 0), in O(m).

        Used by the refinement iterations, where recomputing shared net
        products once per net (instead of once per pin) matters.  The
        per-node conditioning ``| u`` divides ``u`` back out of its side's
        product, which is exact because probabilities are >= pmin > 0 for
        all free nodes during refinement.
        """
        part = self.partition
        graph = part.graph
        p = self.p
        num_nets = graph.num_nets
        sides = part.sides_view()
        locked = part.locked_view()
        net_costs = graph.net_costs
        counts0 = part.counts_view(0)
        counts1 = part.counts_view(1)
        locked0 = part.locked_counts_view(0)
        locked1 = part.locked_counts_view(1)

        # Per-net, per-side clearing probabilities (no exclusions).
        prod0 = [1.0] * num_nets
        prod1 = [1.0] * num_nets
        for net_id, pins in enumerate(graph.nets):
            a = 0.0 if locked0[net_id] else 1.0
            b = 0.0 if locked1[net_id] else 1.0
            if a or b:
                for v in pins:
                    if sides[v] == 0:
                        a *= p[v]
                    else:
                        b *= p[v]
                prod0[net_id], prod1[net_id] = a, b
            else:
                prod0[net_id] = prod1[net_id] = 0.0

        gains = [0.0] * graph.num_nodes
        for node in range(graph.num_nodes):
            if locked[node]:
                continue
            s = sides[node]
            pu = p[node]
            total = 0.0
            for net_id in graph.node_nets(node):
                cost = net_costs[net_id]
                if s == 0:
                    prod_mine, prod_other = prod0[net_id], prod1[net_id]
                    other_count = counts1[net_id]
                else:
                    prod_mine, prod_other = prod1[net_id], prod0[net_id]
                    other_count = counts0[net_id]
                if pu > 0.0 and prod_mine >= DIV_SAFE_MIN:
                    prod_a = prod_mine / pu
                else:
                    # Structural zeros (a locked pin on the side) resolve
                    # in O(1) inside the recompute; genuine underflow —
                    # 0 < product < DIV_SAFE_MIN — recomputes exactly.
                    if 0.0 < prod_mine < DIV_SAFE_MIN:
                        self.underflow_recomputes += 1
                    prod_a = self.net_clearing_probability(
                        net_id, s, exclude=node
                    )
                if other_count > 0:
                    total += cost * (prod_a - prod_other)
                else:
                    total += cost * (prod_a - 1.0)
            gains[node] = total
        return gains
