"""Probabilistic node gains — paper Sec. 3.1, Eqns. (2)–(6).

Every node ``u`` carries a probability ``p(u)`` of actually being moved in
the current pass; locked nodes have ``p = 0``.  With that convention the
paper's four gain equations collapse into a single rule (derivation in
DESIGN.md, decision 1).  For a *free* node ``u`` on side ``s`` and a net
``nt`` with cost ``c``:

* ``A = (nt ∩ side s) − {u}``, ``B = nt ∩ other side``
* ``prodA = Π p(x), x ∈ A`` and ``prodB = Π p(y), y ∈ B``
  (empty products are 1; any locked member forces the product to 0)
* if ``B`` is non-empty (net in the cutset):  ``g = c · (prodA − prodB)``
  — Eqn. (3), and its locked specializations Eqns. (5)/(6);
* if ``B`` is empty (net internal to ``s``):  ``g = c · (prodA − 1)``
  — Eqn. (4), ``−c·(1 − p(n^{1→2}|u))``.

``prodA`` is the probability that every other same-side pin leaves (the net
gets pulled out of the cut — or stays out, for an internal net, when ``u``
leaves); ``prodB`` is the probability the *other* side would have emptied
on its own, an option that moving ``u`` forecloses (the negative term of
Eqn. (2)).

The total gain of ``u`` is the sum over its nets: ``g(u) = Σ g_nt(u)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..partition import Partition


class ProbabilisticGainEngine:
    """Computes probabilistic gains over a :class:`Partition`.

    The engine owns the probability vector ``p`` (indexed by node).  Locked
    nodes must have ``p = 0`` — :meth:`set_probability` and
    :meth:`on_lock` maintain this; gains read locks straight from the
    partition, so the two views can never drift apart.

    :attr:`probability_writes` counts probability-vector refreshes
    (``set_probability`` calls, plus one ``fill`` per pass bootstrap);
    the telemetry layer reports its per-pass delta as the
    ``probability_refreshes`` counter.
    """

    __slots__ = ("partition", "p", "probability_writes")

    def __init__(
        self,
        partition: Partition,
        probabilities: Optional[Sequence[float]] = None,
    ) -> None:
        self.partition = partition
        n = partition.graph.num_nodes
        if probabilities is None:
            self.p: List[float] = [0.0] * n
        else:
            if len(probabilities) != n:
                raise ValueError(
                    f"probabilities has length {len(probabilities)}, expected {n}"
                )
            self.p = [float(x) for x in probabilities]
        for v in range(n):
            if partition.is_locked(v):
                self.p[v] = 0.0
        #: Running count of probability-vector refreshes (telemetry).
        self.probability_writes = 0

    # ------------------------------------------------------------------
    # Probability maintenance
    # ------------------------------------------------------------------
    def set_probability(self, node: int, value: float) -> None:
        """Set ``p(node)``; rejects non-zero values for locked nodes."""
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"probability {value} outside [0, 1]")
        if value and self.partition.is_locked(node):
            raise ValueError(f"node {node} is locked; its probability must be 0")
        self.p[node] = value
        self.probability_writes += 1

    def fill(self, value: float) -> None:
        """Set every *free* node's probability to ``value``."""
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"probability {value} outside [0, 1]")
        part = self.partition
        for v in range(len(self.p)):
            self.p[v] = 0.0 if part.is_locked(v) else value
        self.probability_writes += 1

    def on_lock(self, node: int) -> None:
        """Record that ``node`` was just locked (its p drops to 0)."""
        self.p[node] = 0.0

    # ------------------------------------------------------------------
    # Net-level probabilities (the p(n^{1→2}) quantities of Sec. 3.1)
    # ------------------------------------------------------------------
    def net_clearing_probability(
        self, net_id: int, side: int, exclude: Optional[int] = None
    ) -> float:
        """Probability that all pins of ``net_id`` on ``side`` move away.

        This is the paper's ``p(n^{1→2})`` (for side = 1 in its notation):
        the product of the probabilities of the side's pins, which is 0 as
        soon as any of them is locked there.  ``exclude`` omits one free
        node from the product (conditioning on that node's own move, the
        ``| u`` in Eqns. (3)/(5)).
        """
        part = self.partition
        if part.net_locked_in(net_id, side):
            # A locked pin can never leave; the locked node also has p = 0,
            # but short-circuiting avoids a useless multiply loop.
            return 0.0
        prod = 1.0
        p = self.p
        for v in part.graph.net(net_id):
            if v != exclude and part.side(v) == side:
                prod *= p[v]
                if prod == 0.0:
                    return 0.0
        return prod

    # ------------------------------------------------------------------
    # Gains
    # ------------------------------------------------------------------
    def net_gain(self, node: int, net_id: int) -> float:
        """Gain contributed to ``node`` by one of its nets (Eqns. 3–6).

        Single pass over the net's pins (both side products at once).
        """
        part = self.partition
        graph = part.graph
        p = self.p
        side_of = part.side
        s = side_of(node)
        prod_a = 1.0
        prod_b = 1.0
        has_other = False
        for v in graph.net(net_id):
            if v == node:
                continue
            if side_of(v) == s:
                prod_a *= p[v]
            else:
                has_other = True
                prod_b *= p[v]
        cost = graph.net_cost(net_id)
        if has_other:
            return cost * (prod_a - prod_b)
        return cost * (prod_a - 1.0)

    def net_pin_contributions(self, net_id: int) -> Dict[int, float]:
        """Gain contribution of ``net_id`` to each of its *free* pins.

        One O(q) scan computes both side products; each pin's conditional
        product divides its own probability back out (exact, since free
        probabilities are >= pmin > 0 and locked pins contribute the 0
        factor independently).  This is the cached-update strategy's inner
        primitive — the realization of the paper's Eqns. (5)/(6) update.
        """
        part = self.partition
        graph = part.graph
        p = self.p
        side_of = part.side
        prod = [1.0, 1.0]
        counts = [0, 0]
        pins = graph.net(net_id)
        for v in pins:
            s = side_of(v)
            prod[s] *= p[v]
            counts[s] += 1
        cost = graph.net_cost(net_id)
        out: Dict[int, float] = {}
        for v in pins:
            if part.is_locked(v):
                continue
            s = side_of(v)
            pv = p[v]
            prod_mine = prod[s]
            if pv > 0.0:
                prod_a = prod_mine / pv
            else:  # pragma: no cover - free pins have p >= pmin > 0
                prod_a = self.net_clearing_probability(net_id, s, exclude=v)
            if counts[1 - s] > 0:
                out[v] = cost * (prod_a - prod[1 - s])
            else:
                out[v] = cost * (prod_a - 1.0)
        return out

    def contributions_for(self, node: int) -> Dict[int, float]:
        """Per-net gain contributions of one free node: {net_id: g_net}."""
        return {
            net_id: self.net_gain(node, net_id)
            for net_id in self.partition.graph.node_nets(node)
        }

    def all_contributions(self) -> List[Dict[int, float]]:
        """Per-net contributions for every free node, in O(m).

        The cached-update strategy (Sec. 3.4, Eqns. 5/6) keeps these as its
        working state; locked nodes get empty dicts.  Uses the same shared
        per-net product trick as :meth:`all_gains`.
        """
        part = self.partition
        graph = part.graph
        p = self.p

        prod0 = [1.0] * graph.num_nets
        prod1 = [1.0] * graph.num_nets
        for net_id, pins in enumerate(graph.nets):
            a = b = 1.0
            for v in pins:
                if part.side(v) == 0:
                    a *= p[v]
                else:
                    b *= p[v]
            prod0[net_id], prod1[net_id] = a, b

        contribs: List[Dict[int, float]] = [dict() for _ in range(graph.num_nodes)]
        for node in range(graph.num_nodes):
            if part.is_locked(node):
                continue
            s = part.side(node)
            pu = p[node]
            entry = contribs[node]
            for net_id in graph.node_nets(node):
                cost = graph.net_cost(net_id)
                if s == 0:
                    prod_mine, prod_other = prod0[net_id], prod1[net_id]
                    other_count = part.count(net_id, 1)
                else:
                    prod_mine, prod_other = prod1[net_id], prod0[net_id]
                    other_count = part.count(net_id, 0)
                if pu > 0.0 and prod_mine > 0.0:
                    prod_a = prod_mine / pu
                else:
                    prod_a = self.net_clearing_probability(
                        net_id, s, exclude=node
                    )
                if other_count > 0:
                    entry[net_id] = cost * (prod_a - prod_other)
                else:
                    entry[net_id] = cost * (prod_a - 1.0)
        return contribs

    def node_gain(self, node: int) -> float:
        """Total probabilistic gain ``g(u) = Σ_nets g_nt(u)``.

        Hot path of the in-pass updates (called for every neighbor of every
        moved node), so both side products of each net are accumulated in a
        single pass over the net's pins instead of via two
        :meth:`net_clearing_probability` calls.
        """
        part = self.partition
        graph = part.graph
        p = self.p
        side_of = part.side
        s = side_of(node)
        total = 0.0
        for net_id in graph.node_nets(node):
            prod_a = 1.0
            prod_b = 1.0
            has_other = False
            for v in graph.net(net_id):
                if v == node:
                    continue
                pv = p[v]
                if side_of(v) == s:
                    prod_a *= pv
                else:
                    has_other = True
                    prod_b *= pv
            cost = graph.net_cost(net_id)
            if has_other:
                total += cost * (prod_a - prod_b)
            else:
                total += cost * (prod_a - 1.0)
        return total

    def all_gains(self) -> List[float]:
        """Gains of every free node (locked nodes get 0), in O(m).

        Used by the refinement iterations, where recomputing shared net
        products once per net (instead of once per pin) matters.  The
        per-node conditioning ``| u`` divides ``u`` back out of its side's
        product, which is exact because probabilities are >= pmin > 0 for
        all free nodes during refinement.
        """
        part = self.partition
        graph = part.graph
        p = self.p
        num_nets = graph.num_nets

        # Per-net, per-side clearing probabilities (no exclusions).
        prod0 = [1.0] * num_nets
        prod1 = [1.0] * num_nets
        for net_id, pins in enumerate(graph.nets):
            if part.net_locked_in(net_id, 0):
                prod0[net_id] = 0.0
            if part.net_locked_in(net_id, 1):
                prod1[net_id] = 0.0
            a = prod0[net_id]
            b = prod1[net_id]
            if a or b:
                for v in pins:
                    if part.side(v) == 0:
                        a *= p[v]
                    else:
                        b *= p[v]
                prod0[net_id], prod1[net_id] = a, b

        gains = [0.0] * graph.num_nodes
        for node in range(graph.num_nodes):
            if part.is_locked(node):
                continue
            s = part.side(node)
            pu = p[node]
            total = 0.0
            for net_id in graph.node_nets(node):
                cost = graph.net_cost(net_id)
                if s == 0:
                    prod_mine, prod_other = prod0[net_id], prod1[net_id]
                    other_count = part.count(net_id, 1)
                else:
                    prod_mine, prod_other = prod1[net_id], prod0[net_id]
                    other_count = part.count(net_id, 0)
                if pu > 0.0 and prod_mine > 0.0:
                    prod_a = prod_mine / pu
                else:
                    # pu == 0 cannot happen for a free node during
                    # refinement, but recompute exactly if it does.
                    prod_a = self.net_clearing_probability(
                        net_id, s, exclude=node
                    )
                if other_count > 0:
                    total += cost * (prod_a - prod_other)
                else:
                    total += cost * (prod_a - 1.0)
            gains[node] = total
        return gains
