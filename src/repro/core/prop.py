"""Public facade for the PROP partitioner.

Quick use::

    from repro import PropPartitioner
    from repro.hypergraph import make_benchmark

    graph = make_benchmark("struct", scale=0.2)
    result = PropPartitioner().partition(graph, seed=42)
    print(result.cut, result.passes)

All the heavy lifting is in :mod:`repro.core.engine`; this class adds the
ergonomic defaults (50-50 balance, seeded random initial partition) and a
uniform constructor shared with the baseline partitioners, so the multi-run
harness can treat every algorithm identically.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..audit import AuditConfig
from ..hypergraph import Hypergraph
from ..partition import (
    BalanceConstraint,
    BipartitionResult,
    Partition,
    random_balanced_sides,
)
from ..telemetry import Recorder
from .config import PropConfig
from .engine import run_prop


class PropPartitioner:
    """The probability-based iterative-improvement partitioner (PROP)."""

    name = "PROP"

    #: PROP accepts a per-call ``audit`` config (see :mod:`repro.audit`).
    supports_audit = True

    #: PROP accepts a per-call ``recorder`` (see :mod:`repro.telemetry`).
    supports_telemetry = True

    def __init__(self, config: Optional[PropConfig] = None) -> None:
        self.config = config if config is not None else PropConfig()

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,
        initial_sides: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
        audit: Optional[AuditConfig] = None,
        recorder: Optional[Recorder] = None,
    ) -> BipartitionResult:
        """Partition ``graph`` into two balanced subsets minimizing the cut.

        Parameters
        ----------
        graph:
            The netlist.
        balance:
            Balance constraint; defaults to the paper's 50-50% criterion
            (exact bisection with one-node slack).
        initial_sides:
            Explicit starting partition; defaults to a random balanced
            bisection drawn from ``seed``.
        seed:
            Seed for the random initial partition (ignored when
            ``initial_sides`` is given, except for bookkeeping).
        audit:
            Invariant-audit configuration (see :mod:`repro.audit`);
            ``None`` defers to the ``REPRO_AUDIT`` environment variable.
        recorder:
            Telemetry recorder receiving spans, per-move events and
            counters (see :mod:`repro.telemetry`); recording never
            changes moves or cuts.
        """
        if balance is None:
            balance = BalanceConstraint.fifty_fifty(graph)
        if initial_sides is None:
            initial_sides = random_balanced_sides(graph, seed)
        result = run_prop(
            graph, initial_sides, balance, config=self.config, seed=seed,
            audit=audit, recorder=recorder,
        )
        result.verify(graph)
        return result


def prop_bisect(
    graph: Hypergraph,
    seed: Optional[int] = None,
    balance: Optional[BalanceConstraint] = None,
    config: Optional[PropConfig] = None,
) -> BipartitionResult:
    """Function-style convenience wrapper around :class:`PropPartitioner`."""
    return PropPartitioner(config).partition(graph, balance=balance, seed=seed)
