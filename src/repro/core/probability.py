"""Gain → probability maps (paper Sec. 3.2).

A probability function is any monotonically increasing ``f(gain)`` clamped
to ``[pmin, pmax]`` with thresholds ``glo``/``gup``: gains at or above
``gup`` saturate at ``pmax`` ("nodes with high gains are going to be
ultimately moved no matter what"), gains at or below ``glo`` saturate at
``pmin``.  The paper uses the linear interpolation; a sigmoid variant is
included for the ablation study.
"""

from __future__ import annotations

import math
from typing import Callable

from .config import PropConfig

ProbabilityFn = Callable[[float], float]


class LinearProbabilityMap:
    """``p = pmin + (pmax - pmin) * (g - glo) / (gup - glo)``, clamped.

    This is "the linear probability function" of paper Sec. 4, but it is
    also used standalone by the Figure-1 reproduction with the figure's own
    parameters (pmin=0, pmax=1, slope 0.3 — see
    :mod:`repro.experiments.figure1`).
    """

    __slots__ = ("pmin", "pmax", "glo", "gup", "_slope")

    def __init__(self, pmin: float, pmax: float, glo: float, gup: float) -> None:
        if not 0.0 <= pmin <= pmax <= 1.0:
            raise ValueError(f"need 0 <= pmin <= pmax <= 1: ({pmin}, {pmax})")
        if not glo < gup:
            raise ValueError(f"need glo < gup: ({glo}, {gup})")
        self.pmin = pmin
        self.pmax = pmax
        self.glo = glo
        self.gup = gup
        self._slope = (pmax - pmin) / (gup - glo)

    def __call__(self, gain: float) -> float:
        if gain >= self.gup:
            return self.pmax
        if gain <= self.glo:
            return self.pmin
        return self.pmin + self._slope * (gain - self.glo)


class SigmoidProbabilityMap:
    """Logistic alternative: smooth transition centred between glo and gup.

    Matches the clamp semantics (exactly pmax above gup, exactly pmin below
    glo) so it is a drop-in replacement in ablations.

    The raw logistic only reaches ``σ(±4) ≈ 0.982 / 0.018`` at the
    thresholds, so clamping it directly would jump ~1.8% of the
    ``pmax - pmin`` range at ``glo`` and ``gup``.  We therefore renormalize
    the logistic so it spans exactly ``[0, 1]`` over ``[glo, gup]``::

        t = (σ(scale·(g − mid)) − σ_lo) / (σ_hi − σ_lo)

    with ``σ_lo = σ(−4)`` and ``σ_hi = σ(+4)``, making the map continuous
    (and still strictly increasing) across the whole gain axis; the
    midpoint stays exactly ``(pmin + pmax) / 2``.
    """

    __slots__ = ("pmin", "pmax", "glo", "gup", "_mid", "_scale", "_lo", "_span")

    def __init__(self, pmin: float, pmax: float, glo: float, gup: float) -> None:
        if not 0.0 <= pmin <= pmax <= 1.0:
            raise ValueError(f"need 0 <= pmin <= pmax <= 1: ({pmin}, {pmax})")
        if not glo < gup:
            raise ValueError(f"need glo < gup: ({glo}, {gup})")
        self.pmin = pmin
        self.pmax = pmax
        self.glo = glo
        self.gup = gup
        self._mid = (glo + gup) / 2.0
        # scale so the logistic covers ±4 sigmoid units between the
        # thresholds; the renormalization below stretches that to [0, 1]
        self._scale = 8.0 / (gup - glo)
        self._lo = 1.0 / (1.0 + math.exp(4.0))  # σ(−4)
        self._span = 1.0 / (1.0 + math.exp(-4.0)) - self._lo  # σ(+4) − σ(−4)

    def __call__(self, gain: float) -> float:
        if gain >= self.gup:
            return self.pmax
        if gain <= self.glo:
            return self.pmin
        sigma = 1.0 / (1.0 + math.exp(-self._scale * (gain - self._mid)))
        t = (sigma - self._lo) / self._span
        return self.pmin + (self.pmax - self.pmin) * t


def make_probability_fn(config: PropConfig) -> ProbabilityFn:
    """Build the probability function selected by ``config``."""
    if config.probability_function == "linear":
        return LinearProbabilityMap(
            config.pmin, config.pmax, config.glo, config.gup
        )
    if config.probability_function == "sigmoid":
        return SigmoidProbabilityMap(
            config.pmin, config.pmax, config.glo, config.gup
        )
    raise ValueError(  # pragma: no cover - config validates already
        f"unknown probability function {config.probability_function!r}"
    )
