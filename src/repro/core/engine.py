"""The PROP pass engine — paper Fig. 2, Secs. 3.2–3.4.

One :func:`run_prop` call executes the full algorithm:

1. start from a given (random or clustered) balanced bisection;
2. per pass: bootstrap node probabilities (``pinit`` or deterministic FM
   gains), refine gains ↔ probabilities for ``refinement_iterations``
   cycles, then move-and-lock best-gain nodes under the balance constraint,
   updating neighbors and the top-ranked nodes after every move
   (Sec. 3.4), journaling immediate gains;
3. keep the maximum-prefix-gain prefix of the pass, roll back the rest;
4. repeat until a pass yields ``Gmax <= 0``.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple

from ..audit import AuditConfig, PassAuditor, resolve_audit
from ..datastructures import PassJournal, TreeGainContainer
from ..hypergraph import Hypergraph
from ..partition import BalanceConstraint, BipartitionResult, Partition
from .config import PropConfig
from .gains import ProbabilisticGainEngine
from .probability import make_probability_fn

#: Optional per-move observer: (pass_index, node, selection_gain,
#: immediate_gain).  ``selection_gain`` is the probabilistic gain the node
#: was chosen by; ``immediate_gain`` is the realized cut delta.  Used by
#: the gain-prediction diagnostics in :mod:`repro.analysis.prediction`.
MoveObserver = Callable[[int, int, float, float], None]


def run_prop(
    graph: Hypergraph,
    initial_sides: Sequence[int],
    balance: BalanceConstraint,
    config: Optional[PropConfig] = None,
    seed: Optional[int] = None,
    observer: Optional[MoveObserver] = None,
    audit: Optional[AuditConfig] = None,
) -> BipartitionResult:
    """Run PROP from an explicit initial partition.

    ``seed`` is recorded in the result for bookkeeping only — PROP itself
    is deterministic given the initial partition.

    ``audit`` attaches a read-only :class:`~repro.audit.PassAuditor` that
    cross-checks cut/count/lock/gain/rollback bookkeeping against brute
    force after every (Nth) move; ``None`` defers to the ``REPRO_AUDIT``
    environment variable.  Audited runs make identical moves.
    """
    if config is None:
        config = PropConfig()
    start = time.perf_counter()

    partition = Partition(graph, initial_sides)
    engine = ProbabilisticGainEngine(partition)
    prob_fn = make_probability_fn(config)
    audit = resolve_audit(audit)
    auditor = (
        PassAuditor(graph, balance, audit, algorithm="PROP", seed=seed)
        if audit is not None
        else None
    )

    passes = 0
    total_moves = 0
    pass_cuts = []
    while passes < config.max_passes:
        journal = _run_pass(
            partition, engine, balance, config, prob_fn,
            observer=observer, pass_index=passes, auditor=auditor,
        )
        passes += 1
        total_moves += len(journal)
        p, gmax = journal.best_prefix()
        # Undo the tentative moves beyond the best prefix (last first).
        partition.unlock_all()
        for record in reversed(journal.rolled_back_moves()):
            partition.move(record.node)
        pass_cuts.append(partition.cut_cost)
        if auditor is not None:
            auditor.after_rollback(partition, journal)
        if gmax <= config.min_pass_gain or p == 0:
            break

    elapsed = time.perf_counter() - start
    stats = {"tentative_moves": float(total_moves)}
    if auditor is not None:
        stats.update(auditor.summary())
    return BipartitionResult(
        sides=partition.sides,
        cut=partition.cut_cost,
        algorithm="PROP",
        seed=seed,
        passes=passes,
        runtime_seconds=elapsed,
        stats=stats,
        pass_cuts=pass_cuts,
    )


def _bootstrap_probabilities(
    engine: ProbabilisticGainEngine,
    config: PropConfig,
    prob_fn,
) -> None:
    """Fig. 2 step 3: the initial probability estimate.

    Either every node starts at ``pinit`` ("blind" method), or
    probabilities are derived from the deterministic FM gains (Eqn. 1).
    """
    if config.init_method == "pinit":
        engine.fill(config.pinit)
        return
    partition = engine.partition
    for v in range(partition.graph.num_nodes):
        if not partition.is_locked(v):
            engine.set_probability(v, prob_fn(partition.immediate_gain(v)))


def _refine(
    engine: ProbabilisticGainEngine,
    config: PropConfig,
    prob_fn,
) -> List[float]:
    """Fig. 2 step 4: iterate gain ↔ probability refinement.

    Returns the final gains (after the last refinement cycle, gains are
    recomputed once more so they reflect the final probabilities).
    """
    partition = engine.partition
    gains = engine.all_gains()
    for _ in range(config.refinement_iterations):
        for v, g in enumerate(gains):
            if not partition.is_locked(v):
                engine.set_probability(v, prob_fn(g))
        gains = engine.all_gains()
    return gains


def _pick_move(
    containers: Tuple[TreeGainContainer, TreeGainContainer],
    partition: Partition,
    balance: BalanceConstraint,
) -> Optional[int]:
    """Fig. 2 step 6: best-gain node whose move keeps balance.

    The overall best-gain node is preferred; if moving it would violate
    balance, the best node of the *other* side is chosen instead (the FM
    rule the paper inherits).  Returns None when no move is possible.
    """
    candidates = []
    for side in (0, 1):
        if containers[side]:
            node, gain = containers[side].peek_best()
            candidates.append((gain, side, node))
    candidates.sort(reverse=True)
    weights = partition.side_weights
    for _, side, node in candidates:
        if balance.move_allowed(weights, side, partition.graph.node_weight(node)):
            return node
    return None


def _run_pass(
    partition: Partition,
    engine: ProbabilisticGainEngine,
    balance: BalanceConstraint,
    config: PropConfig,
    prob_fn,
    observer: Optional[MoveObserver] = None,
    pass_index: int = 0,
    auditor: Optional[PassAuditor] = None,
) -> PassJournal:
    """One tentative-move pass (Fig. 2 steps 3–8); locks are left set."""
    graph = partition.graph
    if auditor is not None:
        auditor.start_pass(partition)

    _bootstrap_probabilities(engine, config, prob_fn)
    gains = _refine(engine, config, prob_fn)

    cached = config.update_strategy == "cached"
    contribs = engine.all_contributions() if cached else None

    containers = (TreeGainContainer(), TreeGainContainer())
    for v in range(graph.num_nodes):
        if not partition.is_locked(v):
            containers[partition.side(v)].insert(v, gains[v])

    journal = PassJournal()
    while True:
        node = _pick_move(containers, partition, balance)
        if node is None:
            break
        from_side = partition.side(node)
        selection_gain = containers[from_side].remove(node)
        immediate = partition.move_and_lock(node)
        engine.on_lock(node)
        journal.record(node, from_side, immediate)
        if observer is not None:
            observer(pass_index, node, selection_gain, immediate)
        if auditor is not None and auditor.after_move(
            partition, node, immediate
        ):
            auditor.check_containers(partition, containers)
            auditor.check_prop_gains(partition, engine)

        if cached:
            _update_neighbors_cached(
                node, partition, engine, containers, config, prob_fn, contribs
            )
            _update_top_ranked_cached(
                partition, engine, containers, config, prob_fn, contribs
            )
        else:
            _update_neighbors(
                node, partition, engine, containers, config, prob_fn
            )
            _update_top_ranked(partition, engine, containers, config, prob_fn)
    return journal


def _update_neighbors(
    moved: int,
    partition: Partition,
    engine: ProbabilisticGainEngine,
    containers: Tuple[TreeGainContainer, TreeGainContainer],
    config: PropConfig,
    prob_fn,
) -> None:
    """Sec. 3.4: refresh gain (and probability) of each free neighbor."""
    graph = partition.graph
    seen = {moved}
    for net_id in graph.node_nets(moved):
        for nbr in graph.net(net_id):
            if nbr in seen or partition.is_locked(nbr):
                seen.add(nbr)
                continue
            seen.add(nbr)
            gain = engine.node_gain(nbr)
            if config.update_neighbor_probabilities:
                engine.set_probability(nbr, prob_fn(gain))
            container = containers[partition.side(nbr)]
            if container.gain_of(nbr) != gain:
                container.update(nbr, gain)


def _update_neighbors_cached(
    moved: int,
    partition: Partition,
    engine: ProbabilisticGainEngine,
    containers: Tuple[TreeGainContainer, TreeGainContainer],
    config: PropConfig,
    prob_fn,
    contribs,
) -> None:
    """Sec. 3.4, Eqn. 5/6 flavour: only the contributions of the moved
    node's nets are recomputed; each neighbor's total gain is adjusted by
    the contribution delta.  Staleness from second-order probability
    changes is repaired by the top-k step, exactly as in the recompute
    strategy."""
    graph = partition.graph
    deltas = {}
    for net_id in graph.node_nets(moved):
        for nbr, new_c in engine.net_pin_contributions(net_id).items():
            entry = contribs[nbr]
            old_c = entry.get(net_id, 0.0)
            if new_c != old_c:
                entry[net_id] = new_c
                deltas[nbr] = deltas.get(nbr, 0.0) + (new_c - old_c)
            else:
                deltas.setdefault(nbr, 0.0)
    for nbr, delta in deltas.items():
        container = containers[partition.side(nbr)]
        gain = container.gain_of(nbr) + delta
        if config.update_neighbor_probabilities:
            engine.set_probability(nbr, prob_fn(gain))
        if delta:
            container.update(nbr, gain)


def _update_top_ranked_cached(
    partition: Partition,
    engine: ProbabilisticGainEngine,
    containers: Tuple[TreeGainContainer, TreeGainContainer],
    config: PropConfig,
    prob_fn,
    contribs,
) -> None:
    """Top-k refresh for the cached strategy: full recompute of the node's
    contributions (keeping its cache coherent) plus probability update."""
    k = config.top_update_count
    if k <= 0:
        return
    for side in (0, 1):
        for node, stale in containers[side].top(k):
            entry = engine.contributions_for(node)
            gain = sum(entry.values())
            contribs[node] = entry
            if config.update_neighbor_probabilities:
                engine.set_probability(node, prob_fn(gain))
            if gain != stale:
                containers[side].update(node, gain)


def _update_top_ranked(
    partition: Partition,
    engine: ProbabilisticGainEngine,
    containers: Tuple[TreeGainContainer, TreeGainContainer],
    config: PropConfig,
    prob_fn,
) -> None:
    """Sec. 3.4: re-evaluate the top-ranked nodes of each side.

    Needed because a top node may be a neighbor-of-a-neighbor of the moved
    node, whose probability just changed; the paper argues refreshing the
    top few contenders is all that is necessary.
    """
    k = config.top_update_count
    if k <= 0:
        return
    for side in (0, 1):
        for node, stale in containers[side].top(k):
            gain = engine.node_gain(node)
            if gain == stale:
                continue  # unchanged: skip the O(log n) reinsertion
            if config.update_neighbor_probabilities:
                engine.set_probability(node, prob_fn(gain))
            containers[side].update(node, gain)
