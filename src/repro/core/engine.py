"""The PROP pass engine — paper Fig. 2, Secs. 3.2–3.4.

One :func:`run_prop` call executes the full algorithm:

1. start from a given (random or clustered) balanced bisection;
2. per pass: bootstrap node probabilities (``pinit`` or deterministic FM
   gains), refine gains ↔ probabilities for ``refinement_iterations``
   cycles, then move-and-lock best-gain nodes under the balance constraint,
   updating neighbors and the top-ranked nodes after every move
   (Sec. 3.4), journaling immediate gains;
3. keep the maximum-prefix-gain prefix of the pass, roll back the rest;
4. repeat until a pass yields ``Gmax <= 0``.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple

from ..audit import AuditConfig, PassAuditor, resolve_audit
from ..datastructures import PassJournal, TreeGainContainer
from ..hypergraph import Hypergraph
from ..kernels import make_gain_engine, resolve_kernel
from ..partition import BalanceConstraint, BipartitionResult, Partition
from ..telemetry import PassCounters, Recorder, resolve_recorder
from .config import PropConfig
from .gains import ProbabilisticGainEngine
from .probability import make_probability_fn

#: Optional per-move observer: (pass_index, node, selection_gain,
#: immediate_gain).  ``selection_gain`` is the probabilistic gain the node
#: was chosen by; ``immediate_gain`` is the realized cut delta.  Kept for
#: compatibility (the differential harness uses it); new code should pass
#: a :class:`repro.telemetry.Recorder`, which sees the same per-move
#: stream plus spans and counters.
MoveObserver = Callable[[int, int, float, float], None]


def run_prop(
    graph: Hypergraph,
    initial_sides: Sequence[int],
    balance: BalanceConstraint,
    config: Optional[PropConfig] = None,
    seed: Optional[int] = None,
    observer: Optional[MoveObserver] = None,
    audit: Optional[AuditConfig] = None,
    recorder: Optional[Recorder] = None,
) -> BipartitionResult:
    """Run PROP from an explicit initial partition.

    ``seed`` is recorded in the result for bookkeeping only — PROP itself
    is deterministic given the initial partition.

    ``audit`` attaches a read-only :class:`~repro.audit.PassAuditor` that
    cross-checks cut/count/lock/gain/rollback bookkeeping against brute
    force after every (Nth) move; ``None`` defers to the ``REPRO_AUDIT``
    environment variable.  Audited runs make identical moves, and the
    time spent inside audit hooks is excluded from ``runtime_seconds``
    (reported separately as the ``audit_seconds`` stat).

    ``recorder`` attaches a :class:`repro.telemetry.Recorder` receiving
    spans, per-move events and counters; recording never changes moves
    or cuts.  Per-phase timings land in ``stats`` whether or not a
    recorder is attached.
    """
    if config is None:
        config = PropConfig()
    start = time.perf_counter()

    partition = Partition(graph, initial_sides)
    # Backend selection (repro.kernels): the sequential backends are
    # bit-identical, so that choice affects runtime only — never moves
    # or cuts.  The subround kernel replaces the whole pass loop and is
    # only ever selected explicitly.
    kernel = resolve_kernel(config.kernel, num_pins=graph.num_pins)
    if kernel == "subround":
        return _run_prop_subround(
            graph, partition, balance, config, seed, observer, audit,
            recorder, start,
        )
    engine = make_gain_engine(partition, kernel)
    prob_fn = make_probability_fn(config)
    audit = resolve_audit(audit)
    auditor = (
        PassAuditor(graph, balance, audit, algorithm="PROP", seed=seed)
        if audit is not None
        else None
    )
    rec = resolve_recorder(recorder)
    phase = {
        "bootstrap_seconds": 0.0,
        "refine_seconds": 0.0,
        "gain_init_seconds": 0.0,
        "move_loop_seconds": 0.0,
        "rollback_seconds": 0.0,
    }
    if rec is not None:
        rec.run_start("PROP", seed, graph.num_nodes, graph.num_nets)

    passes = 0
    total_moves = 0
    pass_cuts = []
    while passes < config.max_passes:
        pass_start = time.perf_counter()
        if rec is not None:
            rec.pass_start(passes)
        journal = _run_pass(
            partition, engine, balance, config, prob_fn,
            observer=observer, pass_index=passes, auditor=auditor,
            rec=rec, phase=phase,
        )
        total_moves += len(journal)
        p, gmax = journal.best_prefix()
        # Undo the tentative moves beyond the best prefix (last first).
        rollback_start = time.perf_counter()
        partition.unlock_all()
        for record in reversed(journal.rolled_back_moves()):
            partition.move(record.node)
        rollback_seconds = time.perf_counter() - rollback_start
        phase["rollback_seconds"] += rollback_seconds
        pass_cuts.append(partition.cut_cost)
        if auditor is not None:
            auditor.after_rollback(partition, journal)
        if rec is not None:
            rec.span(passes, "rollback", rollback_seconds)
            rec.pass_end(
                passes, partition.cut_cost, len(journal), p, gmax,
                time.perf_counter() - pass_start,
            )
        passes += 1
        if gmax <= config.min_pass_gain or p == 0:
            break

    elapsed = time.perf_counter() - start
    stats = {"tentative_moves": float(total_moves)}
    stats.update(phase)
    stats["kernel_numpy"] = 1.0 if engine.kernel_name == "numpy" else 0.0
    stats["underflow_recomputes"] = float(engine.underflow_recomputes)
    csr = getattr(engine, "csr", None)
    if csr is not None:
        stats["csr_build_seconds"] = csr.build_seconds
        stats["product_cache_hits"] = float(engine.product_cache_hits)
        stats["product_cache_misses"] = float(engine.product_cache_misses)
    if auditor is not None:
        stats.update(auditor.summary())
        elapsed -= auditor.seconds
    result = BipartitionResult(
        sides=partition.sides,
        cut=partition.cut_cost,
        algorithm="PROP",
        seed=seed,
        passes=passes,
        runtime_seconds=elapsed,
        stats=stats,
        pass_cuts=pass_cuts,
    )
    if rec is not None:
        rec.run_end("PROP", result.cut, passes, elapsed, stats)
    return result


def _run_prop_subround(
    graph: Hypergraph,
    partition: Partition,
    balance: BalanceConstraint,
    config: PropConfig,
    seed: Optional[int],
    observer: Optional[MoveObserver],
    audit: Optional[AuditConfig],
    recorder,
    start: float,
) -> BipartitionResult:
    """The ``kernel="subround"`` run loop (see :mod:`repro.kernels.subround`).

    Same pass/rollback/stop protocol as the sequential loop; only the
    inside of a pass differs (batched sub-rounds instead of one move at
    a time).  The engine owns a shared-memory worker pool when
    ``config.subround_workers >= 2``; ``finally`` guarantees its
    segments are unlinked even when a pass raises.
    """
    from ..kernels.subround import SubroundPropEngine

    engine = SubroundPropEngine(partition, config, seed)
    audit = resolve_audit(audit)
    auditor = (
        PassAuditor(graph, balance, audit, algorithm="PROP", seed=seed)
        if audit is not None
        else None
    )
    rec = resolve_recorder(recorder)
    phase = {
        "bootstrap_seconds": 0.0,
        "refine_seconds": 0.0,
        "gain_init_seconds": 0.0,
        "move_loop_seconds": 0.0,
        "rollback_seconds": 0.0,
    }
    if rec is not None:
        rec.run_start("PROP", seed, graph.num_nodes, graph.num_nets)

    passes = 0
    total_moves = 0
    pass_cuts = []
    try:
        while passes < config.max_passes:
            pass_start = time.perf_counter()
            if rec is not None:
                rec.pass_start(passes)
            counters = PassCounters() if rec is not None else None
            journal = engine.run_pass(
                balance, passes, observer=observer, auditor=auditor,
                rec=rec, phase=phase, counters=counters,
            )
            total_moves += len(journal)
            p, gmax = journal.best_prefix()
            rollback_start = time.perf_counter()
            partition.unlock_all()
            for record in reversed(journal.rolled_back_moves()):
                partition.move(record.node)
            rollback_seconds = time.perf_counter() - rollback_start
            phase["rollback_seconds"] += rollback_seconds
            pass_cuts.append(partition.cut_cost)
            if auditor is not None:
                auditor.after_rollback(partition, journal)
            if rec is not None:
                rec.span(passes, "rollback", rollback_seconds)
                rec.pass_end(
                    passes, partition.cut_cost, len(journal), p, gmax,
                    time.perf_counter() - pass_start,
                )
            passes += 1
            if gmax <= config.min_pass_gain or p == 0:
                break
    finally:
        engine.close()

    elapsed = time.perf_counter() - start
    stats = {"tentative_moves": float(total_moves)}
    stats.update(phase)
    stats["kernel_numpy"] = 0.0
    stats["kernel_subround"] = 1.0
    stats["underflow_recomputes"] = float(engine.underflow_recomputes)
    stats["csr_build_seconds"] = engine.csr.build_seconds
    stats.update(engine.run_stats())
    if auditor is not None:
        stats.update(auditor.summary())
        elapsed -= auditor.seconds
    result = BipartitionResult(
        sides=partition.sides,
        cut=partition.cut_cost,
        algorithm="PROP",
        seed=seed,
        passes=passes,
        runtime_seconds=elapsed,
        stats=stats,
        pass_cuts=pass_cuts,
    )
    if rec is not None:
        rec.run_end("PROP", result.cut, passes, elapsed, stats)
    return result


def _bootstrap_probabilities(
    engine: ProbabilisticGainEngine,
    config: PropConfig,
    prob_fn,
) -> None:
    """Fig. 2 step 3: the initial probability estimate.

    Either every node starts at ``pinit`` ("blind" method), or
    probabilities are derived from the deterministic FM gains (Eqn. 1).
    """
    if config.init_method == "pinit":
        engine.fill(config.pinit)
        return
    partition = engine.partition
    for v in range(partition.graph.num_nodes):
        if not partition.is_locked(v):
            engine.set_probability(v, prob_fn(partition.immediate_gain(v)))


def _refine(
    engine: ProbabilisticGainEngine,
    config: PropConfig,
    prob_fn,
) -> List[float]:
    """Fig. 2 step 4: iterate gain ↔ probability refinement.

    Returns the final gains (after the last refinement cycle, gains are
    recomputed once more so they reflect the final probabilities).
    """
    partition = engine.partition
    gains = engine.all_gains()
    for _ in range(config.refinement_iterations):
        for v, g in enumerate(gains):
            if not partition.is_locked(v):
                engine.set_probability(v, prob_fn(g))
        gains = engine.all_gains()
    return gains


def _pick_move(
    containers: Tuple[TreeGainContainer, TreeGainContainer],
    partition: Partition,
    balance: BalanceConstraint,
) -> Optional[int]:
    """Fig. 2 step 6: best-gain node whose move keeps balance.

    The overall best-gain node is preferred; if moving it would violate
    balance, the best node of the *other* side is chosen instead (the FM
    rule the paper inherits).  Returns None when no move is possible.
    """
    candidates = []
    for side in (0, 1):
        if containers[side]:
            node, gain = containers[side].peek_best()
            candidates.append((gain, side, node))
    candidates.sort(reverse=True)
    weights = partition.side_weights
    for _, side, node in candidates:
        if balance.move_allowed(weights, side, partition.graph.node_weight(node)):
            return node
    return None


def _run_pass(
    partition: Partition,
    engine: ProbabilisticGainEngine,
    balance: BalanceConstraint,
    config: PropConfig,
    prob_fn,
    observer: Optional[MoveObserver] = None,
    pass_index: int = 0,
    auditor: Optional[PassAuditor] = None,
    rec: Optional[Recorder] = None,
    phase: Optional[dict] = None,
) -> PassJournal:
    """One tentative-move pass (Fig. 2 steps 3–8); locks are left set.

    ``rec`` must already be resolved (enabled or ``None``); ``phase`` is
    the run-level phase-seconds accumulator, updated whether or not a
    recorder is attached.
    """
    graph = partition.graph
    if auditor is not None:
        auditor.start_pass(partition)
    counters = PassCounters() if rec is not None else None
    writes_before = engine.probability_writes

    t0 = time.perf_counter()
    _bootstrap_probabilities(engine, config, prob_fn)
    t1 = time.perf_counter()
    gains = _refine(engine, config, prob_fn)
    t2 = time.perf_counter()

    cached = config.update_strategy == "cached"
    contribs = engine.new_contribution_state() if cached else None

    containers = (TreeGainContainer(), TreeGainContainer())
    for v in range(graph.num_nodes):
        if not partition.is_locked(v):
            containers[partition.side(v)].insert(v, gains[v])
    t3 = time.perf_counter()

    journal = PassJournal()
    while True:
        node = _pick_move(containers, partition, balance)
        if node is None:
            break
        from_side = partition.side(node)
        selection_gain = containers[from_side].remove(node)
        immediate = partition.move_and_lock(node)
        engine.on_lock(node)
        if rec is not None:
            rec.move(
                pass_index, len(journal), node, from_side,
                selection_gain, immediate,
            )
            counters.moves += 1
        journal.record(node, from_side, immediate)
        if observer is not None:
            observer(pass_index, node, selection_gain, immediate)
        if auditor is not None and auditor.after_move(
            partition, node, immediate
        ):
            auditor.check_containers(partition, containers)
            auditor.check_prop_gains(partition, engine)
            auditor.check_prop_kernel(partition, engine)

        if cached:
            _update_neighbors_cached(
                node, partition, engine, containers, config, prob_fn,
                contribs, counters,
            )
            _update_top_ranked_cached(
                partition, engine, containers, config, prob_fn,
                contribs, counters,
            )
        else:
            _update_neighbors(
                node, partition, engine, containers, config, prob_fn,
                counters,
            )
            _update_top_ranked(
                partition, engine, containers, config, prob_fn, counters
            )
    t4 = time.perf_counter()
    if phase is not None:
        phase["bootstrap_seconds"] += t1 - t0
        phase["refine_seconds"] += t2 - t1
        phase["gain_init_seconds"] += t3 - t2
        phase["move_loop_seconds"] += t4 - t3
    if rec is not None:
        rec.span(pass_index, "bootstrap", t1 - t0)
        rec.span(pass_index, "refine", t2 - t1)
        rec.span(pass_index, "gain_init", t3 - t2)
        rec.span(pass_index, "move_loop", t4 - t3)
        counters.probability_refreshes = (
            engine.probability_writes - writes_before
        )
        rec.counters(pass_index, counters.as_dict())
    return journal


def _update_neighbors(
    moved: int,
    partition: Partition,
    engine: ProbabilisticGainEngine,
    containers: Tuple[TreeGainContainer, TreeGainContainer],
    config: PropConfig,
    prob_fn,
    counters: Optional[PassCounters] = None,
) -> None:
    """Sec. 3.4: refresh gain (and probability) of each free neighbor."""
    graph = partition.graph
    seen = {moved}
    for net_id in graph.node_nets(moved):
        for nbr in graph.net(net_id):
            if nbr in seen or partition.is_locked(nbr):
                seen.add(nbr)
                continue
            seen.add(nbr)
            gain = engine.node_gain(nbr)
            if config.update_neighbor_probabilities:
                engine.set_probability(nbr, prob_fn(gain))
            if counters is not None:
                counters.neighbor_updates += 1
            container = containers[partition.side(nbr)]
            if container.gain_of(nbr) != gain:
                container.update(nbr, gain)
                if counters is not None:
                    counters.container_updates += 1


def _update_neighbors_cached(
    moved: int,
    partition: Partition,
    engine: ProbabilisticGainEngine,
    containers: Tuple[TreeGainContainer, TreeGainContainer],
    config: PropConfig,
    prob_fn,
    contribs,
    counters: Optional[PassCounters] = None,
) -> None:
    """Sec. 3.4, Eqn. 5/6 flavour: only the contributions of the moved
    node's nets are recomputed; each neighbor's total gain is adjusted by
    the contribution delta.  Staleness from second-order probability
    changes is repaired by the top-k step, exactly as in the recompute
    strategy.

    The contribution cache ``contribs`` is opaque to this function: the
    engine created it (:meth:`~ProbabilisticGainEngine.new_contribution_state`)
    and is the only code that reads or writes it — the numpy backend uses
    a flat array plus incremental per-net products where the python
    backend keeps per-node dicts.
    """
    for nbr, delta in engine.contribution_move_deltas(moved, contribs, counters):
        if counters is not None:
            counters.neighbor_updates += 1
        container = containers[partition.side(nbr)]
        gain = container.gain_of(nbr) + delta
        if config.update_neighbor_probabilities:
            engine.set_probability(nbr, prob_fn(gain))
        if delta:
            container.update(nbr, gain)
            if counters is not None:
                counters.container_updates += 1


def _update_top_ranked_cached(
    partition: Partition,
    engine: ProbabilisticGainEngine,
    containers: Tuple[TreeGainContainer, TreeGainContainer],
    config: PropConfig,
    prob_fn,
    contribs,
    counters: Optional[PassCounters] = None,
) -> None:
    """Top-k refresh for the cached strategy: full recompute of the node's
    contributions (keeping its cache coherent) plus probability update."""
    k = config.top_update_count
    if k <= 0:
        return
    for side in (0, 1):
        for node, stale in containers[side].top(k):
            gain = engine.refresh_contributions(node, contribs, counters)
            if counters is not None:
                counters.topk_updates += 1
            if config.update_neighbor_probabilities:
                engine.set_probability(node, prob_fn(gain))
            if gain != stale:
                containers[side].update(node, gain)
                if counters is not None:
                    counters.container_updates += 1


def _update_top_ranked(
    partition: Partition,
    engine: ProbabilisticGainEngine,
    containers: Tuple[TreeGainContainer, TreeGainContainer],
    config: PropConfig,
    prob_fn,
    counters: Optional[PassCounters] = None,
) -> None:
    """Sec. 3.4: re-evaluate the top-ranked nodes of each side.

    Needed because a top node may be a neighbor-of-a-neighbor of the moved
    node, whose probability just changed; the paper argues refreshing the
    top few contenders is all that is necessary.
    """
    k = config.top_update_count
    if k <= 0:
        return
    for side in (0, 1):
        for node, stale in containers[side].top(k):
            if counters is not None:
                counters.topk_updates += 1
            gain = engine.node_gain(node)
            if gain == stale:
                continue  # unchanged: skip the O(log n) reinsertion
            if config.update_neighbor_probabilities:
                engine.set_probability(node, prob_fn(gain))
            containers[side].update(node, gain)
            if counters is not None:
                counters.container_updates += 1
