"""Two-phase partitioning: clustering front end + PROP (paper Sec. 5).

The paper closes with: "we believe that in conjunction with a clustering
initial phase it will yield a high-quality partitioning tool."  This
module builds that tool:

1. **Cluster** — attraction-ordering windows (the same front end the
   WINDOW baseline uses) contract the netlist by ``cluster_size``;
2. **Coarse PROP** — PROP partitions the contracted netlist (weighted
   nodes, merged net costs) from a few random starts;
3. **Project + refine** — the best coarse partition is projected onto the
   flat netlist and PROP runs again from it, now with a high-quality
   initial partition instead of a random one.

Because PROP already handles weighted nets and weighted balance natively,
no machinery beyond :mod:`repro.hypergraph.transforms` is needed.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..baselines.window import attraction_ordering
from ..hypergraph import Hypergraph, contract
from ..partition import (
    BalanceConstraint,
    BipartitionResult,
    random_balanced_sides,
)
from .config import PropConfig
from .engine import run_prop


class TwoPhasePropPartitioner:
    """Clustering + PROP, the paper's proposed "high-quality tool"."""

    def __init__(
        self,
        config: Optional[PropConfig] = None,
        cluster_size: int = 6,
        coarse_runs: int = 4,
    ) -> None:
        if cluster_size < 1:
            raise ValueError("cluster_size must be >= 1")
        if coarse_runs < 1:
            raise ValueError("coarse_runs must be >= 1")
        self.config = config if config is not None else PropConfig()
        self.cluster_size = cluster_size
        self.coarse_runs = coarse_runs

    name = "PROP-CL"

    def partition(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,
        initial_sides: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> BipartitionResult:
        """Partition ``graph`` with the cluster-then-refine flow.

        When ``initial_sides`` is given the clustering phase is skipped
        and this degenerates to plain PROP (interface compatibility with
        the multi-run harness).
        """
        if balance is None:
            balance = BalanceConstraint.fifty_fifty(graph)
        start = time.perf_counter()
        base_seed = 0 if seed is None else seed

        if initial_sides is None:
            initial_sides = self._clustered_initial(graph, balance, base_seed)

        result = run_prop(
            graph, initial_sides, balance, config=self.config, seed=seed
        )
        result.algorithm = self.name
        result.runtime_seconds = time.perf_counter() - start
        result.verify(graph)
        return result

    def _clustered_initial(
        self,
        graph: Hypergraph,
        balance: BalanceConstraint,
        seed: int,
    ) -> Sequence[int]:
        order = attraction_ordering(graph)
        cluster_of = [0] * graph.num_nodes
        for position, v in enumerate(order):
            cluster_of[v] = position // self.cluster_size
        contraction = contract(graph, cluster_of)
        coarse = contraction.coarse

        max_w = max(coarse.node_weights)
        coarse_balance = BalanceConstraint(
            lo=max(0.0, balance.lo - max_w),
            hi=min(balance.total, balance.hi + max_w),
            total=balance.total,
        )
        best = None
        for i in range(self.coarse_runs):
            init = random_balanced_sides(coarse, seed + 31 * i)
            res = run_prop(coarse, init, coarse_balance, config=self.config)
            if best is None or res.cut < best.cut:
                best = res
        assert best is not None
        return contraction.project_sides(best.sides)
