"""PROP — the paper's primary contribution (probabilistic-gain partitioning)."""

from .config import PAPER_CONFIG, PropConfig
from .engine import run_prop
from .gains import ProbabilisticGainEngine
from .probability import (
    LinearProbabilityMap,
    SigmoidProbabilityMap,
    make_probability_fn,
)
from .prop import PropPartitioner, prop_bisect
from .two_phase import TwoPhasePropPartitioner

__all__ = [
    "PropConfig",
    "PAPER_CONFIG",
    "PropPartitioner",
    "TwoPhasePropPartitioner",
    "prop_bisect",
    "run_prop",
    "ProbabilisticGainEngine",
    "LinearProbabilityMap",
    "SigmoidProbabilityMap",
    "make_probability_fn",
]
