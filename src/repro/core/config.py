"""PROP configuration (paper Secs. 3.2–3.4 and the Sec. 4 defaults).

The default values are exactly the ones the paper reports using for both
balance regimes: "single moves, AVL tree data structure, pinit = 0.95,
pmax = 0.95, pmin = 0.4, the linear probability function, gup = 1, and
glo = −1" — plus 2 gain↔probability refinement iterations (Sec. 3) and the
"few, say, five" top-node updates after each move (Sec. 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict


#: Bootstrap-probability methods (paper Sec. 3, the "chicken-and-egg" start).
INIT_METHODS = ("pinit", "deterministic")

#: Probability functions f: gain -> [pmin, pmax] (Sec. 3.2 suggests linear;
#: sigmoid is provided for the ablation benches).
PROBABILITY_FUNCTIONS = ("linear", "sigmoid")

#: Gain-kernel backends (see :mod:`repro.kernels`): "auto" picks numpy
#: when importable and the instance is large enough (deferring to the
#: ``REPRO_KERNEL`` environment variable first), "python"/"numpy" force
#: a backend.  Those two are bit-identical — same moves, same cuts — so
#: the switch is runtime-only and excluded from experiment-cache
#: fingerprints.  "subround" (never auto-selected) replaces the pass
#: loop with deterministic batched sub-rounds
#: (:mod:`repro.kernels.subround`); it changes move interleaving and
#: hence results, so it *does* enter fingerprints, via
#: :meth:`PropConfig.fingerprint_extra`.
KERNELS = ("auto", "python", "numpy", "subround")

#: In-pass neighbor-update strategies (Sec. 3.4):
#: "recompute" — recompute each affected neighbor's full gain from current
#: probabilities; "cached" — the paper's Eqn. 5/6 scheme: keep per-(node,
#: net) gain contributions and adjust only the contributions of the nets
#: the moved node touches.  Same staleness model (bounded by the top-k
#: refresh), different constants.
UPDATE_STRATEGIES = ("recompute", "cached")


@dataclass(frozen=True)
class PropConfig:
    """All knobs of the PROP partitioner.

    Attributes
    ----------
    pinit:
        Initial node-move probability used by the "blind" bootstrap
        (Sec. 3, first method).
    pmax / pmin:
        Probability clamp: node probabilities always lie in
        ``[pmin, pmax]``; the paper requires ``pmin > 0`` (footnote 3) so
        that no move is deemed impossible.
    gup / glo:
        Gain thresholds (Sec. 3.2): gains >= ``gup`` map to ``pmax``,
        gains < ``glo`` map to ``pmin``.
    probability_function:
        ``"linear"`` (paper) or ``"sigmoid"`` (ablation).
    init_method:
        ``"pinit"`` — all nodes start at ``pinit``; ``"deterministic"`` —
        probabilities bootstrapped from FM deterministic gains (Sec. 3,
        second method).
    refinement_iterations:
        Number of gain↔probability refinement cycles before moving
        (the paper uses 2).
    top_update_count:
        How many top-ranked nodes per side get a full gain recomputation
        after every move (the paper uses ~5).
    update_neighbor_probabilities:
        Whether a neighbor's probability is re-derived from its fresh gain
        during in-pass updates (Sec. 3.4 implies yes; switchable for the
        ablation bench).
    update_strategy:
        ``"recompute"`` or ``"cached"`` — see :data:`UPDATE_STRATEGIES`.
    max_passes:
        Safety cap on improvement passes; the loop normally exits when a
        pass yields ``Gmax <= 0`` (empirically 2–4 passes).
    min_pass_gain:
        A pass must improve the cut by more than this to continue
        (guards against infinite loops with tiny float net costs).
    kernel:
        Gain-kernel backend — see :data:`KERNELS`.  The sequential
        backends are result-neutral (bit-identical moves and cuts); the
        ``"subround"`` backend is not, and is fingerprinted via
        :meth:`fingerprint_extra`.
    subround_workers:
        Shared-memory workers for the ``"subround"`` kernel (0/1 = run
        the sweeps inline).  Never affects results — the sub-round
        kernels are chunk-invariant — only wall-clock; ignored by the
        other kernels.
    subround_batch_fraction:
        Fraction of the remaining free nodes one sub-round may move (at
        least one node always moves).  Affects results when
        ``kernel="subround"`` (smaller batches track the sequential
        algorithm more closely); fingerprinted via
        :meth:`fingerprint_extra` in exactly that case.
    """

    pinit: float = 0.95
    pmax: float = 0.95
    pmin: float = 0.4
    gup: float = 1.0
    glo: float = -1.0
    probability_function: str = "linear"
    init_method: str = "pinit"
    refinement_iterations: int = 2
    top_update_count: int = 5
    update_neighbor_probabilities: bool = True
    update_strategy: str = "recompute"
    max_passes: int = 100
    min_pass_gain: float = 1e-9
    kernel: str = "auto"
    subround_workers: int = 0
    subround_batch_fraction: float = 0.1

    #: Fields that cannot affect results and are therefore skipped by the
    #: experiment-cache fingerprint (see :mod:`repro.engine.units`).  Not
    #: a dataclass field (no annotation) — a class-level constant.
    #: ``subround_batch_fraction`` is listed here so python/numpy runs
    #: stay kernel-neutral; when the subround kernel is selected (the
    #: only case where it matters) :meth:`fingerprint_extra` puts it
    #: back into the key.
    _RESULT_NEUTRAL_FIELDS = frozenset(
        {"kernel", "subround_workers", "subround_batch_fraction"}
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.pmin <= self.pmax <= 1.0:
            raise ValueError(
                f"need 0 < pmin <= pmax <= 1, got pmin={self.pmin} pmax={self.pmax}"
            )
        if not 0.0 < self.pinit <= 1.0:
            raise ValueError(f"pinit must be in (0, 1], got {self.pinit}")
        if not self.glo < self.gup:
            raise ValueError(f"need glo < gup, got glo={self.glo} gup={self.gup}")
        if self.probability_function not in PROBABILITY_FUNCTIONS:
            raise ValueError(
                f"unknown probability_function {self.probability_function!r}; "
                f"choose from {PROBABILITY_FUNCTIONS}"
            )
        if self.init_method not in INIT_METHODS:
            raise ValueError(
                f"unknown init_method {self.init_method!r}; "
                f"choose from {INIT_METHODS}"
            )
        if self.update_strategy not in UPDATE_STRATEGIES:
            raise ValueError(
                f"unknown update_strategy {self.update_strategy!r}; "
                f"choose from {UPDATE_STRATEGIES}"
            )
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; choose from {KERNELS}"
            )
        if self.refinement_iterations < 0:
            raise ValueError("refinement_iterations must be >= 0")
        if self.top_update_count < 0:
            raise ValueError("top_update_count must be >= 0")
        if self.max_passes < 1:
            raise ValueError("max_passes must be >= 1")
        if self.subround_workers < 0:
            raise ValueError("subround_workers must be >= 0")
        if not 0.0 < self.subround_batch_fraction <= 1.0:
            raise ValueError(
                "subround_batch_fraction must be in (0, 1], got "
                f"{self.subround_batch_fraction}"
            )

    def fingerprint_extra(self) -> Dict[str, Any]:
        """Extra experiment-cache key material (see :mod:`repro.engine.units`).

        The sub-round kernel is a different algorithm, so runs under it
        must not share cache entries with sequential runs: the family
        marker and the batch fraction (which shapes its move order)
        enter the key.  For the sequential kernels this returns ``{}``,
        keeping the kernel switch fingerprint-neutral as before.
        """
        if self.kernel == "subround":
            return {
                "kernel_family": "subround",
                "subround_batch_fraction": self.subround_batch_fraction,
            }
        return {}

    def with_overrides(self, **kwargs: Any) -> "PropConfig":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **kwargs)

    def describe(self) -> Dict[str, Any]:
        """Flat dict of all parameters (for result metadata / logs)."""
        return {
            "pinit": self.pinit,
            "pmax": self.pmax,
            "pmin": self.pmin,
            "gup": self.gup,
            "glo": self.glo,
            "probability_function": self.probability_function,
            "init_method": self.init_method,
            "refinement_iterations": self.refinement_iterations,
            "top_update_count": self.top_update_count,
            "update_strategy": self.update_strategy,
            "kernel": self.kernel,
            "subround_workers": self.subround_workers,
            "subround_batch_fraction": self.subround_batch_fraction,
        }


#: The paper's published parameterization (Sec. 4) — also the default.
PAPER_CONFIG = PropConfig()
