"""Poison-job quarantine: a per-fingerprint circuit breaker.

A *poison* job is a spec that keeps killing whatever runs it — workers
crash, units hang past the deadline, or the whole job fails — and that,
because the service faithfully re-runs whatever clients submit, would
otherwise burn a worker slot forever.  The registry counts
*consecutive* strikes per seed-blanked spec fingerprint (so the same
netlist/config is recognized across seeds and resubmissions); at
``quarantine_after`` strikes it trips, writes a diagnostics bundle, and
every later submission of that fingerprint is rejected up front with
HTTP 409 instead of being re-run.

State lives under ``<cache>/service/quarantine/``:

* ``strikes.jsonl`` — sealed append-only strike/clear/trip/release
  events (same checksum + torn-line discipline as every other journal
  in this codebase); replayed on service start so quarantine decisions
  survive crashes bit-identically.
* ``<fingerprint>.json`` — the human-readable diagnostics bundle
  written when the breaker trips: the offending spec payload, its
  repro seed, the strike history, config fingerprint, and the last
  telemetry counters the service observed for it.

A success for a fingerprint resets its strike count (transient
infrastructure trouble must not accumulate into quarantine);
``release`` (CLI or ``DELETE /v1/quarantine/<fp>``) forgives a tripped
fingerprint explicitly.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..engine.journal import iter_journal_records
from ..engine.records import seal

#: Subdirectory of ``<cache>/service/`` holding quarantine state.
QUARANTINE_SUBDIR = "quarantine"

#: Strike reasons recorded in the journal and bundles.
STRIKE_REASONS = ("failed", "deadline", "crash_recovery")


class QuarantinedError(Exception):
    """A submission matched a quarantined fingerprint."""

    def __init__(self, fingerprint: str, entry: Dict[str, Any]) -> None:
        super().__init__(
            f"spec fingerprint {fingerprint} is quarantined "
            f"after {entry.get('strikes', '?')} consecutive failures"
        )
        self.fingerprint = fingerprint
        self.entry = entry


def quarantine_dir(cache_dir: Path) -> Path:
    """Quarantine root for a service cache directory."""
    from ..service.recovery import SERVICE_SUBDIR

    return Path(cache_dir) / SERVICE_SUBDIR / QUARANTINE_SUBDIR


class QuarantineRegistry:
    """Consecutive-failure breaker keyed on spec fingerprints.

    Thread-safe: strikes arrive from worker threads while admission
    checks run on the event loop.  All mutations are journalled before
    the in-memory state changes, so a crash between the two leaves the
    journal ahead of memory — replay converges to the same state.
    """

    def __init__(self, root: Path, quarantine_after: int = 3) -> None:
        self.root = Path(root)
        self.quarantine_after = max(1, int(quarantine_after))
        self._lock = threading.Lock()
        self._strikes: Dict[str, List[Dict[str, Any]]] = {}
        self._tripped: Dict[str, Dict[str, Any]] = {}
        self.journal_errors = 0
        self._load()

    # -- persistence ------------------------------------------------

    @property
    def journal_path(self) -> Path:
        return self.root / "strikes.jsonl"

    def bundle_path(self, fingerprint: str) -> Path:
        """Where ``fingerprint``'s diagnostics bundle lives on disk."""
        return self.root / f"{fingerprint}.json"

    def _load(self) -> None:
        for record in iter_journal_records(self.journal_path):
            self._replay(record)

    def _replay(self, record: Dict[str, Any]) -> None:
        kind = record.get("kind")
        fingerprint = record.get("fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            return
        if kind == "strike":
            self._strikes.setdefault(fingerprint, []).append(
                {
                    "reason": record.get("reason", "failed"),
                    "job_id": record.get("job_id", ""),
                    "detail": record.get("detail", ""),
                }
            )
        elif kind == "clear":
            self._strikes.pop(fingerprint, None)
        elif kind == "trip":
            entry = record.get("entry")
            self._tripped[fingerprint] = (
                dict(entry) if isinstance(entry, dict) else {"strikes": None}
            )
            self._strikes.pop(fingerprint, None)
        elif kind == "release":
            self._tripped.pop(fingerprint, None)
            self._strikes.pop(fingerprint, None)

    def _append(self, record: Dict[str, Any]) -> None:
        """Sealed append + fsync; failures counted, never raised."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            line = json.dumps(seal(record), sort_keys=True)
            with open(self.journal_path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        except (OSError, TypeError, ValueError):
            self.journal_errors += 1

    # -- breaker ----------------------------------------------------

    def is_quarantined(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The quarantine entry for ``fingerprint``, or ``None``."""
        with self._lock:
            entry = self._tripped.get(fingerprint)
            return dict(entry) if entry is not None else None

    def check(self, fingerprint: str) -> None:
        """Raise :class:`QuarantinedError` for a tripped fingerprint."""
        entry = self.is_quarantined(fingerprint)
        if entry is not None:
            raise QuarantinedError(fingerprint, entry)

    def strikes(self, fingerprint: str) -> int:
        """Current consecutive strike count for ``fingerprint``."""
        with self._lock:
            return len(self._strikes.get(fingerprint, []))

    def record_success(self, fingerprint: str) -> None:
        """A clean terminal outcome resets the consecutive count."""
        with self._lock:
            if fingerprint not in self._strikes:
                return
            self._append({"kind": "clear", "fingerprint": fingerprint})
            self._strikes.pop(fingerprint, None)

    def record_strike(
        self,
        fingerprint: str,
        reason: str,
        job_id: str = "",
        detail: str = "",
        diagnostics: Optional[Dict[str, Any]] = None,
    ) -> Optional[Dict[str, Any]]:
        """Record one strike; returns the quarantine entry on a trip.

        ``diagnostics`` carries the bundle payload (spec, seed,
        telemetry counters) captured by the caller at failure time; it
        is only written out if this strike trips the breaker.
        """
        with self._lock:
            if fingerprint in self._tripped:
                return None  # already quarantined; nothing to count
            self._append(
                {
                    "kind": "strike",
                    "fingerprint": fingerprint,
                    "reason": reason,
                    "job_id": job_id,
                    "detail": detail,
                }
            )
            history = self._strikes.setdefault(fingerprint, [])
            history.append(
                {"reason": reason, "job_id": job_id, "detail": detail}
            )
            if len(history) < self.quarantine_after:
                return None
            entry = self._trip_locked(fingerprint, history, diagnostics)
            return dict(entry)

    def _trip_locked(
        self,
        fingerprint: str,
        history: List[Dict[str, Any]],
        diagnostics: Optional[Dict[str, Any]],
    ) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "fingerprint": fingerprint,
            "strikes": len(history),
            "quarantine_after": self.quarantine_after,
            "last_reason": history[-1]["reason"],
            "last_job_id": history[-1]["job_id"],
            "bundle": str(self.bundle_path(fingerprint)),
        }
        bundle: Dict[str, Any] = {
            **entry,
            "strike_history": list(history),
            "diagnostics": diagnostics or {},
        }
        self._append(
            {"kind": "trip", "fingerprint": fingerprint, "entry": entry}
        )
        self._tripped[fingerprint] = entry
        self._strikes.pop(fingerprint, None)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self.bundle_path(fingerprint).with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps(bundle, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            tmp.replace(self.bundle_path(fingerprint))
        except (OSError, TypeError, ValueError):
            self.journal_errors += 1
        return entry

    def release(self, fingerprint: str) -> bool:
        """Forgive a quarantined fingerprint; returns whether it was
        quarantined.  The bundle file is kept for the postmortem."""
        with self._lock:
            present = fingerprint in self._tripped
            if not present and fingerprint not in self._strikes:
                return False
            self._append({"kind": "release", "fingerprint": fingerprint})
            self._tripped.pop(fingerprint, None)
            self._strikes.pop(fingerprint, None)
            return present

    # -- introspection ---------------------------------------------

    def entries(self) -> List[Dict[str, Any]]:
        """All quarantined entries, sorted by fingerprint."""
        with self._lock:
            return [
                dict(self._tripped[fp]) for fp in sorted(self._tripped)
            ]

    def load_bundle(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The on-disk diagnostics bundle, or ``None`` when missing."""
        path = self.bundle_path(fingerprint)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def snapshot(self) -> Dict[str, Any]:
        """Quarantined/watching counts, for ``/v1/stats``."""
        with self._lock:
            return {
                "quarantined": len(self._tripped),
                "watching": len(self._strikes),
                "quarantine_after": self.quarantine_after,
            }
