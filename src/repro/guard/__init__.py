"""repro.guard — overload protection and resource governance.

The guard layer sits between the service's HTTP surface and the
engine: admission control with load shedding (:mod:`~repro.guard.admission`),
memory governance via worker rlimits and an RSS watchdog
(:mod:`~repro.guard.memory`), and a poison-job circuit breaker
(:mod:`~repro.guard.quarantine`).  See ``docs/guard.md``.
"""

from .admission import AdmissionController, OverloadedError, ServiceTimeTracker
from .memory import (
    RLIMIT_ENV,
    RssWatchdog,
    apply_worker_rlimit,
    current_rss_bytes,
    worker_rlimit_bytes,
)
from .quarantine import (
    QUARANTINE_SUBDIR,
    STRIKE_REASONS,
    QuarantinedError,
    QuarantineRegistry,
    quarantine_dir,
)

__all__ = [
    "AdmissionController",
    "OverloadedError",
    "ServiceTimeTracker",
    "RLIMIT_ENV",
    "RssWatchdog",
    "apply_worker_rlimit",
    "current_rss_bytes",
    "worker_rlimit_bytes",
    "QUARANTINE_SUBDIR",
    "STRIKE_REASONS",
    "QuarantinedError",
    "QuarantineRegistry",
    "quarantine_dir",
]
