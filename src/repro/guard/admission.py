"""Admission control: bounded intake, per-tenant caps, Retry-After.

:class:`AdmissionController` is the single gate every submission passes
through before it may touch the queue.  It enforces three independent
limits — queue depth, per-tenant in-flight count, and the RSS
watchdog's shed flag — and rejects with :class:`OverloadedError`
carrying a ``Retry-After`` estimate derived from observed job service
times, so clients back off proportionally to the actual drain rate
instead of guessing.

The controller is deliberately synchronous and lock-guarded: it is
called from the asyncio submit path *and* mutated from worker threads
(service-time samples), and a plain mutex keeps the accounting exact
without event-loop entanglement.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Mapping, Optional


class OverloadedError(Exception):
    """A submission was shed; ``reason`` names the exhausted limit.

    ``reason`` is one of ``"queue_depth"``, ``"tenant_inflight"``, or
    ``"memory"``; ``retry_after`` is the suggested wait in whole
    seconds (the HTTP ``Retry-After`` header value).
    """

    def __init__(self, reason: str, retry_after: int, message: str) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class ServiceTimeTracker:
    """Sliding window of observed job service times (seconds)."""

    def __init__(self, window: int = 64, default_seconds: float = 1.0) -> None:
        self.default_seconds = default_seconds
        self._samples: Deque[float] = deque(maxlen=max(1, window))
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Record one completed job's service time; negatives ignored."""
        if seconds < 0.0:
            return
        with self._lock:
            self._samples.append(float(seconds))

    def mean_seconds(self) -> float:
        """Mean of the window, or ``default_seconds`` when empty."""
        with self._lock:
            if not self._samples:
                return self.default_seconds
            return sum(self._samples) / len(self._samples)


class AdmissionController:
    """Gatekeeper for new submissions.

    ``max_queue_depth`` bounds jobs sitting in the fair queue (0 =
    unbounded).  ``tenant_caps`` maps tenant name → max in-flight
    (queued + running) jobs; ``default_tenant_cap`` applies to tenants
    not in the map (0 = uncapped).  ``memory_shedding`` is a zero-arg
    callable consulted last (typically ``RssWatchdog.check_now``).

    Recovery re-admission after a crash bypasses the controller
    entirely — jobs that were already accepted are never shed — so the
    service calls :meth:`note_admitted` for them to keep the in-flight
    accounting truthful even when counts exceed the caps.
    """

    REASONS = ("queue_depth", "tenant_inflight", "memory")

    def __init__(
        self,
        max_queue_depth: int = 0,
        tenant_caps: Optional[Mapping[str, int]] = None,
        default_tenant_cap: int = 0,
        job_workers: int = 1,
        min_retry_after: int = 1,
        max_retry_after: int = 60,
        service_times: Optional[ServiceTimeTracker] = None,
        memory_shedding=None,
    ) -> None:
        self.max_queue_depth = max(0, int(max_queue_depth))
        self.tenant_caps = dict(tenant_caps or {})
        self.default_tenant_cap = max(0, int(default_tenant_cap))
        self.job_workers = max(1, int(job_workers))
        self.min_retry_after = max(0, int(min_retry_after))
        self.max_retry_after = max(self.min_retry_after, int(max_retry_after))
        self.service_times = service_times or ServiceTimeTracker()
        self._memory_shedding = memory_shedding
        self._lock = threading.Lock()
        self._queued = 0
        self._inflight: Dict[str, int] = {}
        self.shed_counts: Dict[str, int] = {r: 0 for r in self.REASONS}

    # -- accounting -------------------------------------------------

    def tenant_cap(self, tenant: str) -> int:
        """The in-flight cap for ``tenant`` (0 = uncapped)."""
        return self.tenant_caps.get(tenant, self.default_tenant_cap)

    @property
    def queued(self) -> int:
        return self._queued

    def inflight(self, tenant: str) -> int:
        """Jobs currently queued or running for ``tenant``."""
        with self._lock:
            return self._inflight.get(tenant, 0)

    def note_admitted(self, tenant: str) -> None:
        """Record an accepted job (queued, tenant in flight)."""
        with self._lock:
            self._queued += 1
            self._inflight[tenant] = self._inflight.get(tenant, 0) + 1

    def note_started(self) -> None:
        """A job left the queue for a worker."""
        with self._lock:
            self._queued = max(0, self._queued - 1)

    def note_requeued(self) -> None:
        """A dequeued job went back to the queue (not currently used
        by the service, but keeps the accounting API symmetric)."""
        with self._lock:
            self._queued += 1

    def note_finished(self, tenant: str, was_queued: bool = False) -> None:
        """A job reached a terminal state; drop its in-flight slot.

        ``was_queued`` is true when the job never left the queue
        (cancelled while queued), so the queue count drops too.
        """
        with self._lock:
            if was_queued:
                self._queued = max(0, self._queued - 1)
            count = self._inflight.get(tenant, 0) - 1
            if count <= 0:
                self._inflight.pop(tenant, None)
            else:
                self._inflight[tenant] = count

    # -- admission --------------------------------------------------

    def retry_after_seconds(self) -> int:
        """Expected seconds until queue headroom, clamped to bounds.

        Estimate: mean observed service time × (queued jobs + 1),
        spread across the worker pool — i.e. roughly how long until the
        backlog drains one slot.
        """
        with self._lock:
            depth = self._queued
        mean = self.service_times.mean_seconds()
        estimate = mean * (depth + 1) / self.job_workers
        clamped = max(self.min_retry_after, min(self.max_retry_after, estimate))
        return max(1, int(round(clamped)))

    def memory_shedding(self) -> bool:
        """Whether the memory hook says to shed; hook failures never
        shed (a broken watchdog must not take the service down)."""
        if self._memory_shedding is None:
            return False
        try:
            return bool(self._memory_shedding())
        except Exception:  # noqa: BLE001 - watchdog failure must not shed
            return False

    def admit(self, tenant: str) -> None:
        """Raise :class:`OverloadedError` unless ``tenant`` may submit.

        On success the job is recorded as admitted (queued + in
        flight); callers must pair every successful ``admit`` with a
        later :meth:`note_started` / :meth:`note_finished`.
        """
        retry_after = self.retry_after_seconds()
        with self._lock:
            if self.max_queue_depth and self._queued >= self.max_queue_depth:
                self.shed_counts["queue_depth"] += 1
                raise OverloadedError(
                    "queue_depth",
                    retry_after,
                    f"queue full ({self._queued}/{self.max_queue_depth} jobs)",
                )
            cap = self.tenant_caps.get(tenant, self.default_tenant_cap)
            held = self._inflight.get(tenant, 0)
            if cap and held >= cap:
                self.shed_counts["tenant_inflight"] += 1
                raise OverloadedError(
                    "tenant_inflight",
                    retry_after,
                    f"tenant {tenant!r} at in-flight cap ({held}/{cap})",
                )
        # Memory check outside the lock: check_now() reads /proc.
        if self.memory_shedding():
            with self._lock:
                self.shed_counts["memory"] += 1
            raise OverloadedError(
                "memory",
                retry_after,
                "service above memory high-water mark",
            )
        with self._lock:
            self._queued += 1
            self._inflight[tenant] = self._inflight.get(tenant, 0) + 1

    # -- introspection ---------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Current counts + shed totals, for ``/v1/stats``."""
        with self._lock:
            return {
                "queued": self._queued,
                "max_queue_depth": self.max_queue_depth,
                "inflight": dict(self._inflight),
                "shed": dict(self.shed_counts),
                "mean_service_seconds": round(
                    self.service_times.mean_seconds(), 6
                ),
            }
