"""Memory governance: worker address-space caps + an RSS watchdog.

Two complementary mechanisms keep an overloaded service from meeting
the host OOM-killer:

* **Worker RLIMIT_AS caps** — :func:`apply_worker_rlimit` sets a soft
  ``RLIMIT_AS`` ceiling in a child process, read from the
  :data:`RLIMIT_ENV` environment variable (environment because that is
  the one channel that reaches every child for free — the same trick
  ``REPRO_FAULTS`` uses).  A worker that tries to materialize a
  pathological instance dies with ``MemoryError`` inside *its own*
  process; the engine's broken-pool handling turns that into a retried
  unit instead of a dead host.
* **An RSS watchdog** — :class:`RssWatchdog` polls the *service*
  process's resident set and flips :attr:`RssWatchdog.shedding` above a
  high-water mark.  The service consults the flag at admission time
  only: new submissions shed (HTTP 429), running jobs finish — overload
  degrades to explicit backpressure, never to killing accepted work.

Everything here is stdlib-only and never raises out of its public
functions: memory governance must not be able to take down the process
it protects.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Optional

#: Environment variable carrying the worker address-space cap in MiB.
#: Set by the service (``ServiceConfig.worker_rlimit_mb``) or by hand;
#: read by :func:`apply_worker_rlimit` inside pool and shm workers.
RLIMIT_ENV = "REPRO_WORKER_RLIMIT_MB"

_MB = 1024 * 1024


def worker_rlimit_bytes() -> Optional[int]:
    """The :data:`RLIMIT_ENV` cap in bytes, or ``None`` when unset/bad."""
    raw = os.environ.get(RLIMIT_ENV, "").strip()
    if not raw:
        return None
    try:
        mb = float(raw)
    except ValueError:
        return None
    if mb <= 0:
        return None
    return int(mb * _MB)


def apply_worker_rlimit() -> bool:
    """Apply the env-configured ``RLIMIT_AS`` soft cap in this process.

    Called from worker initializers (process-pool and shared-memory
    workers).  The soft limit is clamped to the existing hard limit and
    never *raised* above a stricter limit already in place.  Returns
    whether a cap was applied; never raises — platforms without
    ``resource`` (or with locked-down limits) simply run uncapped.
    """
    cap = worker_rlimit_bytes()
    if cap is None:
        return False
    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY:
            cap = min(cap, hard)
        if soft != resource.RLIM_INFINITY and soft <= cap:
            return False  # an existing limit is already stricter
        resource.setrlimit(resource.RLIMIT_AS, (cap, hard))
        return True
    except (ImportError, ValueError, OSError):
        return False


def current_rss_bytes() -> Optional[int]:
    """This process's resident set size, or ``None`` when unreadable.

    Linux reads ``/proc/self/status`` (``VmRSS``, current); elsewhere
    falls back to ``getrusage`` ``ru_maxrss`` (peak, which only ever
    over-reports — the safe direction for a shedding decision).
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return peak if os.uname().sysname == "Darwin" else peak * 1024
    except Exception:  # pragma: no cover - no rusage either
        return None


class RssWatchdog:
    """Background RSS monitor with a high-water shed flag.

    Polls :func:`current_rss_bytes` every ``poll_seconds`` on a daemon
    thread.  :attr:`shedding` turns on when RSS crosses
    ``high_water_bytes`` and off once it falls back below
    ``resume_fraction`` of the mark (hysteresis, so admission does not
    flap at the boundary).  :meth:`check_now` performs one synchronous
    poll — tests and the readiness probe use it for deterministic
    answers instead of racing the thread.
    """

    def __init__(
        self,
        high_water_bytes: int,
        poll_seconds: float = 0.5,
        resume_fraction: float = 0.9,
        on_change: Optional[Callable[[bool, int], None]] = None,
    ) -> None:
        if high_water_bytes <= 0:
            raise ValueError(
                f"high_water_bytes must be > 0, got {high_water_bytes}"
            )
        if not 0.0 < resume_fraction <= 1.0:
            raise ValueError(
                f"resume_fraction must be in (0, 1], got {resume_fraction}"
            )
        self.high_water_bytes = high_water_bytes
        self.poll_seconds = max(0.05, float(poll_seconds))
        self.resume_fraction = resume_fraction
        self.shedding = False
        self.last_rss = 0
        self.peak_rss = 0
        self.polls = 0
        self._on_change = on_change
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def check_now(self) -> bool:
        """One synchronous poll; returns the (possibly updated) flag."""
        rss = current_rss_bytes()
        if rss is None:
            return self.shedding
        self.polls += 1
        self.last_rss = rss
        self.peak_rss = max(self.peak_rss, rss)
        if not self.shedding and rss >= self.high_water_bytes:
            self.shedding = True
            self._notify()
        elif self.shedding and rss < self.high_water_bytes * self.resume_fraction:
            self.shedding = False
            self._notify()
        return self.shedding

    def _notify(self) -> None:
        if self._on_change is not None:
            try:
                self._on_change(self.shedding, self.last_rss)
            except Exception:  # noqa: BLE001 - observer must not kill us
                pass

    def start(self) -> None:
        """Start the polling thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="guard-rss-watchdog", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.poll_seconds):
            self.check_now()

    def stop(self) -> None:
        """Stop the polling thread (idempotent; joins briefly)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
