"""``python -m repro`` entry point (same as the ``prop-partition`` script)."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
