"""Parameter sweeps over PROP's configuration space.

The ablation benches probe one knob at a time; this module provides the
general machinery — sweep any subset of :class:`~repro.core.PropConfig`
fields over value grids, run the multi-start protocol for each point, and
tabulate.  Used by ``benchmarks/test_ablations.py`` successors and by
users tuning PROP for their own netlists.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core import PropConfig, PropPartitioner
from ..hypergraph import Hypergraph
from ..multirun import run_many
from ..partition import BalanceConstraint


@dataclass(frozen=True)
class SweepPoint:
    """One configuration point and its measured outcome."""

    overrides: Tuple[Tuple[str, Any], ...]
    best_cut: float
    mean_cut: float
    seconds_per_run: float

    def override_dict(self) -> Dict[str, Any]:
        """The grid point as a plain {field: value} dict."""
        return dict(self.overrides)


@dataclass
class SweepResult:
    """All points of one sweep, with convenience accessors."""

    circuit: str
    runs_per_point: int
    points: List[SweepPoint] = field(default_factory=list)

    def best_point(self) -> SweepPoint:
        """The point with the lowest best cut (mean cut breaks ties)."""
        if not self.points:
            raise ValueError("empty sweep")
        return min(self.points, key=lambda p: (p.best_cut, p.mean_cut))

    def format_text(self) -> str:
        """Fixed-width text table of every sweep point."""
        if not self.points:
            return "(empty sweep)"
        keys = [k for k, _ in self.points[0].overrides]
        header = (
            "  ".join(f"{k:>22s}" for k in keys)
            + f"{'best':>8s}{'mean':>9s}{'s/run':>8s}"
        )
        lines = [f"sweep on {self.circuit} ({self.runs_per_point} runs/point)",
                 header, "-" * len(header)]
        for p in self.points:
            cells = "  ".join(
                f"{str(v):>22s}" for _, v in p.overrides
            )
            lines.append(
                f"{cells}{p.best_cut:>8.0f}{p.mean_cut:>9.1f}"
                f"{p.seconds_per_run:>8.3f}"
            )
        return "\n".join(lines)


def sweep_prop_config(
    graph: Hypergraph,
    grid: Mapping[str, Sequence[Any]],
    base_config: Optional[PropConfig] = None,
    runs: int = 3,
    balance: Optional[BalanceConstraint] = None,
    base_seed: int = 0,
    circuit_name: str = "",
) -> SweepResult:
    """Cartesian sweep of PropConfig fields.

    ``grid`` maps field names to candidate values, e.g.
    ``{"refinement_iterations": [0, 1, 2, 4], "pinit": [0.8, 0.95]}``.
    Invalid field names or values surface as the usual PropConfig
    validation errors at sweep-construction time (fail fast, before any
    compute is spent).
    """
    if not grid:
        raise ValueError("empty sweep grid")
    if runs < 1:
        raise ValueError("runs must be >= 1")
    if base_config is None:
        base_config = PropConfig()

    keys = list(grid)
    combos = list(itertools.product(*(grid[k] for k in keys)))
    # Validate every configuration before running anything.
    configs = [
        base_config.with_overrides(**dict(zip(keys, combo)))
        for combo in combos
    ]

    result = SweepResult(circuit=circuit_name, runs_per_point=runs)
    for combo, config in zip(combos, configs):
        outcome = run_many(
            PropPartitioner(config),
            graph,
            runs=runs,
            balance=balance,
            base_seed=base_seed,
            circuit_name=circuit_name,
        )
        result.points.append(
            SweepPoint(
                overrides=tuple(zip(keys, combo)),
                best_cut=outcome.best_cut,
                mean_cut=outcome.mean_cut,
                seconds_per_run=outcome.seconds_per_run,
            )
        )
    return result
