"""Parameter sweeps over PROP's configuration space.

The ablation benches probe one knob at a time; this module provides the
general machinery — sweep any subset of :class:`~repro.core.PropConfig`
fields over value grids, run the multi-start protocol for each point, and
tabulate.  Used by ``benchmarks/test_ablations.py`` successors and by
users tuning PROP for their own netlists.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core import PropConfig, PropPartitioner
from ..hypergraph import Hypergraph
from ..multirun import run_many
from ..telemetry import collect_phase_seconds
from ..partition import BalanceConstraint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import Engine


@dataclass(frozen=True)
class SweepPoint:
    """One configuration point and its measured outcome.

    ``phase_seconds`` sums per-phase pass-engine timings over the point's
    runs (see :data:`repro.telemetry.PHASE_STAT_KEYS`); empty for results
    recorded before phase timing existed.
    """

    overrides: Tuple[Tuple[str, Any], ...]
    best_cut: float
    mean_cut: float
    seconds_per_run: float
    phase_seconds: Tuple[Tuple[str, float], ...] = ()

    def phase_dict(self) -> Dict[str, float]:
        """The per-phase timings as a plain {phase_stat: seconds} dict."""
        return dict(self.phase_seconds)

    def override_dict(self) -> Dict[str, Any]:
        """The grid point as a plain {field: value} dict."""
        return dict(self.overrides)


@dataclass
class SweepResult:
    """All points of one sweep, with convenience accessors."""

    circuit: str
    runs_per_point: int
    points: List[SweepPoint] = field(default_factory=list)

    def best_point(self) -> SweepPoint:
        """The point with the lowest best cut (mean cut breaks ties)."""
        if not self.points:
            raise ValueError("empty sweep")
        return min(self.points, key=lambda p: (p.best_cut, p.mean_cut))

    def format_text(self) -> str:
        """Fixed-width text table of every sweep point."""
        if not self.points:
            return "(empty sweep)"
        keys = [k for k, _ in self.points[0].overrides]
        header = (
            "  ".join(f"{k:>22s}" for k in keys)
            + f"{'best':>8s}{'mean':>9s}{'s/run':>8s}"
        )
        lines = [f"sweep on {self.circuit} ({self.runs_per_point} runs/point)",
                 header, "-" * len(header)]
        for p in self.points:
            cells = "  ".join(
                f"{str(v):>22s}" for _, v in p.overrides
            )
            lines.append(
                f"{cells}{p.best_cut:>8.0f}{p.mean_cut:>9.1f}"
                f"{p.seconds_per_run:>8.3f}"
            )
        return "\n".join(lines)


def sweep_prop_config(
    graph: Hypergraph,
    grid: Mapping[str, Sequence[Any]],
    base_config: Optional[PropConfig] = None,
    runs: int = 3,
    balance: Optional[BalanceConstraint] = None,
    base_seed: int = 0,
    circuit_name: str = "",
    engine: Optional["Engine"] = None,
) -> SweepResult:
    """Cartesian sweep of PropConfig fields.

    ``grid`` maps field names to candidate values, e.g.
    ``{"refinement_iterations": [0, 1, 2, 4], "pinit": [0.8, 0.95]}``.
    Invalid field names or values surface as the usual PropConfig
    validation errors at sweep-construction time (fail fast, before any
    compute is spent).

    With ``engine`` given, the whole (config point × seed) grid runs as
    one engine batch — every worker stays busy across point boundaries,
    and the engine's cache memoizes repeated points across sweeps.  The
    measured cuts are bit-identical to the sequential path.
    """
    if not grid:
        raise ValueError("empty sweep grid")
    if runs < 1:
        raise ValueError("runs must be >= 1")
    if base_config is None:
        base_config = PropConfig()
    if engine is None:
        from .tables import engine_from_env

        engine = engine_from_env()

    keys = list(grid)
    combos = list(itertools.product(*(grid[k] for k in keys)))
    # Validate every configuration before running anything.
    configs = [
        base_config.with_overrides(**dict(zip(keys, combo)))
        for combo in combos
    ]

    result = SweepResult(circuit=circuit_name, runs_per_point=runs)
    if engine is not None:
        _sweep_with_engine(
            result, graph, keys, combos, configs, runs, balance, base_seed,
            circuit_name, engine,
        )
        return result
    for combo, config in zip(combos, configs):
        outcome = run_many(
            PropPartitioner(config),
            graph,
            runs=runs,
            balance=balance,
            base_seed=base_seed,
            circuit_name=circuit_name,
        )
        result.points.append(
            SweepPoint(
                overrides=tuple(zip(keys, combo)),
                best_cut=outcome.best_cut,
                mean_cut=outcome.mean_cut,
                seconds_per_run=outcome.seconds_per_run,
                phase_seconds=tuple(sorted(outcome.phase_seconds.items())),
            )
        )
    return result


def _sweep_with_engine(
    result: SweepResult,
    graph: Hypergraph,
    keys: List[str],
    combos: List[Tuple[Any, ...]],
    configs: List[PropConfig],
    runs: int,
    balance: Optional[BalanceConstraint],
    base_seed: int,
    circuit_name: str,
    engine: "Engine",
) -> None:
    """Fan the (config point × seed) grid through one engine batch."""
    from ..engine import WorkUnit, seed_stream

    seeds = seed_stream(base_seed, runs)
    units = [
        WorkUnit(
            graph=graph,
            partitioner=PropPartitioner(config),
            seed=seed,
            balance=balance,
            tag=f"{circuit_name}#{point}",
        )
        for point, config in enumerate(configs)
        for seed in seeds
    ]
    outcomes = engine.run(units)
    for point, combo in enumerate(combos):
        cell = outcomes[point * runs:(point + 1) * runs]
        cuts = [u.result.cut for u in cell]
        phases: Dict[str, float] = {}
        for u in cell:
            for key, value in collect_phase_seconds(u.result.stats).items():
                phases[key] = phases.get(key, 0.0) + value
        result.points.append(
            SweepPoint(
                overrides=tuple(zip(keys, combo)),
                best_cut=min(cuts),
                mean_cut=sum(cuts) / len(cuts),
                seconds_per_run=sum(u.seconds for u in cell) / len(cell),
                phase_seconds=tuple(sorted(phases.items())),
            )
        )
