"""The paper's Figure 1 worked example, reconstructed exactly.

Figure 1 compares FM, LA-3 and PROP gains on an 11-node fragment of V1:

* nodes 1, 2, 3 each sit alone on two cut nets (FM gain 2);
* node 1 additionally shares cut net ``n9`` with nodes 4–7,
  node 2 shares ``n10`` with nodes 8, 9, and node 3 shares ``n11`` with
  nodes 10, 11;
* nodes 10 and 11 each also sit alone on one cut net (``n5`` / ``n8``,
  FM gain 1); nodes 4–9 each have one internal net (``n12``–``n17``)
  to a hidden V1 partner "of probability 0.5" (FM gain −1).

Reconstruction choices (verified against every number the paper prints):

* every cut net carries **three** V2 anchor pins — enough that LA-3's
  negative terms fall beyond lookahead level 3, matching the printed
  vectors (2,0,0)/(2,0,1)/(2,0,1); the anchors are *locked* so their move
  probability is 0, matching the figure's convention that the
  ``p(n^{2→1})`` terms are equal (and vanish) for all cut nets;
* the figure's iteration-1 probability map is
  ``p = clip(0.5 + 0.3·g, 0, 1)`` (g=2 → 1, 1 → 0.8, −1 → 0.2, 0 → 0.5);
* hidden internal partners are assigned probability 0.5 directly, as the
  figure stipulates.

Expected values (paper Fig. 1(c)): g(1) = 2.0016, g(2) = 2.04,
g(3) = 2.64, g(10) = g(11) = 1.8, g(8) = g(9) = −0.3,
g(4..7) = −0.492 (printed as −0.49).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..baselines.la import gain_vector
from ..core.gains import ProbabilisticGainEngine
from ..core.probability import LinearProbabilityMap
from ..hypergraph import Hypergraph, HypergraphBuilder
from ..partition import Partition

#: Paper labels of the visible V1 nodes.
VISIBLE_NODES = tuple(range(1, 12))

#: The figure's iteration-1 probability map: clip(0.5 + 0.3 g, 0, 1).
FIGURE1_PROBABILITY_MAP = LinearProbabilityMap(
    pmin=0.0, pmax=1.0, glo=-5.0 / 3.0, gup=5.0 / 3.0
)

#: Exact values printed in Fig. 1(c) (node 4..7 shown rounded as −0.49).
EXPECTED_PROP_GAINS: Dict[int, float] = {
    1: 2.0016,
    2: 2.04,
    3: 2.64,
    4: -0.492,
    5: -0.492,
    6: -0.492,
    7: -0.492,
    8: -0.3,
    9: -0.3,
    10: 1.8,
    11: 1.8,
}

#: FM gains of Fig. 1(a).
EXPECTED_FM_GAINS: Dict[int, float] = {
    1: 2, 2: 2, 3: 2, 4: -1, 5: -1, 6: -1, 7: -1, 8: -1, 9: -1, 10: 1, 11: 1,
}

#: LA-3 gain vectors printed for nodes 1, 2, 3 in Fig. 1(a).
EXPECTED_LA3_VECTORS: Dict[int, Tuple[float, float, float]] = {
    1: (2, 0, 0),
    2: (2, 0, 1),
    3: (2, 0, 1),
}

#: Iteration-1 (deterministic-gain-derived) probabilities of Fig. 1(b).
EXPECTED_INITIAL_PROBABILITIES: Dict[int, float] = {
    1: 1.0, 2: 1.0, 3: 1.0, 4: 0.2, 5: 0.2, 6: 0.2, 7: 0.2,
    8: 0.2, 9: 0.2, 10: 0.8, 11: 0.8,
}

_ANCHORS_PER_CUT_NET = 3
_HIDDEN_PROBABILITY = 0.5


@dataclass
class Figure1Circuit:
    """The reconstructed Figure-1 netlist with its bookkeeping maps."""

    graph: Hypergraph
    node_index: Dict[int, int]        # paper label -> node id
    hidden_partners: List[int]        # hidden V1 nodes (one per node 4..9)
    anchors: List[int]                # locked V2 nodes
    sides: List[int]                  # 0 = V1, 1 = V2
    net_index: Dict[str, int]         # paper net name -> net id

    def make_partition(self) -> Partition:
        """Partition with the V2 anchors locked (the figure's convention)."""
        partition = Partition(self.graph, self.sides)
        for v in self.anchors:
            partition.lock(v)
        return partition


def build_figure1() -> Figure1Circuit:
    """Construct the Figure-1 circuit (see module docstring)."""
    b = HypergraphBuilder()
    node_index = {label: b.add_node(name=f"v{label}") for label in VISIBLE_NODES}
    hidden = [b.add_node(name=f"h{label}") for label in range(4, 10)]
    anchors: List[int] = []
    net_index: Dict[str, int] = {}

    def cut_net(name: str, members: List[int]) -> None:
        pins = list(members)
        for i in range(_ANCHORS_PER_CUT_NET):
            a = b.add_node(name=f"{name}_anchor{i}")
            anchors.append(a)
            pins.append(a)
        net_index[name] = b.add_net(pins, name=name)

    # Cut nets n1..n8: each a single visible V1 node against anchors.
    sole_pins = {
        "n1": 1, "n2": 1, "n3": 2, "n4": 2,
        "n5": 10, "n6": 3, "n7": 3, "n8": 11,
    }
    for name in ("n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8"):
        cut_net(name, [node_index[sole_pins[name]]])
    # Cut nets n9, n10, n11: the lookahead-relevant shared nets.
    cut_net("n9", [node_index[v] for v in (1, 4, 5, 6, 7)])
    cut_net("n10", [node_index[v] for v in (2, 8, 9)])
    cut_net("n11", [node_index[v] for v in (3, 10, 11)])
    # Internal nets n12..n17: nodes 4..9 with one hidden partner each.
    for offset, label in enumerate(range(4, 10)):
        net_index[f"n{12 + offset}"] = b.add_net(
            [node_index[label], hidden[offset]], name=f"n{12 + offset}"
        )

    graph = b.build()
    sides = [0] * graph.num_nodes
    for a in anchors:
        sides[a] = 1
    return Figure1Circuit(
        graph=graph,
        node_index=node_index,
        hidden_partners=hidden,
        anchors=anchors,
        sides=sides,
        net_index=net_index,
    )


def figure1_fm_gains(circuit: Figure1Circuit) -> Dict[int, float]:
    """Deterministic FM gains (Eqn. 1) of the visible nodes — Fig. 1(a)."""
    partition = circuit.make_partition()
    return {
        label: partition.immediate_gain(circuit.node_index[label])
        for label in VISIBLE_NODES
    }


def figure1_la3_vectors(
    circuit: Figure1Circuit,
) -> Dict[int, Tuple[float, ...]]:
    """LA-3 gain vectors of the visible nodes — Fig. 1(a)."""
    partition = circuit.make_partition()
    return {
        label: gain_vector(partition, circuit.node_index[label], 3)
        for label in VISIBLE_NODES
    }


def figure1_initial_probabilities(circuit: Figure1Circuit) -> Dict[int, float]:
    """Iteration-1 probabilities from deterministic gains — Fig. 1(b)."""
    gains = figure1_fm_gains(circuit)
    return {
        label: FIGURE1_PROBABILITY_MAP(g) for label, g in gains.items()
    }


def figure1_prop_gains(circuit: Figure1Circuit) -> Dict[int, float]:
    """Iteration-2 probabilistic gains — Fig. 1(c).

    Probabilities: visible nodes from their deterministic gains through the
    figure's map, hidden partners at 0.5, anchors locked (p = 0); then one
    application of Eqns. (3)/(4).
    """
    partition = circuit.make_partition()
    engine = ProbabilisticGainEngine(partition)
    for label, p in figure1_initial_probabilities(circuit).items():
        engine.set_probability(circuit.node_index[label], p)
    for h in circuit.hidden_partners:
        engine.set_probability(h, _HIDDEN_PROBABILITY)
    return {
        label: engine.node_gain(circuit.node_index[label])
        for label in VISIBLE_NODES
    }


def best_move_ranking(circuit: Figure1Circuit) -> List[int]:
    """Visible nodes ranked by PROP gain, best first.

    The paper's punchline: node 3 ranks strictly first, node 2 second,
    node 1 third — the ordering FM cannot see at all and LA-3 sees only
    partially.
    """
    gains = figure1_prop_gains(circuit)
    return sorted(VISIBLE_NODES, key=lambda v: gains[v], reverse=True)
