"""One-shot report generation: every table and figure in a single run.

``python -m repro.experiments [outdir]`` regenerates Figure 1 and
Tables 1–4 with the current bench-scale settings and writes one text file
per experiment plus a combined ``report.txt`` — the programmatic twin of
the pytest benchmark harness, convenient for quick shape checks without
pytest.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

from ..hypergraph import BENCHMARK_NAMES, TABLE1_CHARACTERISTICS
from .figure1 import (
    best_move_ranking,
    build_figure1,
    figure1_fm_gains,
    figure1_la3_vectors,
    figure1_prop_gains,
)
from .paper_data import (
    PAPER_TABLE2_TOTALS,
    PAPER_TABLE3_TOTALS,
    PAPER_TABLE4_TOTALS,
)
from .tables import (
    bench_scale_from_env,
    format_table4_times,
    run_table2,
    run_table3,
    run_table4,
    table1_rows,
)


def figure1_report() -> str:
    """Figure 1 as text: per-node FM gain, LA-3 vector, PROP gain."""
    circuit = build_figure1()
    fm = figure1_fm_gains(circuit)
    la = figure1_la3_vectors(circuit)
    prop = figure1_prop_gains(circuit)
    lines = [
        "Figure 1 — worked example (exact reproduction)",
        f"{'node':>5s} {'FM':>5s} {'LA-3':>12s} {'PROP':>9s}",
    ]
    for label in sorted(fm):
        vec = ",".join(f"{x:g}" for x in la[label])
        lines.append(
            f"{label:>5d} {fm[label]:>5.0f} {('(' + vec + ')'):>12s} "
            f"{prop[label]:>9.4f}"
        )
    lines.append(f"PROP ranking (best first): {best_move_ranking(circuit)}")
    return "\n".join(lines)


def table1_report() -> str:
    """Table 1 as text with exactness check against the paper."""
    rows = table1_rows(scale=1.0)
    lines = [
        "Table 1 — benchmark characteristics (scale 1.0)",
        f"{'circuit':<12s}{'nodes':>8s}{'nets':>8s}{'pins':>8s}   vs paper",
    ]
    for name in BENCHMARK_NAMES:
        row = rows[name]
        exact = tuple(row.values()) == TABLE1_CHARACTERISTICS[name]
        lines.append(
            f"{name:<12s}{row['nodes']:>8d}{row['nets']:>8d}"
            f"{row['pins']:>8d}   {'exact' if exact else 'MISMATCH'}"
        )
    return "\n".join(lines)


def table2_report() -> str:
    """Table 2 regenerated at bench scale, plus the paper's totals."""
    table = run_table2()
    paper = ", ".join(f"{a}: {v}" for a, v in PAPER_TABLE2_TOTALS.items())
    return table.format_text() + f"\npaper totals (full scale): {paper}"


def table3_report() -> str:
    """Table 3 regenerated at bench scale, plus the paper's totals."""
    table = run_table3()
    paper = ", ".join(f"{a}: {v}" for a, v in PAPER_TABLE3_TOTALS.items())
    return table.format_text() + f"\npaper totals (full scale): {paper}"


def table4_report() -> str:
    """Table 4 timings regenerated at bench scale, plus the paper's totals."""
    table = run_table4()
    paper = ", ".join(f"{a}: {v}" for a, v in PAPER_TABLE4_TOTALS.items())
    return format_table4_times(table) + f"\npaper total seconds: {paper}"


#: Experiment name -> report builder; order matches the paper.
REPORT_SECTIONS: Dict[str, Callable[[], str]] = {
    "figure1": figure1_report,
    "table1": table1_report,
    "table2": table2_report,
    "table3": table3_report,
    "table4": table4_report,
}


def generate_full_report(outdir: Path) -> List[Path]:
    """Run every experiment; write per-section files + combined report.

    Returns the list of written paths (sections first, combined last).
    """
    outdir.mkdir(parents=True, exist_ok=True)
    scale, runs_scale, names = bench_scale_from_env()
    header = (
        f"PROP reproduction report — scale={scale} runs_scale={runs_scale} "
        f"circuits={','.join(names)}"
    )
    written: List[Path] = []
    combined = [header]
    for name, builder in REPORT_SECTIONS.items():
        started = time.perf_counter()
        text = builder()
        elapsed = time.perf_counter() - started
        section = f"{text}\n[{name} regenerated in {elapsed:.1f}s]"
        path = outdir / f"{name}.txt"
        path.write_text(section + "\n")
        written.append(path)
        combined.append(section)
    combined_path = outdir / "report.txt"
    combined_path.write_text("\n\n".join(combined) + "\n")
    written.append(combined_path)
    return written


def main(argv: List[str]) -> int:
    """Entry point of ``python -m repro.experiments [outdir]``."""
    outdir = Path(argv[0]) if argv else Path("report_out")
    print(f"regenerating all experiments into {outdir}/ ...")
    for path in generate_full_report(outdir):
        print(f"  wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
