"""The numbers published in the paper's tables, transcribed for comparison.

EXPERIMENTS.md and the shape-checking benches compare our measured results
against these.  ``None`` marks entries the paper leaves blank.  All cutset
values are net counts (unit costs).

Sources: Dutt & Deng, DAC 1996 — Table 2 (50-50% balance), Table 3 (45-55%
balance), Table 4 (CPU seconds, totals row).
"""

from __future__ import annotations

from typing import Dict, Optional

#: Table 2 — 50-50% balance.  circuit -> {algorithm: best cut}.
PAPER_TABLE2: Dict[str, Dict[str, Optional[int]]] = {
    "balu":      {"FM100": 32,  "FM40": 32,  "FM20": 32,  "LA-2": 31,  "LA-3": 31,  "WINDOW": None, "PROP": 32},
    "bm1":       {"FM100": 55,  "FM40": 57,  "FM20": 65,  "LA-2": 58,  "LA-3": 55,  "WINDOW": 70,   "PROP": 54},
    "p1":        {"FM100": 57,  "FM40": 57,  "FM20": 59,  "LA-2": 59,  "LA-3": 55,  "WINDOW": 60,   "PROP": 59},
    "p2":        {"FM100": 236, "FM40": 238, "FM20": 245, "LA-2": 215, "LA-3": 183, "WINDOW": 258,  "PROP": 154},
    "s13207":    {"FM100": 92,  "FM40": 101, "FM20": 101, "LA-2": 81,  "LA-3": 89,  "WINDOW": None, "PROP": 83},
    "s15850":    {"FM100": 112, "FM40": 120, "FM20": 120, "LA-2": 122, "LA-3": 75,  "WINDOW": None, "PROP": 73},
    "s9234":     {"FM100": 53,  "FM40": 59,  "FM20": 59,  "LA-2": 57,  "LA-3": 58,  "WINDOW": None, "PROP": 55},
    "struct":    {"FM100": 45,  "FM40": 47,  "FM20": 52,  "LA-2": 45,  "LA-3": 45,  "WINDOW": None, "PROP": 38},
    "19ks":      {"FM100": 142, "FM40": 150, "FM20": 150, "LA-2": 141, "LA-3": 153, "WINDOW": 136,  "PROP": 120},
    "biomed":    {"FM100": 83,  "FM40": 83,  "FM20": 83,  "LA-2": 122, "LA-3": 91,  "WINDOW": 164,  "PROP": 88},
    "industry2": {"FM100": 428, "FM40": 501, "FM20": 501, "LA-2": 492, "LA-3": 378, "WINDOW": 392,  "PROP": 254},
    "t2":        {"FM100": 115, "FM40": 115, "FM20": 115, "LA-2": 124, "LA-3": 105, "WINDOW": 105,  "PROP": 91},
    "t3":        {"FM100": 72,  "FM40": 72,  "FM20": 72,  "LA-2": 78,  "LA-3": 90,  "WINDOW": 67,   "PROP": 58},
    "t4":        {"FM100": 86,  "FM40": 88,  "FM20": 97,  "LA-2": 94,  "LA-3": 88,  "WINDOW": 61,   "PROP": 58},
    "t5":        {"FM100": 97,  "FM40": 97,  "FM20": 149, "LA-2": 109, "LA-3": 96,  "WINDOW": 101,  "PROP": 82},
    "t6":        {"FM100": 71,  "FM40": 71,  "FM20": 71,  "LA-2": 70,  "LA-3": 63,  "WINDOW": 70,   "PROP": 81},
}

#: Table 2 totals row and PROP's headline improvement percentages.
PAPER_TABLE2_TOTALS = {
    "FM100": 1776, "FM40": 1888, "FM20": 1971,
    "LA-2": 1898, "LA-3": 1655, "WINDOW": 1484, "PROP": 1380,
}
PAPER_TABLE2_IMPROVEMENTS = {
    "FM100": 22.3, "FM40": 26.9, "FM20": 30.0,
    "LA-2": 27.3, "LA-3": 16.6, "WINDOW": 25.9,
}

#: Table 3 — 45-55% balance.  circuit -> {algorithm: best cut}.
PAPER_TABLE3: Dict[str, Dict[str, Optional[int]]] = {
    "balu":      {"MELO": 28,  "PARABOLI": 41,  "EIG1": 110, "PROP": 27},
    "bm1":       {"MELO": 48,  "PARABOLI": None, "EIG1": 75,  "PROP": 50},
    "p1":        {"MELO": 64,  "PARABOLI": 53,  "EIG1": 75,  "PROP": 47},
    "p2":        {"MELO": 169, "PARABOLI": 146, "EIG1": 254, "PROP": 143},
    "s13207":    {"MELO": 104, "PARABOLI": 91,  "EIG1": 110, "PROP": 75},
    "s15850":    {"MELO": 52,  "PARABOLI": 91,  "EIG1": 125, "PROP": 65},
    "s9234":     {"MELO": 79,  "PARABOLI": 74,  "EIG1": 166, "PROP": 41},
    "struct":    {"MELO": 38,  "PARABOLI": 40,  "EIG1": 49,  "PROP": 33},
    "19ks":      {"MELO": 119, "PARABOLI": None, "EIG1": 179, "PROP": 105},
    "biomed":    {"MELO": 115, "PARABOLI": 135, "EIG1": 286, "PROP": 83},
    "industry2": {"MELO": 319, "PARABOLI": 193, "EIG1": 525, "PROP": 220},
    "t2":        {"MELO": 106, "PARABOLI": None, "EIG1": 196, "PROP": 90},
    "t3":        {"MELO": 60,  "PARABOLI": None, "EIG1": 85,  "PROP": 59},
    "t4":        {"MELO": 61,  "PARABOLI": None, "EIG1": 207, "PROP": 52},
    "t5":        {"MELO": 102, "PARABOLI": None, "EIG1": 167, "PROP": 79},
    "t6":        {"MELO": 90,  "PARABOLI": None, "EIG1": 295, "PROP": 76},
}

PAPER_TABLE3_TOTALS = {"MELO": 1554, "PARABOLI": 864, "EIG1": 2904, "PROP": 1245}
PAPER_TABLE3_IMPROVEMENTS = {"MELO": 19.9, "PARABOLI": 15.0, "EIG1": 57.1}

#: Table 4 — total CPU seconds over all circuits × all runs (paper's last
#: row; PROP's "all circuits" figure).  Used only for *ratio* shapes.
PAPER_TABLE4_TOTALS = {
    "FM-bucket x100": 2555.0,
    "FM-tree x100": 7501.0,
    "LA-2 x40": 2361.2,
    "LA-3 x20": 5331.0,
    "PROP x20": 2383.0,
    "MELO": 5177.0,          # all circuits
    "EIG1": 1408.0,          # 9 circuits
    "PARABOLI": 7567.0,      # 9 circuits
}

#: Headline relative-speed claims of Sec. 4 (for the scaling bench).
PAPER_SPEED_CLAIMS = {
    "prop_vs_fm_bucket_per_run": 4.6,   # "PROP is about 4.6 times slower than FM per run"
    "prop_vs_fm_tree_total": 3.15,      # "3.15 times faster than FM100-tree"
    "prop_vs_paraboli": 3.9,
    "prop_vs_la3": 2.2,
    "prop_vs_melo": 2.2,
}
