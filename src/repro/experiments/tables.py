"""Regeneration of the paper's Tables 1–4.

Each ``run_tableN`` function executes the corresponding experiment and
returns a :class:`ComparisonTable`; the benchmark harness
(``benchmarks/``) wraps these with pytest-benchmark and prints the rows.

Scaling: the paper's full protocol (16 circuits up to 12.6k nodes, up to
100 runs each) is hours of pure-Python compute, so every runner accepts a
circuit ``scale`` and a ``runs_scale`` (both default to the values in
:func:`bench_scale_from_env`, overridable via the ``REPRO_BENCH_SCALE`` /
``REPRO_BENCH_RUNS_SCALE`` / ``REPRO_BENCH_CIRCUITS`` environment
variables).  Scaled circuits come from the same generator with identical
statistics; relative algorithm behaviour is preserved (see DESIGN.md).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import Engine

from ..baselines import (
    Eig1Partitioner,
    FMPartitioner,
    LAPartitioner,
    MeloPartitioner,
    ParaboliPartitioner,
    WindowPartitioner,
)
from ..core import PropPartitioner
from ..hypergraph import (
    BENCHMARK_NAMES,
    Hypergraph,
    compute_stats,
    make_benchmark,
)
from ..multirun import MultiRunResult, Partitioner, run_many
from ..partition import BalanceConstraint, improvement_percent

#: Default circuit subset for quick benches: the small/medium circuits plus
#: p2 and s9234, the two where iterative-method separation is visible even
#: at reduced scale (larger search spaces -> more local minima for FM).
DEFAULT_BENCH_CIRCUITS: Tuple[str, ...] = (
    "balu", "bm1", "p1", "struct", "t2", "t3", "t4", "t5", "t6", "19ks",
    "p2", "s9234",
)


def bench_scale_from_env() -> Tuple[float, float, Tuple[str, ...]]:
    """(circuit scale, runs scale, circuit names) honoring env overrides."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
    runs_scale = float(os.environ.get("REPRO_BENCH_RUNS_SCALE", "0.25"))
    names_env = os.environ.get("REPRO_BENCH_CIRCUITS", "")
    if names_env.strip():
        names = tuple(n.strip() for n in names_env.split(",") if n.strip())
    else:
        names = DEFAULT_BENCH_CIRCUITS if scale < 1.0 else BENCHMARK_NAMES
    return scale, runs_scale, names


def _scaled_runs(paper_runs: int, runs_scale: float) -> int:
    return max(1, round(paper_runs * runs_scale))


def engine_from_env() -> Optional["Engine"]:
    """An engine when ``REPRO_ENGINE_WORKERS`` is set, else ``None``.

    This is what lets ``REPRO_ENGINE_WORKERS=8 pytest benchmarks/`` fan
    the table regenerations across workers without touching any call
    site; unset, the runners keep the plain sequential path.
    """
    if not os.environ.get("REPRO_ENGINE_WORKERS", "").strip():
        return None
    from ..engine import Engine

    return Engine()


@dataclass
class ComparisonTable:
    """Best-of-N cut results, circuits × algorithms, plus timing."""

    title: str
    algorithms: List[str]
    reference: str  # the algorithm improvements are measured against
    rows: Dict[str, Dict[str, MultiRunResult]] = field(default_factory=dict)

    def add_as(self, circuit: str, label: str, result: MultiRunResult) -> None:
        """Record a result under a table-column label (e.g. "FM100")."""
        self.rows.setdefault(circuit, {})[label] = result

    def cut(self, circuit: str, algorithm: str) -> float:
        """Best cut recorded for (circuit, algorithm)."""
        return self.rows[circuit][algorithm].best_cut

    def totals(self) -> Dict[str, float]:
        """Total best cut per algorithm over all circuits (paper's last row)."""
        out = {a: 0.0 for a in self.algorithms}
        for row in self.rows.values():
            for a in self.algorithms:
                out[a] += row[a].best_cut
        return out

    def total_seconds(self) -> Dict[str, float]:
        """Total wall-clock seconds per algorithm over all circuits."""
        out = {a: 0.0 for a in self.algorithms}
        for row in self.rows.values():
            for a in self.algorithms:
                out[a] += row[a].total_seconds
        return out

    def improvements(self) -> Dict[str, float]:
        """Reference algorithm's improvement % vs each other algorithm,
        computed on totals with the paper's (diff / larger) × 100 metric."""
        totals = self.totals()
        ref = totals[self.reference]
        return {
            a: improvement_percent(ref, totals[a])
            for a in self.algorithms
            if a != self.reference
        }

    def effective_runs(self) -> Dict[str, int]:
        """Completed (successful) runs per algorithm over all circuits.

        Under adaptive restart policies or error-collecting engines this
        can be fewer than the budgeted counts — the "effective runs
        used" row of the rendered table.
        """
        out = {a: 0 for a in self.algorithms}
        for row in self.rows.values():
            for a in self.algorithms:
                out[a] += len(row[a].cuts)
        return out

    def format_text(self) -> str:
        """Fixed-width text rendering (same layout idea as the paper).

        Cells read ``best (mean±stddev)`` — the paper reports only the
        best of N, but the error bar is what says whether a column's
        lead is real run-to-run or one lucky restart — plus a final
        "runs used" row (see :meth:`effective_runs`).
        """
        from ..analysis.distribution import cut_distribution

        algs = self.algorithms
        cells: Dict[str, Dict[str, str]] = {}
        for circuit, row in self.rows.items():
            cells[circuit] = {}
            for a in algs:
                result = row[a]
                if result.cuts:
                    d = cut_distribution(result.cuts)
                    cells[circuit][a] = (
                        f"{d.best:.0f} ({d.mean:.1f}±{d.stddev:.1f})"
                    )
                else:
                    cells[circuit][a] = "-"
        width = max(
            [10, max(len(a) for a in algs) + 2]
            + [len(c) + 2 for row in cells.values() for c in row.values()]
        )
        header = "circuit".ljust(12) + "".join(a.rjust(width) for a in algs)
        lines = [self.title, header, "-" * len(header)]
        for circuit in self.rows:
            lines.append(
                circuit.ljust(12)
                + "".join(cells[circuit][a].rjust(width) for a in algs)
            )
        totals = self.totals()
        lines.append("-" * len(header))
        lines.append(
            "TOTAL".ljust(12)
            + "".join(f"{totals[a]:>{width}.0f}" for a in algs)
        )
        used = self.effective_runs()
        lines.append(
            "runs used".ljust(12)
            + "".join(f"{used[a]:>{width}d}" for a in algs)
        )
        imps = self.improvements()
        lines.append(
            f"{self.reference} improvement %: "
            + "  ".join(f"{a}: {imps[a]:+.1f}" for a in imps)
        )
        return "\n".join(lines)


def _run_comparison(
    title: str,
    algorithms: Sequence[Tuple[str, Partitioner, int]],
    circuits: Dict[str, Hypergraph],
    balance_factory: Callable[[Hypergraph], BalanceConstraint],
    reference: str,
    base_seed: int = 0,
    engine: Optional["Engine"] = None,
) -> ComparisonTable:
    table = ComparisonTable(
        title=title,
        algorithms=[label for label, _, _ in algorithms],
        reference=reference,
    )
    if engine is not None:
        _run_comparison_engine(
            table, algorithms, circuits, balance_factory, base_seed, engine
        )
        return table
    for circuit_name, graph in circuits.items():
        balance = balance_factory(graph)
        for label, partitioner, runs in algorithms:
            result = run_many(
                partitioner,
                graph,
                runs=runs,
                balance=balance,
                base_seed=base_seed,
                circuit_name=circuit_name,
            )
            table.add_as(circuit_name, label, result)
    return table


def _run_comparison_engine(
    table: ComparisonTable,
    algorithms: Sequence[Tuple[str, Partitioner, int]],
    circuits: Dict[str, Hypergraph],
    balance_factory: Callable[[Hypergraph], BalanceConstraint],
    base_seed: int,
    engine: "Engine",
) -> None:
    """Fan the whole (circuit × algorithm × seed) grid through one engine
    batch, then fold the unit results back into per-cell MultiRunResults.

    One batch (rather than one ``engine.run`` per cell) keeps every
    worker busy across cell boundaries: a slow PROP cell no longer
    serializes behind a fleet of fast FM runs.  Folding is by (circuit,
    label) in seed order, so the table is bit-identical to the
    sequential path.
    """
    from ..engine import WorkUnit, seed_stream
    from ..multirun import effective_runs

    units = []
    cells: List[Tuple[str, str, Partitioner, Hypergraph,
                      BalanceConstraint, int]] = []
    for circuit_name, graph in circuits.items():
        balance = balance_factory(graph)
        for label, partitioner, runs in algorithms:
            runs = effective_runs(partitioner, runs)
            cells.append(
                (circuit_name, label, partitioner, graph, balance, runs)
            )
            for seed in seed_stream(base_seed, runs):
                units.append(
                    WorkUnit(
                        graph=graph,
                        partitioner=partitioner,
                        seed=seed,
                        balance=balance,
                        tag=f"{circuit_name}/{label}",
                    )
                )

    start = time.perf_counter()
    outcomes = engine.run(units)
    batch_seconds = time.perf_counter() - start

    cursor = 0
    for circuit_name, label, partitioner, graph, balance, runs in cells:
        cell = outcomes[cursor:cursor + runs]
        cursor += runs
        result = MultiRunResult(
            algorithm=getattr(partitioner, "name", type(partitioner).__name__),
            circuit=circuit_name,
            runs=runs,
            partitioner=partitioner,
            graph=graph,
            balance=balance,
        )
        for unit_result in cell:
            result.seeds.append(unit_result.unit.seed)
            result.cuts.append(unit_result.result.cut)
            result.run_seconds.append(unit_result.seconds)
            if result.best is None or unit_result.result.cut < result.best.cut:
                result.best = unit_result.result
        # Attribute the batch wall clock proportionally to compute time,
        # so per-cell totals still sum to the observed wall clock.
        cell_compute = sum(u.seconds for u in cell)
        total_compute = sum(u.seconds for u in outcomes) or 1.0
        result.total_seconds = batch_seconds * (cell_compute / total_compute)
        table.add_as(circuit_name, label, result)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------
def table1_rows(
    scale: float = 1.0, names: Optional[Sequence[str]] = None
) -> Dict[str, Dict[str, int]]:
    """Regenerate Table 1: circuit -> {nodes, nets, pins}."""
    if names is None:
        names = BENCHMARK_NAMES
    out = {}
    for name in names:
        stats = compute_stats(make_benchmark(name, scale=scale))
        out[name] = stats.as_table_row()
    return out


# ---------------------------------------------------------------------------
# Table 2 — 50-50% balance: FM100/FM40/FM20, LA-2, LA-3, WINDOW, PROP20
# ---------------------------------------------------------------------------
def run_table2(
    scale: Optional[float] = None,
    runs_scale: Optional[float] = None,
    names: Optional[Sequence[str]] = None,
    base_seed: int = 0,
    engine: Optional["Engine"] = None,
) -> ComparisonTable:
    """Regenerate Table 2 (50-50%% cutsets) at the given or env-configured scale.

    With ``engine`` given, the whole (circuit × algorithm × seed) grid is
    fanned through it — parallel across workers, memoized by its cache —
    with a bit-identical table either way.
    """
    env_scale, env_runs, env_names = bench_scale_from_env()
    scale = env_scale if scale is None else scale
    runs_scale = env_runs if runs_scale is None else runs_scale
    names = env_names if names is None else names
    if engine is None:
        engine = engine_from_env()

    circuits = {n: make_benchmark(n, scale=scale) for n in names}
    algorithms: List[Tuple[str, Partitioner, int]] = [
        ("FM100", FMPartitioner("bucket"), _scaled_runs(100, runs_scale)),
        ("FM40", FMPartitioner("bucket"), _scaled_runs(40, runs_scale)),
        ("FM20", FMPartitioner("bucket"), _scaled_runs(20, runs_scale)),
        ("LA-2", LAPartitioner(2), _scaled_runs(20, runs_scale)),
        ("LA-3", LAPartitioner(3), _scaled_runs(20, runs_scale)),
        ("WINDOW", WindowPartitioner(), 1),
        ("PROP", PropPartitioner(), _scaled_runs(20, runs_scale)),
    ]
    return _run_comparison(
        "Table 2 — cutsets, 50-50% balance",
        algorithms,
        circuits,
        BalanceConstraint.fifty_fifty,
        reference="PROP",
        base_seed=base_seed,
        engine=engine,
    )


# ---------------------------------------------------------------------------
# Table 3 — 45-55% balance: MELO, PARABOLI, EIG1 vs PROP20
# ---------------------------------------------------------------------------
def run_table3(
    scale: Optional[float] = None,
    runs_scale: Optional[float] = None,
    names: Optional[Sequence[str]] = None,
    base_seed: int = 0,
    engine: Optional["Engine"] = None,
) -> ComparisonTable:
    """Regenerate Table 3 (45-55%% cutsets) at the given or env-configured scale."""
    env_scale, env_runs, env_names = bench_scale_from_env()
    scale = env_scale if scale is None else scale
    runs_scale = env_runs if runs_scale is None else runs_scale
    names = env_names if names is None else names
    if engine is None:
        engine = engine_from_env()

    circuits = {n: make_benchmark(n, scale=scale) for n in names}
    algorithms: List[Tuple[str, Partitioner, int]] = [
        ("MELO", MeloPartitioner(), 1),
        ("PARABOLI", ParaboliPartitioner(), 1),
        ("EIG1", Eig1Partitioner(), 1),
        ("PROP", PropPartitioner(), _scaled_runs(20, runs_scale)),
    ]
    return _run_comparison(
        "Table 3 — cutsets, 45-55% balance",
        algorithms,
        circuits,
        BalanceConstraint.forty_five_fifty_five,
        reference="PROP",
        base_seed=base_seed,
        engine=engine,
    )


# ---------------------------------------------------------------------------
# Table 4 — per-run CPU seconds
# ---------------------------------------------------------------------------
def run_table4(
    scale: Optional[float] = None,
    names: Optional[Sequence[str]] = None,
    runs_per_algorithm: int = 3,
    base_seed: int = 0,
    engine: Optional["Engine"] = None,
) -> ComparisonTable:
    """Per-run timing comparison (cuts are recorded too, but the payload is
    ``.rows[circuit][alg].seconds_per_run``)."""
    env_scale, _, env_names = bench_scale_from_env()
    scale = env_scale if scale is None else scale
    names = env_names if names is None else names
    if engine is None:
        engine = engine_from_env()

    circuits = {n: make_benchmark(n, scale=scale) for n in names}
    algorithms: List[Tuple[str, Partitioner, int]] = [
        ("FM-bucket", FMPartitioner("bucket"), runs_per_algorithm),
        ("FM-tree", FMPartitioner("tree"), runs_per_algorithm),
        ("LA-2", LAPartitioner(2), runs_per_algorithm),
        ("LA-3", LAPartitioner(3), runs_per_algorithm),
        ("PROP", PropPartitioner(), runs_per_algorithm),
        ("EIG1", Eig1Partitioner(), 1),
        ("PARABOLI", ParaboliPartitioner(), 1),
        ("MELO", MeloPartitioner(), 1),
        ("WINDOW", WindowPartitioner(), 1),
    ]
    return _run_comparison(
        "Table 4 — CPU seconds per run",
        algorithms,
        circuits,
        BalanceConstraint.forty_five_fifty_five,
        reference="PROP",
        base_seed=base_seed,
        engine=engine,
    )


def format_table4_times(table: ComparisonTable) -> str:
    """Render Table 4's payload: seconds per run, per circuit."""
    algs = table.algorithms
    width = max(11, max(len(a) for a in algs) + 2)
    header = "circuit".ljust(12) + "".join(a.rjust(width) for a in algs)
    lines = [table.title, header, "-" * len(header)]
    for circuit in table.rows:
        cells = "".join(
            f"{table.rows[circuit][a].seconds_per_run:>{width}.3f}"
            for a in algs
        )
        lines.append(circuit.ljust(12) + cells)
    totals = {
        a: sum(table.rows[c][a].seconds_per_run for c in table.rows)
        for a in algs
    }
    lines.append("-" * len(header))
    lines.append(
        "TOTAL/run".ljust(12) + "".join(f"{totals[a]:>{width}.3f}" for a in algs)
    )
    return "\n".join(lines)
