"""Minimal asyncio client for the service API.

The same no-new-dependencies constraint as the server: raw sockets,
HTTP/1.1 with ``Connection: close``, JSON bodies.  Used by the test
suite, ``scripts/load_smoke.py`` and ``examples/partition_service.py``;
it is also a faithful wire-level reference for clients in any language
(nothing below relies on Python-side shortcuts).

:class:`ServiceClient` is stateless per call — every request opens a
fresh connection, so thousands of concurrent requests multiplex on the
event loop without connection-pool bookkeeping.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, Optional, Tuple


class ServiceError(Exception):
    """Non-2xx API response.

    ``retry_after`` carries the server's ``Retry-After`` header in
    seconds when present (429 load shedding, 503 degraded readiness) —
    ``None`` otherwise.
    """

    def __init__(
        self, status: int, payload: Any,
        retry_after: Optional[int] = None,
    ) -> None:
        message = payload
        if isinstance(payload, dict):
            message = payload.get("error", {}).get("message", payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


class ServiceClient:
    """JSON client for one server address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8642,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    async def _request(
        self, method: str, path: str, body: Optional[Any] = None
    ) -> Tuple[int, Any]:
        payload = b"" if body is None else json.dumps(body).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout
        )
        try:
            writer.write(head + payload)
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(-1), self.timeout)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
        header_lines = header_blob.decode("latin-1").split("\r\n")
        status_line = header_lines[0]
        try:
            status = int(status_line.split()[1])
        except (IndexError, ValueError):
            raise ServiceError(0, f"bad response {status_line!r}") from None
        retry_after: Optional[int] = None
        for line in header_lines[1:]:
            name, sep, value = line.partition(":")
            if sep and name.strip().lower() == "retry-after":
                try:
                    retry_after = int(value.strip())
                except ValueError:
                    pass
        try:
            decoded = json.loads(body_blob.decode() or "null")
        except ValueError:
            decoded = body_blob.decode(errors="replace")
        if status >= 400:
            raise ServiceError(status, decoded, retry_after=retry_after)
        return status, decoded

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    async def health(self) -> Dict[str, Any]:
        """``GET /healthz`` — liveness and version."""
        return (await self._request("GET", "/healthz"))[1]

    async def stats(self) -> Dict[str, Any]:
        """``GET /v1/stats`` — jobs/queue/journal counters."""
        return (await self._request("GET", "/v1/stats"))[1]

    async def readyz(self) -> Dict[str, Any]:
        """``GET /readyz`` — raises :class:`ServiceError` 503 while the
        service is degraded (``retry_after`` set from the header)."""
        return (await self._request("GET", "/readyz"))[1]

    async def submit(
        self,
        spec: Dict[str, Any],
        retries: int = 0,
        max_backoff: float = 2.0,
    ) -> Dict[str, Any]:
        """Submit a job spec; returns the 202 status payload.

        ``retries`` re-attempts a 429-shed submission up to N times,
        honoring the server's ``Retry-After`` capped at ``max_backoff``
        seconds and combined with the engine's deterministic
        exponential backoff (:func:`repro.engine.backoff_delay`, keyed
        on the spec content) — a thousand shed clients spread their
        retries instead of thundering back in lockstep.  Only 429 is
        retried: 4xx schema errors and 409 quarantine are permanent.
        """
        from ..engine import backoff_delay

        attempt = 0
        while True:
            try:
                return (await self._request("POST", "/v1/jobs", spec))[1]
            except ServiceError as exc:
                if exc.status != 429 or attempt >= retries:
                    raise
                key = json.dumps(spec, sort_keys=True)
                delay = backoff_delay(
                    attempt, key, base=0.05, maximum=max_backoff
                )
                if exc.retry_after is not None:
                    delay = min(float(exc.retry_after), max_backoff) + delay
                await asyncio.sleep(delay)
                attempt += 1

    async def job(
        self, job_id: str, include_spec: bool = False
    ) -> Dict[str, Any]:
        """``GET /v1/jobs/{id}`` — one job's status payload."""
        suffix = "?spec=1" if include_spec else ""
        return (await self._request("GET", f"/v1/jobs/{job_id}{suffix}"))[1]

    async def jobs(
        self, state: Optional[str] = None, tenant: Optional[str] = None
    ) -> Dict[str, Any]:
        """``GET /v1/jobs`` — list jobs, optionally filtered."""
        query = "&".join(
            f"{k}={v}"
            for k, v in (("state", state), ("tenant", tenant))
            if v is not None
        )
        path = "/v1/jobs" + (f"?{query}" if query else "")
        return (await self._request("GET", path))[1]

    async def result(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/{id}/result`` — raises 409 until terminal."""
        return (await self._request("GET", f"/v1/jobs/{job_id}/result"))[1]

    async def cancel(self, job_id: str) -> Dict[str, Any]:
        """``POST /v1/jobs/{id}/cancel`` — idempotent cancel."""
        return (await self._request("POST", f"/v1/jobs/{job_id}/cancel"))[1]

    async def quarantine(self) -> Dict[str, Any]:
        """``GET /v1/quarantine`` — quarantined spec fingerprints."""
        return (await self._request("GET", "/v1/quarantine"))[1]

    async def quarantine_bundle(self, fingerprint: str) -> Dict[str, Any]:
        """``GET /v1/quarantine/{fp}`` — entry + diagnostics bundle."""
        return (
            await self._request("GET", f"/v1/quarantine/{fingerprint}")
        )[1]

    async def quarantine_release(self, fingerprint: str) -> Dict[str, Any]:
        """``DELETE /v1/quarantine/{fp}`` — forgive a fingerprint."""
        return (
            await self._request("DELETE", f"/v1/quarantine/{fingerprint}")
        )[1]

    async def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll_seconds: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its result payload."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            status = await self.job(job_id)
            if status["state"] in ("done", "failed", "cancelled", "deadline"):
                return await self.result(job_id)
            if loop.time() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            await asyncio.sleep(poll_seconds)

    async def events(
        self, job_id: str, timeout: float = 60.0
    ) -> AsyncIterator[Tuple[str, Any]]:
        """Stream SSE events as ``(event, payload)`` until terminal state.

        A faithful (if minimal) EventSource parser: accumulates
        ``event:``/``data:`` fields, dispatches on blank line, ignores
        ``:`` comment heartbeats.
        """
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout
        )
        try:
            writer.write(
                f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Accept: text/event-stream\r\n"
                "Connection: close\r\n\r\n".encode()
            )
            await writer.drain()
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), self.timeout
            )
            status = int(head.split(b" ", 2)[1])
            if status >= 400:
                body = await reader.read(-1)
                try:
                    decoded = json.loads(body.decode() or "null")
                except ValueError:
                    decoded = body.decode(errors="replace")
                raise ServiceError(status, decoded)
            event_name = ""
            data_lines = []
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout)
                if not line:
                    return
                text = line.decode().rstrip("\r\n")
                if not text:
                    if data_lines:
                        yield (
                            event_name or "message",
                            json.loads("\n".join(data_lines)),
                        )
                    event_name = ""
                    data_lines = []
                    continue
                if text.startswith(":"):
                    continue  # heartbeat comment
                field_name, _, value = text.partition(":")
                value = value.lstrip(" ")
                if field_name == "event":
                    event_name = value
                elif field_name == "data":
                    data_lines.append(value)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
