"""Durable job state: the jobs journal and crash recovery.

The engine's per-run journals make each job's *units* durable; this
module makes the *job list itself* durable, so a killed server restarts
knowing exactly which jobs existed and where each one stood.

One append-only JSONL file at ``<cache_dir>/service/jobs.jsonl``, using
the same hardening as the engine's run journals — every line sealed
with the :mod:`repro.engine.records` checksum, written whole + flushed
+ fsynced, read back through :func:`iter_journal_records` so torn final
lines are skipped, later records win:

* ``{"kind": "job", "job_id", "seq", "spec": {...}}`` — accepted
  submission (written before the client sees 202);
* ``{"kind": "state", "job_id", "state"}`` — every transition.

:func:`recover` replays the file into the restart plan: terminal jobs
are restored for history, ``queued``/``running`` jobs are re-enqueued
in original submission order with ``recovered=True`` — their engine
runs then resume from the per-run journals, so units completed before
the crash are never recomputed (the "zero lost work" half of the load
smoke's contract; bit-identical cuts are the other half, and follow
from deterministic seeds).
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..engine.journal import iter_journal_records
from ..engine.records import seal
from .jobs import JOB_STATES, TERMINAL_STATES, Job, job_id_for
from .schemas import JobSpec, SchemaError, parse_job_spec

#: Subdirectory of the cache root holding service-level state.
SERVICE_SUBDIR = "service"


def jobs_journal_path(cache_dir) -> Path:
    """Location of the jobs journal under a cache root."""
    return Path(cache_dir) / SERVICE_SUBDIR / "jobs.jsonl"


class ServiceJournal:
    """Append-only, checksum-sealed record of job submissions and states.

    Thread-safe: the HTTP loop appends submissions while worker threads
    append transitions.  Like the engine's :class:`RunJournal`, write
    failures are counted, never raised — losing journal durability must
    not take down live traffic (the next restart just sees less).
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.errors = 0
        self.appended = 0
        self._lock = threading.Lock()
        self._fh = None

    def append_job(self, job: Job, seq: int) -> None:
        """Record an accepted submission (spec + submission ordinal)."""
        self._append(
            {
                "kind": "job",
                "job_id": job.job_id,
                "seq": seq,
                "spec": job.spec.payload(),
            }
        )

    def append_state(self, job_id: str, state: str) -> None:
        """Record one state transition."""
        self._append({"kind": "state", "job_id": job_id, "state": state})

    def _append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(seal(record), sort_keys=True) + "\n"
        with self._lock:
            try:
                if self._fh is None:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    self._fh = open(self.path, "a")
                self._fh.write(line)
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self.appended += 1
            except (OSError, ValueError):
                self.errors += 1

    def close(self) -> None:
        """Close the file handle; later appends transparently reopen."""
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:  # pragma: no cover - close failure
                    pass
                self._fh = None


class RecoveredState:
    """What a restart learns from the jobs journal."""

    def __init__(self) -> None:
        #: Jobs to re-enqueue, in original submission order.
        self.pending: List[Job] = []
        #: Terminal jobs, restored for status/history queries.
        self.finished: List[Job] = []
        #: Highest submission ordinal seen (id generation resumes after).
        self.max_seq: int = -1
        #: Records skipped as unparseable/stale (surfaced in stats).
        self.skipped: int = 0
        #: Job ids whose last journalled state was ``running`` — they
        #: were mid-flight when the previous process died.  The guard
        #: layer counts these as quarantine strikes against their spec
        #: fingerprints (a spec that keeps being "the job running at
        #: every crash" is the prime poison suspect).
        self.running_at_crash: List[str] = []

    @property
    def total(self) -> int:
        return len(self.pending) + len(self.finished)


def recover(cache_dir) -> RecoveredState:
    """Replay the jobs journal into a restart plan.

    Replay is idempotent and tolerant by construction: duplicate
    ``job`` records collapse onto one entry, ``state`` records for
    unknown jobs or unknown states are counted in ``skipped``, and the
    checksum layer has already dropped torn or corrupt lines before we
    see them.  Non-terminal survivors come back ``queued`` (a job that
    was mid-flight re-runs through the engine with ``resume=True``,
    which is where completed units are skipped) and ``recovered=True``.
    """
    state = RecoveredState()
    specs: Dict[str, JobSpec] = {}
    seqs: Dict[str, int] = {}
    last_state: Dict[str, str] = {}
    order: List[str] = []

    for record in iter_journal_records(jobs_journal_path(cache_dir)):
        kind = record.get("kind")
        if kind == "job":
            job_id = record.get("job_id")
            if not isinstance(job_id, str):
                state.skipped += 1
                continue
            try:
                spec = parse_job_spec(record.get("spec"))
            except SchemaError:
                state.skipped += 1
                continue
            seq = record.get("seq")
            seq = seq if isinstance(seq, int) else -1
            if job_id not in specs:
                order.append(job_id)
            specs[job_id] = spec
            seqs[job_id] = seq
            state.max_seq = max(state.max_seq, seq)
        elif kind == "state":
            job_id = record.get("job_id")
            new_state = record.get("state")
            if job_id in specs and new_state in JOB_STATES:
                last_state[job_id] = new_state
            else:
                state.skipped += 1
        else:
            state.skipped += 1

    for job_id in order:
        final = last_state.get(job_id, "queued")
        job = Job(job_id=job_id, spec=specs[job_id])
        # Spec-carried deadlines survive the replay (config-default
        # deadlines are reapplied by the service for pending jobs).
        job.deadline_seconds = specs[job_id].deadline_seconds
        if final in TERMINAL_STATES:
            job.state = final
            state.finished.append(job)
        else:
            job.recovered = True
            state.pending.append(job)
            if final == "running":
                state.running_at_crash.append(job_id)
    return state


def replayed_job_id(seq: int, spec: JobSpec) -> str:
    """Regenerate the deterministic id a submission would have gotten."""
    return job_id_for(seq, spec)
