"""Partitioning-as-a-service: async job engine + HTTP API.

Everything below is built *on top of* the execution stack, never beside
it: jobs execute through :class:`repro.engine.Engine`, so the
content-addressed result cache, per-run journals, retry/backoff and
fault handling apply to service traffic verbatim — and crash recovery
falls out of journal replay rather than a second durability mechanism.

Layers (each importable and testable without the ones above it):

* :mod:`~repro.service.schemas` — job wire format, validation, and the
  spec → :class:`~repro.engine.WorkUnit` translation;
* :mod:`~repro.service.jobs` — job lifecycle model;
* :mod:`~repro.service.queue` — priority + weighted-fair async queue;
* :mod:`~repro.service.recovery` — sealed jobs journal + restart replay;
* :mod:`~repro.service.sse` — per-job event bus + SSE framing;
* :mod:`~repro.service.app` — the orchestrator (workers + engine);
* :mod:`~repro.service.api` — stdlib asyncio HTTP/JSON transport;
* :mod:`~repro.service.client` — asyncio client (tests, load driver).

Resource governance (admission control / 429 shedding, per-job
deadlines, memory high-water marks, poison-job quarantine) lives in
:mod:`repro.guard` and is threaded through the orchestrator — see
``docs/guard.md``.

Entry points: ``repro serve`` (CLI), :func:`run_service` (embedding),
``scripts/load_smoke.py`` (the kill-and-restart load proof).  See
``docs/service.md``.
"""

from ..guard import OverloadedError, QuarantinedError
from .api import ServiceServer, run_service
from .app import JobNotFound, PartitionService, ServiceConfig, ServiceStopping
from .client import ServiceClient, ServiceError
from .jobs import JOB_STATES, TERMINAL_STATES, Job
from .queue import FairQueue, QueueClosed, QueueFull
from .recovery import RecoveredState, ServiceJournal, jobs_journal_path, recover
from .schemas import JobSpec, SchemaError, build_units, parse_job_spec
from .sse import EventBus, SubscriberQueue, format_sse

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobSpec",
    "JobNotFound",
    "SchemaError",
    "parse_job_spec",
    "build_units",
    "FairQueue",
    "QueueClosed",
    "QueueFull",
    "EventBus",
    "SubscriberQueue",
    "format_sse",
    "OverloadedError",
    "QuarantinedError",
    "ServiceJournal",
    "RecoveredState",
    "recover",
    "jobs_journal_path",
    "PartitionService",
    "ServiceConfig",
    "ServiceStopping",
    "ServiceServer",
    "ServiceClient",
    "ServiceError",
    "run_service",
]
